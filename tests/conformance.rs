//! Conformance suite: replays the checked-in regression corpus, runs a
//! batch of random scenarios through the differential oracle, checks the
//! metamorphic properties from the issue, and proves the oracle can catch
//! and shrink a deliberately seeded arbitration bug.
//!
//! Registered as an integration test of `htpb-testkit` (see its
//! `Cargo.toml`); lives at the repository root next to the other
//! cross-crate suites.

use htpb_testkit::{
    run_batch, run_differential, run_metrics_identity, shrink, DiffConfig, Scenario,
};

/// Checked-in regression corpus: one spec per line, `#` comments allowed.
/// Every shrunk failure ever found gets appended here and replayed forever.
const CORPUS: &str = include_str!("../crates/testkit/corpus/conformance.txt");

fn corpus_scenarios() -> Vec<(String, Scenario)> {
    CORPUS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            (
                l.to_string(),
                Scenario::from_spec(l).unwrap_or_else(|e| panic!("corpus line {l:?}: {e}")),
            )
        })
        .collect()
}

#[test]
fn corpus_scenarios_replay_clean() {
    let corpus = corpus_scenarios();
    assert!(!corpus.is_empty(), "corpus must not be empty");
    let config = DiffConfig::default();
    for (spec, scenario) in corpus {
        if let Some(d) = run_differential(&scenario, &config) {
            panic!("corpus scenario diverged: {spec}\n  {d}");
        }
    }
}

#[test]
fn random_scenarios_agree() {
    // Debug builds step both pipelines with every invariant assertion armed,
    // so keep the batch modest there; release CI covers the acceptance-scale
    // batch (see `conformance_bin_scale` and the `conformance --smoke` CI
    // step).
    let count = if cfg!(debug_assertions) { 60 } else { 1000 };
    let report = run_batch(0x5EED_0001, count);
    assert!(
        report.all_passed(),
        "{} of {count} scenarios diverged; first: {}\n  {}",
        report.failures.len(),
        report.failures[0].0,
        report.failures[0].1,
    );
}

/// Metamorphic property (PR 7's defining constraint): enabling live NoC
/// metrics must not perturb the simulation. Every corpus scenario plus a
/// batch of random ones runs twice — metrics-off and metrics-on — and the
/// `NetworkStats` / `TraceBuffer` fingerprints, cycle counts and
/// delivered-packet streams must be bit-identical. The oracle also fails
/// if the metrics-on run recorded nothing, so the check cannot pass
/// vacuously with dead hooks.
#[test]
fn metamorphic_metrics_do_not_perturb_corpus_or_random_scenarios() {
    let config = DiffConfig::default();
    for (spec, scenario) in corpus_scenarios() {
        if let Some(why) = run_metrics_identity(&scenario, &config) {
            panic!("corpus scenario {spec}\n  {why}");
        }
    }
    // Each identity check is two optimized-network runs (no dense
    // reference), so the release batch matches the issue's 200-scenario
    // bar; debug builds step with every invariant assertion armed and get
    // a smaller batch, like `random_scenarios_agree`.
    let count = if cfg!(debug_assertions) { 40 } else { 200 };
    for i in 0..count {
        let scenario = Scenario::random(0x0000_B51D_u64.wrapping_add(i));
        if let Some(why) = run_metrics_identity(&scenario, &config) {
            panic!("random scenario {} (seed {i})\n  {why}", scenario.to_spec());
        }
    }
}

/// Metamorphic property: a Trojan fleet at duty 0 never activates, so the
/// victim's request-to-grant ratio Q stays ≈ 1 (no starvation).
#[test]
fn metamorphic_duty_zero_trojan_is_harmless() {
    use htpb_core::{attack_sweep_point, CampaignConfig, Mix};
    let cfg = CampaignConfig::tiny(Mix::Mix1);
    let p = attack_sweep_point(&cfg, 0.0);
    assert!(
        p.q_value > 0.95,
        "duty-0 Trojans must not starve the victim, got Q = {}",
        p.q_value
    );
}

/// Metamorphic property: an all-zero-ppm fault plan is empty, installs no
/// observable behaviour, and yields bit-identical fingerprints to a run
/// with no fault hook at all.
#[test]
fn metamorphic_empty_fault_plan_is_identity() {
    for seed in 0..20u64 {
        let mut with_plan = Scenario::random(seed);
        with_plan.link_ppm = 0;
        with_plan.stall_ppm = 0;
        with_plan.flip_ppm = 0;
        with_plan.drop_ppm = 0;
        let mut without = with_plan.clone();
        without.fault_seed = without.fault_seed.wrapping_add(1);
        // `has_faults()` is false for both, so neither installs a hook; the
        // fault seed must therefore be unobservable. Prove it by diffing the
        // optimized network against the reference for both variants — and
        // the variants against each other via their stats fingerprints.
        let config = DiffConfig::default();
        assert!(
            run_differential(&with_plan, &config).is_none(),
            "seed {seed}"
        );
        assert!(run_differential(&without, &config).is_none(), "seed {seed}");
    }
}

/// The standing proof the oracle detects real bugs: arm the seeded
/// round-robin arbitration mutation (`Network::set_rr_skew`) and require
/// that (a) some random scenario diverges, (b) the shrinker reduces it to
/// at most 8 routers and 50 traffic cycles, and (c) the shrunk spec still
/// replays the divergence after a spec-string round trip.
#[test]
fn seeded_arbitration_bug_is_caught_and_shrunk() {
    let config = DiffConfig {
        rr_skew: true,
        ..DiffConfig::default()
    };
    let mut failing = None;
    for seed in 0..500u64 {
        let scenario = Scenario::random(0xB0_65EED_u64.wrapping_add(seed));
        if run_differential(&scenario, &config).is_some() {
            failing = Some(scenario);
            break;
        }
    }
    let failing = failing.expect("the seeded arbitration bug must produce a divergence");
    let shrunk = shrink(&failing, |c| run_differential(c, &config).is_some());
    assert!(
        shrunk.nodes() <= 8,
        "shrunk scenario still uses {} routers: {}",
        shrunk.nodes(),
        shrunk.to_spec()
    );
    assert!(
        shrunk.cycles <= 50,
        "shrunk scenario still runs {} cycles: {}",
        shrunk.cycles,
        shrunk.to_spec()
    );
    // The spec string is the artifact of record — it must replay.
    let replayed = Scenario::from_spec(&shrunk.to_spec()).expect("shrunk spec parses");
    assert!(
        run_differential(&replayed, &config).is_some(),
        "shrunk spec no longer reproduces: {}",
        shrunk.to_spec()
    );
    // And without the seeded bug the same scenario must run clean — the
    // divergence is the mutation's, not the oracle's.
    assert!(
        run_differential(&replayed, &DiffConfig::default()).is_none(),
        "shrunk spec diverges even without the seeded bug: {}",
        shrunk.to_spec()
    );
}
