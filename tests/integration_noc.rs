//! Cross-crate integration tests of the NoC substrate: protocol packets
//! and Trojan configuration flowing through the cycle-accurate network.

use htpb_core::{
    ActivationSignal, Direction, Mesh2d, Network, NetworkConfig, NodeId, Packet, PacketKind,
    RoutingKind, TamperRule, TrojanFleet,
};

#[test]
fn config_broadcast_reaches_every_trojan_in_band() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let attacker = NodeId(63);
    let manager = mesh.center();
    let trojan_nodes: Vec<NodeId> = vec![NodeId(3), NodeId(17), NodeId(42), NodeId(60)];
    let fleet = TrojanFleet::new(&trojan_nodes, TamperRule::Zero);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);

    for cfg in TrojanFleet::config_broadcast(mesh, attacker, manager, ActivationSignal::On) {
        net.inject(cfg).unwrap();
    }
    assert!(net.run_until_idle(100_000), "broadcast failed to drain");
    for node in trojan_nodes {
        let ht = net.inspector().trojan(node).unwrap();
        assert!(ht.state().active, "trojan at {node} not armed");
        assert_eq!(ht.state().manager, Some(manager));
        assert!(ht.state().is_attacker(attacker));
    }
}

#[test]
fn deactivation_broadcast_disarms_in_band() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let attacker = NodeId(15);
    let manager = NodeId(0);
    let fleet = TrojanFleet::new(&[NodeId(5)], TamperRule::Zero);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);

    for cfg in TrojanFleet::config_broadcast(mesh, attacker, manager, ActivationSignal::On) {
        net.inject(cfg).unwrap();
    }
    net.run_until_idle(50_000);
    assert!(net.inspector().trojan(NodeId(5)).unwrap().state().active);

    for cfg in TrojanFleet::config_broadcast(mesh, attacker, manager, ActivationSignal::Off) {
        net.inject(cfg).unwrap();
    }
    net.run_until_idle(50_000);
    assert!(!net.inspector().trojan(NodeId(5)).unwrap().state().active);

    // Disarmed: a victim request through node 5 passes untouched.
    net.drain_ejected();
    net.inject(Packet::power_request(NodeId(6), manager, 777))
        .unwrap();
    net.run_until_idle(50_000);
    let out = net.drain_ejected();
    let req = out
        .iter()
        .find(|d| matches!(d.packet.kind(), PacketKind::PowerReq))
        .unwrap();
    assert!(!req.modified);
    assert_eq!(req.packet.payload(), 777);
}

#[test]
fn tampering_counted_once_per_packet_despite_many_trojans() {
    // Zeroing is idempotent; the stats must count the packet once.
    let mesh = Mesh2d::new(8, 1).unwrap();
    let manager = NodeId(0);
    let nodes: Vec<NodeId> = (1..8).map(NodeId).collect();
    let mut fleet = TrojanFleet::new(&nodes, TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);
    net.inject(Packet::power_request(NodeId(7), manager, 9_999))
        .unwrap();
    assert!(net.run_until_idle(10_000));
    assert_eq!(net.stats().modified_power_requests(), 1);
    assert_eq!(net.stats().delivered_power_requests(), 1);
    let out = net.drain_ejected();
    assert_eq!(out[0].packet.payload(), 0);
    // Only the first trojan on the path did a rewrite; the others saw an
    // already-zero payload and left it be.
    let fleet_stats = net.inspector().stats();
    assert_eq!(fleet_stats.packets_modified, 1);
}

#[test]
fn scale_rule_compounds_across_hops() {
    // A ScalePercent trojan modifies repeatedly along the path — each
    // infected hop shaves the request again. A property of the functional
    // module worth pinning down.
    let mesh = Mesh2d::new(5, 1).unwrap();
    let manager = NodeId(0);
    let mut fleet = TrojanFleet::new(&[NodeId(1), NodeId(2)], TamperRule::ScalePercent(50));
    fleet.configure_all(&[], manager, true);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);
    net.inject(Packet::power_request(NodeId(4), manager, 1_000))
        .unwrap();
    assert!(net.run_until_idle(10_000));
    let out = net.drain_ejected();
    assert_eq!(out[0].packet.payload(), 250, "halved twice");
}

#[test]
fn adaptive_routing_still_infected_by_manager_ring() {
    // Odd-even may route around congestion, but every request must funnel
    // into the manager's router; a trojan ring around it catches all.
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let ring: Vec<NodeId> = Direction::ALL
        .into_iter()
        .filter_map(|d| mesh.neighbor(manager, d))
        .collect();
    assert_eq!(ring.len(), 4);
    let mut fleet = TrojanFleet::new(&ring, TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    let mut net = Network::with_inspector(
        NetworkConfig::new(mesh).with_routing(RoutingKind::OddEven),
        fleet,
    );
    for src in mesh.iter_nodes() {
        if src != manager {
            net.inject(Packet::power_request(src, manager, 500))
                .unwrap();
        }
    }
    assert!(net.run_until_idle(200_000));
    assert!(
        net.stats().infection_rate() > 0.99,
        "ring missed traffic: {}",
        net.stats().infection_rate()
    );
}

#[test]
fn grants_and_data_never_tampered_even_under_full_infection() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let manager = NodeId(5);
    let all: Vec<NodeId> = mesh.iter_nodes().collect();
    let mut fleet = TrojanFleet::new(&all, TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);
    net.inject(Packet::power_grant(manager, NodeId(10), 1_234))
        .unwrap();
    net.inject(Packet::new(NodeId(2), manager, PacketKind::Data, 5_678))
        .unwrap();
    assert!(net.run_until_idle(10_000));
    let out = net.drain_ejected();
    assert_eq!(out.len(), 2);
    for d in out {
        assert!(!d.modified, "{:?} was tampered", d.packet.kind());
        assert!(d.packet.payload() == 1_234 || d.packet.payload() == 5_678);
    }
}

#[test]
fn saturating_bursts_preserve_every_packet() {
    // Four epochs of full-chip request bursts back to back, with memory
    // traffic mixed in: nothing is lost or duplicated.
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let mut net = Network::new(NetworkConfig::new(mesh));
    let mut injected = 0u64;
    for epoch in 0..4 {
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            net.inject(Packet::power_request(src, manager, 100 + epoch))
                .unwrap();
            injected += 1;
            if src.0 % 3 == 0 {
                net.inject(Packet::new(src, NodeId(src.0 / 2), PacketKind::Data, 1))
                    .unwrap();
                injected += 1;
            }
        }
        net.step_n(200);
    }
    assert!(net.run_until_idle(500_000));
    assert_eq!(net.stats().delivered_packets(), injected);
}
