//! End-to-end attack integration tests: the Trojan fleet inside the full
//! many-core system, with the paper's claims asserted as invariants.

use htpb_core::{
    run_campaign, AppRole, CampaignConfig, Mix, Placement, PlacementStrategy, TamperRule,
    TrojanMode,
};

#[test]
fn attack_starves_victims_and_boosts_attackers() {
    let cfg = CampaignConfig::small(Mix::Mix1);
    let r = run_campaign(&cfg, 1.0);
    assert!((r.outcome.infection_rate - 1.0).abs() < 1e-9);
    assert!(r.outcome.q_value > 2.0, "q = {}", r.outcome.q_value);
    for (_, role, change) in &r.outcome.changes {
        match role {
            AppRole::Malicious => assert!(*change >= 1.0, "attacker lost performance: {change}"),
            AppRole::Legitimate => assert!(
                *change < 0.7,
                "victim barely hurt at full infection: {change}"
            ),
        }
    }
    // Victims' cores are starved in the attacked run, none in the clean run.
    let attacked_starved: usize = r
        .attacked
        .apps
        .iter()
        .filter(|a| a.role == AppRole::Legitimate)
        .map(|a| a.starved_cores)
        .sum();
    let clean_starved: usize = r.clean.apps.iter().map(|a| a.starved_cores).sum();
    assert!(attacked_starved > 0);
    assert_eq!(clean_starved, 0);
}

#[test]
fn dormant_trojans_are_perfectly_stealthy() {
    // duty = 0: Trojans implanted but never active — the chip must behave
    // identically to clean silicon (Q == 1, no tampering).
    let cfg = CampaignConfig::small(Mix::Mix2);
    let r = run_campaign(&cfg, 0.0);
    assert_eq!(r.outcome.infection_rate, 0.0);
    assert!(
        (r.outcome.q_value - 1.0).abs() < 1e-9,
        "q = {}",
        r.outcome.q_value
    );
    for (_, _, change) in &r.outcome.changes {
        assert!((change - 1.0).abs() < 1e-9);
    }
}

#[test]
fn q_grows_with_duty_cycle() {
    let cfg = CampaignConfig::small(Mix::Mix3);
    let mut last_q = 0.0;
    for duty in [0.0, 0.4, 0.8] {
        let r = run_campaign(&cfg, duty);
        assert!(
            r.outcome.q_value >= last_q - 0.05,
            "Q fell from {last_q} to {} at duty {duty}",
            r.outcome.q_value
        );
        last_q = r.outcome.q_value;
    }
    assert!(last_q > 1.5, "attack had no bite: {last_q}");
}

#[test]
fn infection_tracks_duty_cycle() {
    let cfg = CampaignConfig::small(Mix::Mix1);
    for duty in [0.3, 0.6, 0.9] {
        let r = run_campaign(&cfg, duty);
        assert!(
            (r.outcome.infection_rate - duty).abs() < 0.15,
            "duty {duty} produced infection {}",
            r.outcome.infection_rate
        );
    }
}

#[test]
fn softer_tamper_rules_weaken_but_keep_the_attack() {
    let mut zero_cfg = CampaignConfig::small(Mix::Mix1);
    zero_cfg.tamper_rule = TamperRule::Zero;
    let q_zero = run_campaign(&zero_cfg, 1.0).outcome.q_value;

    let mut scale_cfg = CampaignConfig::small(Mix::Mix1);
    scale_cfg.tamper_rule = TamperRule::ScalePercent(60);
    let q_scale = run_campaign(&scale_cfg, 1.0).outcome.q_value;

    assert!(
        q_zero > q_scale,
        "zeroing should dominate: {q_zero} vs {q_scale}"
    );
    assert!(q_scale > 1.0, "soft tampering still effective: {q_scale}");
}

#[test]
fn off_path_placement_is_harmless() {
    // Trojans clustered in a far corner see (almost) no request traffic
    // when the manager is central: the attack fizzles.
    let mut cfg = CampaignConfig::small(Mix::Mix1);
    let mesh = htpb_core::Mesh2d::with_nodes(cfg.nodes).unwrap();
    cfg.placement = Some(Placement::generate(
        mesh,
        3,
        &PlacementStrategy::Explicit(vec![
            htpb_core::NodeId(63),
            htpb_core::NodeId(62),
            htpb_core::NodeId(55),
        ]),
        &[],
    ));
    let r = run_campaign(&cfg, 1.0);
    assert!(
        r.outcome.infection_rate < 0.2,
        "corner cluster infected {}",
        r.outcome.infection_rate
    );
    assert!(
        r.outcome.q_value < 1.5,
        "corner cluster still effective: {}",
        r.outcome.q_value
    );
}

#[test]
fn greedier_attackers_do_not_break_invariants() {
    // Even with absurd greed, grants stay within budget and the attack
    // metrics remain finite and ordered.
    let mut cfg = CampaignConfig::small(Mix::Mix4);
    cfg.budget_fraction = 0.4;
    let r = run_campaign(&cfg, 1.0);
    assert!(r.outcome.q_value.is_finite());
    assert!(r.outcome.q_value >= 1.0);
    assert!(r.outcome.max_attacker_gain() >= 1.0);
}

#[test]
fn attacker_boost_extension_strengthens_the_attack() {
    // The intro's "requests from the malicious applications will be
    // increased": with the boost extension, infected routers inflate the
    // attacker's own requests in flight, and under a fair allocator the
    // attacker's grant (hence gain) can only grow.
    let mut plain = CampaignConfig::small(Mix::Mix1);
    plain.budget_fraction = 0.8;
    let mut boosted = plain.clone();
    boosted.ht_boost = Some(htpb_core::BoostRule::new(200));

    let r_plain = run_campaign(&plain, 1.0);
    let r_boost = run_campaign(&boosted, 1.0);
    assert!(
        r_boost.outcome.max_attacker_gain() >= r_plain.outcome.max_attacker_gain() - 1e-9,
        "boost reduced attacker gain: {} vs {}",
        r_boost.outcome.max_attacker_gain(),
        r_plain.outcome.max_attacker_gain()
    );
    assert!(r_boost.outcome.q_value >= r_plain.outcome.q_value - 0.05);
}

#[test]
fn attack_survives_the_detailed_cache_model() {
    // The attack is about the power protocol, not the memory model: with
    // real L1s, a MESI directory and MSHR stalls in the loop, victims are
    // still starved and Q stays well above 1.
    let mut cfg = CampaignConfig::small(Mix::Mix1);
    cfg.detailed_caches = true;
    let r = run_campaign(&cfg, 1.0);
    assert!(
        r.outcome.q_value > 1.5,
        "detailed mode broke the attack: q = {}",
        r.outcome.q_value
    );
    assert!((r.outcome.infection_rate - 1.0).abs() < 1e-9);
    assert!(r.outcome.min_victim_change() < 0.7);
}

#[test]
fn false_data_beats_packet_drop_in_strength_and_stealth() {
    // Section II-B comparison: the paper's false-data attack starves
    // victims harder than the classic drop attack (whose victims keep their
    // pre-attack level), and only the drop attack leaves requesters
    // visibly silent at the manager.
    let mut fd_cfg = CampaignConfig::small(Mix::Mix1);
    fd_cfg.ht_mode = TrojanMode::FalseData;
    let mut drop_cfg = CampaignConfig::small(Mix::Mix1);
    drop_cfg.ht_mode = TrojanMode::PacketDrop;

    let fd = run_campaign(&fd_cfg, 1.0);
    let drop = run_campaign(&drop_cfg, 1.0);
    assert!(drop.outcome.q_value > 1.0, "drop attack inert");
    assert!(
        fd.outcome.q_value > drop.outcome.q_value,
        "false-data {} should beat drop {}",
        fd.outcome.q_value,
        drop.outcome.q_value
    );
    // Stealth: drop attacks lose the infection-rate metric entirely (their
    // victims' requests never arrive to be counted), another reason the
    // paper's variant is the dangerous one.
    assert!(fd.outcome.infection_rate > 0.9);
}

#[test]
fn all_mixes_reproduce_the_attack() {
    for mix in Mix::ALL {
        let cfg = CampaignConfig::small(mix);
        let r = run_campaign(&cfg, 1.0);
        assert!(
            r.outcome.q_value > 1.5,
            "{}: q = {}",
            mix.name(),
            r.outcome.q_value
        );
    }
}
