//! End-to-end tests of the `htpb-harness` orchestration subsystem: the
//! parallel, cached reproduction must be **byte-identical** to the legacy
//! sequential drivers, interrupted runs must resume from the cache, and a
//! panicking job must not take the campaign down.

use std::fs;
use std::path::{Path, PathBuf};

use htpb_harness::{
    run_jobs, run_repro, run_repro_sequential, JobSpec, Journal, ReproPlan, ReproScale,
    ResultCache, RunOptions,
};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htpb-harness-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn artefact_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tsv") || n == "SUMMARY.txt" || n == "plot.gp")
        .collect();
    names.sort();
    names
}

#[test]
fn parallel_cached_repro_is_byte_identical_to_sequential() {
    let seq_dir = tmpdir("seq");
    let par_dir = tmpdir("par");

    run_repro_sequential(ReproScale::Tiny, &seq_dir).expect("sequential repro");
    let opts = RunOptions {
        workers: 4,
        cache: Some(ResultCache::for_outdir(&par_dir).unwrap()),
        ..RunOptions::sequential()
    };
    let outcome = run_repro(ReproScale::Tiny, &par_dir, &opts).expect("harness repro");
    assert_eq!(outcome.failed, 0);
    assert_eq!(outcome.cache_hits, 0, "cold cache");

    let names = artefact_files(&seq_dir);
    assert!(
        names.iter().any(|n| n.starts_with("fig3_")),
        "artefacts missing: {names:?}"
    );
    assert_eq!(names, artefact_files(&par_dir), "artefact sets differ");
    for name in &names {
        let a = fs::read(seq_dir.join(name)).unwrap();
        let b = fs::read(par_dir.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between sequential and parallel runs");
    }

    // The journal recorded every job plus run bookkeeping.
    let journal = fs::read_to_string(par_dir.join("journal.jsonl")).unwrap();
    let job_lines = journal
        .lines()
        .filter(|l| l.contains("\"event\":\"job_done\""))
        .count();
    assert_eq!(job_lines, outcome.jobs);
    assert!(journal.contains("\"event\":\"run_start\""));
    assert!(journal.contains("\"event\":\"run_end\""));

    let _ = fs::remove_dir_all(&seq_dir);
    let _ = fs::remove_dir_all(&par_dir);
}

#[test]
fn interrupted_run_resumes_only_missing_jobs() {
    let dir = tmpdir("resume");
    let cache = ResultCache::for_outdir(&dir).unwrap();
    let plan = ReproPlan::plan(ReproScale::Tiny);
    // The cheap fig3 section stands in for the whole campaign.
    let jobs: Vec<JobSpec> = plan
        .jobs
        .iter()
        .filter(|j| matches!(j, JobSpec::Fig3Point { .. }))
        .cloned()
        .collect();
    assert!(jobs.len() >= 4);
    let k = jobs.len() / 2;

    // "Kill" the run after k jobs: only those made it into the cache.
    let opts = |cache: ResultCache| RunOptions {
        workers: 2,
        cache: Some(cache),
        ..RunOptions::sequential()
    };
    let first = run_jobs(&jobs[..k], &opts(cache.clone()), &Journal::disabled());
    assert!(first.iter().all(|r| !r.cache_hit));

    // The rerun executes exactly the n-k missing jobs.
    let second = run_jobs(&jobs, &opts(cache.clone()), &Journal::disabled());
    let hits = second.iter().filter(|r| r.cache_hit).count();
    assert_eq!(hits, k, "completed jobs must be served from the cache");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.output.as_ref().unwrap(),
            b.output.as_ref().unwrap(),
            "cached result differs from computed result"
        );
    }

    // A third run is all hits.
    let third = run_jobs(&jobs, &opts(cache), &Journal::disabled());
    assert!(third.iter().all(|r| r.cache_hit));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_fails_alone_and_is_journalled() {
    let dir = tmpdir("panic");
    let journal_path = dir.join("journal.jsonl");
    let journal = Journal::open(&journal_path).unwrap();
    let jobs = vec![
        JobSpec::Fig3Point {
            nodes: 16,
            corner: false,
            ht_count: 2,
            seeds: vec![0],
        },
        // 0 nodes is an invalid mesh: the experiment constructor panics.
        JobSpec::Fig3Point {
            nodes: 0,
            corner: false,
            ht_count: 2,
            seeds: vec![0],
        },
        JobSpec::Fig3Point {
            nodes: 16,
            corner: true,
            ht_count: 2,
            seeds: vec![0],
        },
    ];
    let reports = run_jobs(
        &jobs,
        &RunOptions {
            workers: 2,
            ..RunOptions::sequential()
        },
        &journal,
    );
    assert!(reports[0].output.is_ok());
    assert!(reports[1].output.is_err());
    assert!(reports[2].output.is_ok());

    let journal = fs::read_to_string(&journal_path).unwrap();
    let failed_line = journal
        .lines()
        .find(|l| l.contains("\"ok\":false"))
        .expect("failed job must be journalled");
    assert!(failed_line.contains("fig3-n0-"), "{failed_line}");
    assert!(failed_line.contains("\"error\":"), "{failed_line}");

    let _ = fs::remove_dir_all(&dir);
}
