//! Whole-system integration tests: determinism, cross-layer consistency,
//! and the Definitions 1–8 metrics computed over real simulation output.

use htpb_core::{
    density_eta, distance_rho, run_campaign, sensitivity_phi, virtual_center, AppRole, Benchmark,
    CampaignConfig, DvfsTable, ManagerLocation, Mesh2d, Mix, NodeId, Placement, PlacementStrategy,
    RoutingKind, SystemBuilder, Workload,
};

#[test]
fn campaigns_are_deterministic() {
    let cfg = CampaignConfig::small(Mix::Mix2);
    let a = run_campaign(&cfg, 0.7);
    let b = run_campaign(&cfg, 0.7);
    assert_eq!(a.outcome.q_value.to_bits(), b.outcome.q_value.to_bits());
    assert_eq!(a.outcome.infection_rate, b.outcome.infection_rate);
    for (x, y) in a.outcome.changes.iter().zip(&b.outcome.changes) {
        assert_eq!(x.2.to_bits(), y.2.to_bits());
    }
}

#[test]
fn different_seeds_change_background_traffic_not_correctness() {
    let mut c1 = CampaignConfig::small(Mix::Mix1);
    c1.seed = 1;
    let mut c2 = CampaignConfig::small(Mix::Mix1);
    c2.seed = 2;
    let r1 = run_campaign(&c1, 1.0);
    let r2 = run_campaign(&c2, 1.0);
    // Same qualitative outcome under both seeds.
    assert!(r1.outcome.q_value > 1.5);
    assert!(r2.outcome.q_value > 1.5);
    assert!((r1.outcome.q_value - r2.outcome.q_value).abs() / r1.outcome.q_value < 0.25);
}

#[test]
fn manager_location_does_not_break_the_protocol() {
    for manager in [
        ManagerLocation::Center,
        ManagerLocation::Corner,
        ManagerLocation::At(NodeId(17)),
    ] {
        let mut cfg = CampaignConfig::small(Mix::Mix1);
        cfg.manager = manager;
        let r = run_campaign(&cfg, 1.0);
        assert!(
            r.outcome.q_value > 1.2,
            "{manager:?}: q = {}",
            r.outcome.q_value
        );
        assert!(r.attacked.power_requests_delivered > 0);
    }
}

#[test]
fn adaptive_routing_campaign_matches_xy_shape() {
    let mut xy = CampaignConfig::small(Mix::Mix1);
    xy.routing = RoutingKind::Xy;
    let mut oe = CampaignConfig::small(Mix::Mix1);
    oe.routing = RoutingKind::OddEven;
    let q_xy = run_campaign(&xy, 1.0).outcome.q_value;
    let q_oe = run_campaign(&oe, 1.0).outcome.q_value;
    assert!(q_xy > 1.5 && q_oe > 1.5);
    assert!(
        (q_xy - q_oe).abs() / q_xy < 0.3,
        "routing changed the attack materially: {q_xy} vs {q_oe}"
    );
}

#[test]
fn sensitivity_ranking_spans_the_suite() {
    // Definition 4/5 over all eleven benchmarks: compute-bound ones must
    // rank above memory-bound ones.
    let table = DvfsTable::default_six_level();
    let phi = |b: Benchmark| sensitivity_phi(&b.profile(), &table);
    let mut ranked: Vec<(Benchmark, f64)> = Benchmark::ALL.iter().map(|&b| (b, phi(b))).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let names: Vec<&str> = ranked.iter().map(|(b, _)| b.name()).collect();
    let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
    assert!(pos("swaptions") < pos("canneal"));
    assert!(pos("blackscholes") < pos("streamcluster"));
    assert!(pos("raytrace") < pos("dedup"));
    // All positive.
    assert!(ranked.iter().all(|(_, p)| *p > 0.0));
}

#[test]
fn placement_metrics_agree_between_helpers_and_methods() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let p = Placement::generate(mesh, 6, &PlacementStrategy::Random { seed: 4 }, &[manager]);
    assert_eq!(p.virtual_center(mesh), virtual_center(mesh, p.nodes()));
    assert_eq!(
        p.distance_rho(mesh, manager),
        distance_rho(mesh, p.nodes(), manager)
    );
    assert_eq!(p.density_eta(mesh), density_eta(mesh, p.nodes()));
}

#[test]
fn starvation_duty_controls_attack_severity() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let run_with_duty = |duty: f64| {
        let mut sys = SystemBuilder::new(mesh)
            .workload(
                Workload::new()
                    .app(Benchmark::Barnes, 20, AppRole::Malicious)
                    .app(Benchmark::Raytrace, 20, AppRole::Legitimate),
            )
            .starvation_duty(duty)
            .budget_fraction(0.6)
            .build_with_inspector({
                let mut fleet =
                    htpb_core::TrojanFleet::new(&[mesh.center()], htpb_core::TamperRule::Zero);
                fleet.configure_all(&[], mesh.center(), true);
                fleet
            })
            .unwrap();
        sys.run_epochs(2);
        sys.begin_measurement();
        sys.run_epochs(4);
        let report = sys.performance_report();
        report
            .apps
            .iter()
            .find(|a| a.role == AppRole::Legitimate)
            .unwrap()
            .theta
    };
    let harsh = run_with_duty(0.1);
    let mild = run_with_duty(1.0);
    assert!(
        mild > harsh * 2.0,
        "starvation duty had no effect: {harsh} vs {mild}"
    );
}

#[test]
fn detailed_mode_couples_performance_to_memory_latency() {
    // With real MSHRs, slower memory must cost real performance — the
    // coupling the rate-based model abstracts away.
    let mesh = Mesh2d::new(4, 4).unwrap();
    let run_with_latency = |memory_latency: u64| {
        let mut cfg = htpb_core::SystemConfig::new(mesh);
        cfg.detailed_caches = true;
        cfg.memory_latency = memory_latency;
        cfg.mshr_limit = 4;
        let mut sys = htpb_core::SystemBuilder::from_config(cfg)
            .workload(Workload::new().app(Benchmark::Canneal, 15, AppRole::Legitimate))
            .detailed_caches(true)
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.begin_measurement();
        sys.run_epochs(3);
        let theta = sys.performance_report().apps[0].theta;
        let stalls: u64 = sys.tiles().iter().map(|t| t.stall_cycles()).sum();
        (theta, stalls)
    };
    let (theta_fast, stalls_fast) = run_with_latency(20);
    let (theta_slow, stalls_slow) = run_with_latency(2_000);
    assert!(
        stalls_slow > stalls_fast,
        "slow memory should stall more: {stalls_fast} vs {stalls_slow}"
    );
    assert!(
        theta_fast > theta_slow,
        "slow memory should cost performance: {theta_fast} vs {theta_slow}"
    );
}

#[test]
fn attack_works_under_every_routing_algorithm() {
    for routing in RoutingKind::ALL {
        let mut cfg = CampaignConfig::small(Mix::Mix1);
        cfg.routing = routing;
        let q = run_campaign(&cfg, 1.0).outcome.q_value;
        assert!(q > 1.5, "{routing:?}: q = {q}");
    }
}

/// Paper-scale end-to-end run: 256-node chip, mix-4, full attack. Slow in
/// debug builds, so ignored by default; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale run (~1 min release); run with --ignored"]
fn paper_scale_campaign_reproduces_q_regime() {
    let cfg = CampaignConfig::new(Mix::Mix4);
    let r = run_campaign(&cfg, 0.9);
    assert!(
        (r.outcome.infection_rate - 0.9).abs() < 0.05,
        "infection {}",
        r.outcome.infection_rate
    );
    // The paper's headline: mix-4 reaches Q = 6.89 at 0.9 infection; our
    // platform lands in the same regime.
    assert!(
        r.outcome.q_value > 4.0 && r.outcome.q_value < 12.0,
        "q = {}",
        r.outcome.q_value
    );
}

/// Paper-scale infection measurement on the 512-node chip (Fig. 3b's
/// platform).
#[test]
#[ignore = "paper-scale run; run with --ignored"]
fn paper_scale_512_infection() {
    let exp = htpb_core::InfectionExperiment::new(512);
    let p = exp.placement(60, &PlacementStrategy::Random { seed: 1 });
    let rate = exp.measure(&p);
    assert!(rate > 0.5, "60 HTs should catch most routes: {rate}");
}

#[test]
fn mixes_fill_the_chip_on_paper_scale() {
    // 256 nodes, Table-III mixes: the workload builder packs ~all workers.
    let mesh = Mesh2d::with_nodes(256).unwrap();
    for mix in Mix::ALL {
        let w = mix.workload_for_mesh(mesh);
        let sys = SystemBuilder::new(mesh).workload(w).build().unwrap();
        let assigned = sys.tiles().iter().filter(|t| t.is_assigned()).count();
        assert!(assigned >= 192, "{}: only {assigned} tiles", mix.name());
        assert!(!sys.tile(sys.config().manager).is_assigned());
    }
}
