//! Shape tests for every reproduced figure/table, at test-friendly scale.
//! The full-scale regenerations live in `crates/bench/src/bin/`.

use htpb_core::{
    attack_sweep, fig3_series, fig4_series, optimal_vs_random, regression_dataset, AreaReport,
    AttackModel, CampaignConfig, ManagerLocation, Mesh2d, Mix, Placement, PlacementStrategy,
};

#[test]
fn fig3_shape_monotonic_and_corner_dominates() {
    let counts = [0usize, 4, 8, 16, 24];
    // Corner dominance is statistical (the corner manager wins ~2/3 of
    // individual random placements), so average over a seed window whose
    // per-count margins are comfortably positive.
    let seeds: Vec<u64> = (12..20).collect();
    let center = fig3_series(64, ManagerLocation::Center, &counts, &seeds);
    let corner = fig3_series(64, ManagerLocation::Corner, &counts, &seeds);
    assert!(center.is_monotonic_nondecreasing());
    assert!(corner.is_monotonic_nondecreasing());
    // Beyond ~8 HTs the corner curve dominates (paper: >20% beyond 10 HTs).
    for ((m, c), (_, k)) in center.points.iter().zip(&corner.points) {
        if *m >= 8.0 {
            assert!(k > c, "at {m} HTs corner {k} <= center {c}");
        }
    }
}

#[test]
fn fig4_shape_distribution_ordering() {
    let sizes = [64u32, 128];
    let seeds = [1u64, 2, 3];
    let center = fig4_series(
        &sizes,
        "center",
        |_| PlacementStrategy::CenterCluster,
        16,
        &seeds,
    );
    let random = fig4_series(
        &sizes,
        "random",
        |seed| PlacementStrategy::Random { seed },
        16,
        &seeds,
    );
    let corner = fig4_series(
        &sizes,
        "corner",
        |_| PlacementStrategy::CornerCluster,
        16,
        &seeds,
    );
    for (i, &size) in sizes.iter().enumerate() {
        let (c, r, k) = (center.points[i].1, random.points[i].1, corner.points[i].1);
        assert!(c >= r, "size {size}: center {c} < random {r}");
        assert!(r >= k, "size {size}: random {r} < corner {k}");
        assert!(c / k.max(1e-9) > 2.0, "center should dwarf corner");
    }
}

#[test]
fn fig5_shape_q_rises_with_infection() {
    let cfg = CampaignConfig::small(Mix::Mix4);
    let points = attack_sweep(&cfg, &[0.0, 0.5, 0.9]);
    assert_eq!(points.len(), 3);
    assert!((points[0].q_value - 1.0).abs() < 1e-6);
    assert!(points[1].q_value > points[0].q_value);
    assert!(points[2].q_value > points[1].q_value);
    // The paper's mix-4 peak is 6.89 at 0.9; ours lands in the same regime.
    assert!(
        points[2].q_value > 3.0 && points[2].q_value < 15.0,
        "mix-4 Q at 0.9 = {}",
        points[2].q_value
    );
}

#[test]
fn fig6_shape_attackers_up_victims_down() {
    let cfg = CampaignConfig::small(Mix::Mix1);
    let points = attack_sweep(&cfg, &[0.5]);
    let p = &points[0];
    // Paper call-outs at infection 0.5: attackers up to ~1.2x, victims
    // around 0.6x.
    let gain = p.outcome.max_attacker_gain();
    let worst = p.outcome.min_victim_change();
    assert!((1.0..=1.6).contains(&gain), "attacker gain {gain}");
    assert!((0.3..=0.85).contains(&worst), "victim change {worst}");
}

#[test]
fn section5c_optimal_beats_random() {
    let cfg = CampaignConfig::small(Mix::Mix1);
    let cmp = optimal_vs_random(&cfg, 8, &[7, 8]);
    assert!(
        cmp.improvement > 0.0,
        "optimal {} <= random {}",
        cmp.q_optimal,
        cmp.q_random
    );
    // The optimizer may use fewer than the m budget when a smaller set
    // already maximises infection (ties prefer fewer Trojans — stealth).
    assert!((1..=8).contains(&cmp.optimal_placement.len()));
}

#[test]
fn section3d_area_table_exact() {
    let one = AreaReport::new(1, 1);
    assert!((one.trojan_area_um2() - 12.1716).abs() < 1e-9);
    assert!((one.trojan_power_uw() - 0.55018).abs() < 1e-9);
    let chip = AreaReport::new(60, 512);
    assert!((chip.trojan_area_um2() - 730.296).abs() < 1e-3);
    assert!((chip.trojan_power_uw() - 33.0108).abs() < 1e-4);
    assert!((chip.area_fraction() * 100.0 - 0.002).abs() < 5e-4);
    assert!((chip.power_fraction() * 100.0 - 0.0002).abs() < 5e-5);
}

#[test]
fn eq9_regression_fits_with_expected_signs() {
    // A small but spanning dataset: two mixes, placements varying rho and m.
    let base = CampaignConfig::small(Mix::Mix1);
    let mesh = Mesh2d::with_nodes(base.nodes).unwrap();
    let manager = ManagerLocation::Center.resolve(mesh);
    let mut placements = Vec::new();
    for m in [2usize, 6] {
        for anchor in [manager, htpb_core::NodeId(0), htpb_core::NodeId(7)] {
            placements.push(Placement::generate(
                mesh,
                m,
                &PlacementStrategy::ClusterAround { anchor },
                &[manager],
            ));
        }
    }
    let samples = regression_dataset(&base, &[Mix::Mix1, Mix::Mix3], &placements);
    assert_eq!(samples.len(), 12);
    let model = AttackModel::fit(&samples).expect("fit");
    // Sign checks from Section IV-B: distance hurts, Trojan count helps.
    assert!(model.a1_rho() < 0.0, "a1 = {}", model.a1_rho());
    assert!(model.a3_m() > 0.0, "a3 = {}", model.a3_m());
    assert!(model.r2() > 0.5, "R^2 = {}", model.r2());
}
