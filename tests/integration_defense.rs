//! Integration tests of the countermeasures: checksum protection
//! neutralises the attack inside the full system, and detector + localizer
//! recover the Trojan positions from manager-visible evidence only.

use htpb_core::{
    AppRole, Benchmark, Mesh2d, NodeId, RequestProtection, SystemBuilder, TamperRule, TrojanFleet,
    Workload,
};
use htpb_defense::{
    DetectorConfig, ProbeCampaign, ProbePlan, RequestAnomalyDetector, TrojanLocalizer,
};

fn workload() -> Workload {
    Workload::new()
        .app(Benchmark::Barnes, 20, AppRole::Malicious)
        .app(Benchmark::Raytrace, 20, AppRole::Legitimate)
}

fn run_system(
    mesh: Mesh2d,
    trojans: &[NodeId],
    protection: Option<RequestProtection>,
) -> (f64, u64, f64) {
    let manager = mesh.center();
    let mut fleet = TrojanFleet::new(trojans, TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    let mut builder = SystemBuilder::new(mesh)
        .manager(manager)
        .workload(workload());
    if let Some(p) = protection {
        builder = builder.protection(p);
    }
    let mut sys = builder.build_with_inspector(fleet).unwrap();
    sys.run_epochs(2);
    sys.begin_measurement();
    sys.run_epochs(6);
    let report = sys.performance_report();
    let victim_theta: f64 = report
        .apps
        .iter()
        .filter(|a| a.role == AppRole::Legitimate)
        .map(|a| a.theta)
        .sum();
    (
        victim_theta,
        sys.requests_rejected(),
        report.infection_rate(),
    )
}

#[test]
fn checksum_protection_neutralises_the_attack() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    // A trojan ring right on the manager's doorstep: full infection.
    let manager = mesh.center();
    let trojans: Vec<NodeId> = htpb_core::Direction::ALL
        .into_iter()
        .filter_map(|d| mesh.neighbor(manager, d))
        .collect();

    let (theta_unprotected, rejected_unprotected, infection) = run_system(mesh, &trojans, None);
    assert!(infection > 0.9, "attack rig broken: infection {infection}");
    assert_eq!(rejected_unprotected, 0);

    let (theta_protected, rejected, _) =
        run_system(mesh, &trojans, Some(RequestProtection::new(0x5EC_12E7)));
    assert!(rejected > 0, "protection never fired");
    assert!(
        theta_protected > theta_unprotected * 1.5,
        "protection ineffective: {theta_protected} vs {theta_unprotected}"
    );
}

#[test]
fn protection_is_transparent_on_a_clean_chip() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let (theta_plain, _, _) = run_system(mesh, &[], None);
    let (theta_protected, rejected, _) = run_system(mesh, &[], Some(RequestProtection::new(42)));
    assert_eq!(rejected, 0, "false positives on a clean chip");
    assert!(
        (theta_plain - theta_protected).abs() / theta_plain < 0.05,
        "protection changed clean performance: {theta_plain} vs {theta_protected}"
    );
}

#[test]
fn checksum_rejects_any_payload_rewrite() {
    let p = RequestProtection::new(0xABCD_EF01);
    let c = p.checksum(17, 2_515);
    assert!(p.verify(17, 2_515, Some(c)));
    assert!(!p.verify(17, 0, Some(c)), "zeroed payload accepted");
    assert!(!p.verify(17, 2_514, Some(c)), "off-by-one accepted");
    assert!(!p.verify(18, 2_515, Some(c)), "wrong source accepted");
    assert!(!p.verify(17, 2_515, None), "missing checksum accepted");
    // Different keys give different checksums (the Trojan cannot precompute
    // without the fused secret).
    let other = RequestProtection::new(0xABCD_EF02);
    assert_ne!(c, other.checksum(17, 2_515));
}

#[test]
fn detector_plus_localizer_find_planted_trojans() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let trojans = [NodeId(19), NodeId(50)];

    // Simulate the manager's view over three epochs: two honest epochs then
    // an attacked one (exactly what RequestAnomalyDetector consumes).
    let mut detector = RequestAnomalyDetector::new(DetectorConfig::default());
    for src in mesh.iter_nodes() {
        if src == manager {
            continue;
        }
        detector.observe(src, 0, 2_000.0);
        detector.observe(src, 1, 2_000.0);
        let tampered = mesh
            .xy_path(src, manager)
            .iter()
            .any(|n| trojans.contains(n));
        detector.observe(src, 2, if tampered { 0.0 } else { 2_000.0 });
    }
    let flagged = detector.flagged_cores();
    assert!(!flagged.is_empty());

    let localizer = TrojanLocalizer::new(mesh, manager);
    let report = localizer.localize(&flagged, &detector.clean_cores());
    for t in trojans {
        assert!(report.suspects.contains(&t), "missed trojan {t}");
    }
    assert!(report.unexplained.is_empty());
    // The suspect set is focused, not "everything": fewer than a quarter of
    // the chip.
    assert!(
        report.suspects.len() < 16,
        "suspect set too broad: {:?}",
        report.suspects
    );
}

#[test]
fn probing_catches_soft_scaling_that_ewma_misses() {
    // A gentle 60%-scaling Trojan stays above the EWMA detector's 50%
    // threshold — but probe requests with keyed pseudo-random values expose
    // any modification, and the localizer pins the Trojan from the probe
    // verdicts. This runs through the real cycle-accurate network.
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let trojan = NodeId(19);
    let mut fleet = TrojanFleet::new(&[trojan], TamperRule::ScalePercent(60));
    fleet.configure_all(&[], manager, true);
    let mut net = htpb_core::Network::with_inspector(htpb_core::NetworkConfig::new(mesh), fleet);

    // Phase 1: steady honest requests. The Trojan scales them to 60%,
    // which stays above the EWMA detector's 50% collapse threshold — the
    // passive detector is blind to this Trojan.
    let mut ewma = RequestAnomalyDetector::new(DetectorConfig::default());
    for epoch in 0..4u64 {
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            net.inject(htpb_core::Packet::power_request(src, manager, 2_000))
                .unwrap();
        }
        assert!(net.run_until_idle(100_000));
        for d in net.drain_ejected() {
            assert!(
                ewma.observe(d.packet.src(), epoch, f64::from(d.packet.payload()))
                    .is_none(),
                "EWMA should not fire on steady 60% scaling"
            );
        }
    }

    // Phase 2: a probing campaign over the same network catches it.
    let plan = ProbePlan::default_band(0xFEED);
    let mut campaign = ProbeCampaign::new();
    for epoch in 0..4u64 {
        for src in mesh.iter_nodes() {
            if src == manager {
                continue;
            }
            let probe = plan.expected(src, epoch);
            net.inject(htpb_core::Packet::power_request(src, manager, probe))
                .unwrap();
        }
        assert!(net.run_until_idle(100_000));
        for d in net.drain_ejected() {
            campaign.record(&plan, d.packet.src(), epoch, d.packet.payload());
        }
    }
    let tampered = campaign.tampered_sources();
    assert!(!tampered.is_empty(), "probes caught nothing");
    let report = TrojanLocalizer::new(mesh, manager).localize(&tampered, &campaign.clean_sources());
    assert!(
        report.suspects.contains(&trojan),
        "probe localization missed the trojan: {:?}",
        report.suspects
    );
    assert!(report.minimal_explanation.len() <= 2);
}

#[test]
fn end_to_end_rejections_identify_infected_routes() {
    // Use the real system's rejection counter as the detector signal:
    // protection on, Trojans on two routers; every rejected request's
    // source lies on an infected route.
    let mesh = Mesh2d::new(8, 8).unwrap();
    let trojans = [NodeId(21)];
    let (_, rejected, _) = run_system(mesh, &trojans, Some(RequestProtection::new(7)));
    // Each epoch, every source routed through node 21 is rejected once.
    // Over 8 epochs (2 warmup + 6 measured) that is a multiple of the
    // per-epoch infected-source count. Just require a healthy signal:
    assert!(rejected >= 6, "only {rejected} rejections");
}
