//! Golden-value regression tests: exact expected outputs for deterministic
//! computations (analytic infection rates, placement metrics, sensitivity
//! values, area arithmetic). Any change to these is a semantic change to
//! the reproduction and must be deliberate.

use htpb_core::{
    analytic_infection_rate, density_eta, distance_rho, sensitivity_phi, AreaReport, Benchmark,
    DvfsTable, Mesh2d, NodeId, Placement, PlacementStrategy,
};

#[test]
fn golden_analytic_infection_8x8_center() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center(); // node 36 at (4,4)
                                 // Single Trojans at hand-verified positions.
                                 // Node 35 = (3,4): west neighbour of the manager. Under XY it carries
                                 // the requests of every source with x < 4 that ends its X-phase through
                                 // (3,4)... exact value pinned below.
    let single = |node: u16| analytic_infection_rate(mesh, manager, &[NodeId(node)], None);
    // Manager router: everything.
    assert!((single(36) - 1.0).abs() < 1e-12);
    // (4,3), north neighbour on the manager column: carries all sources
    // with y < 4 → rows 0..=3 (8 nodes each) = 32 of 63.
    assert!((single(28) - 32.0 / 63.0).abs() < 1e-12);
    // (3,4), west neighbour off the column: sources in row 4 with x < 4
    // plus nothing else (X-phase only passes row-4 nodes) = 4 of 63.
    assert!((single(35) - 4.0 / 63.0).abs() < 1e-12);
    // A corner Trojan catches only the corner source itself.
    assert!((single(0) - 1.0 / 63.0).abs() < 1e-12);
}

#[test]
fn golden_placement_metrics() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let p = Placement::generate(mesh, 4, &PlacementStrategy::CornerCluster, &[manager]);
    // Corner cluster of 4 = nodes (0,0),(1,0),(0,1) and one of the
    // distance-2 nodes; closest-first with id tie-break → 0,1,8,2.
    assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(8)]);
    let (wx, wy) = p.virtual_center(mesh).unwrap();
    assert!((wx - 0.75).abs() < 1e-12);
    assert!((wy - 0.25).abs() < 1e-12);
    // rho = |0.75-4| + |0.25-4| = 3.25 + 3.75 = 7.0
    assert!((p.distance_rho(mesh, manager).unwrap() - 7.0).abs() < 1e-12);
    // eta = mean Manhattan distance to (0.75, 0.25):
    // n0 (0,0): 1.0; n1 (1,0): 0.5; n2 (2,0): 1.5; n8 (0,1): 1.5 → 1.125
    assert!((density_eta(mesh, p.nodes()).unwrap() - 1.125).abs() < 1e-12);
    let _ = distance_rho(mesh, p.nodes(), manager);
}

#[test]
fn golden_sensitivity_values() {
    // Φ (Definition 5) for the extreme benchmarks, pinned to 1e-6. The
    // telescoping sum over equal-width level pairs reduces to
    // (T(τ_max) − T(τ_min)) / Δτ summed per pair.
    let table = DvfsTable::default_six_level();
    let phi_bs = sensitivity_phi(&Benchmark::Blackscholes.profile(), &table);
    let phi_cn = sensitivity_phi(&Benchmark::Canneal.profile(), &table);
    assert!((phi_bs - 5.742176).abs() < 1e-5, "blackscholes {phi_bs}");
    assert!((phi_cn - 1.608413).abs() < 1e-5, "canneal {phi_cn}");
}

#[test]
fn golden_area_arithmetic() {
    let r = AreaReport::new(60, 512);
    assert_eq!(format!("{:.4}", r.trojan_area_um2()), "730.2960");
    assert_eq!(format!("{:.4}", r.trojan_power_uw()), "33.0108");
    assert_eq!(format!("{:.5}", r.area_fraction() * 100.0), "0.00199");
}

#[test]
fn golden_simulated_equals_analytic_on_fixed_seed() {
    // One pinned configuration ties the cycle-accurate simulator to the
    // analytic model forever.
    let exp = htpb_core::InfectionExperiment::new(64);
    let p = exp.placement(6, &PlacementStrategy::Random { seed: 2024 });
    let simulated = exp.measure(&p);
    let analytic = analytic_infection_rate(exp.mesh(), exp.manager_node(), p.nodes(), None);
    assert_eq!(simulated.to_bits(), analytic.to_bits());
}
