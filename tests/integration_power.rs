//! Integration tests of the power-budgeting protocol riding the NoC inside
//! the full many-core system: requests out, allocation, grants back, DVFS
//! applied — with every allocation policy.

use htpb_core::{
    AllocatorKind, AppRole, Benchmark, FrequencyLevel, Mesh2d, SystemBuilder, Workload,
};

fn workload() -> Workload {
    Workload::new()
        .app(Benchmark::Blackscholes, 6, AppRole::Legitimate)
        .app(Benchmark::Canneal, 6, AppRole::Legitimate)
}

#[test]
fn protocol_round_trip_under_every_allocator() {
    for kind in AllocatorKind::ALL {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut sys = SystemBuilder::new(mesh)
            .workload(workload())
            .allocator(kind)
            .build()
            .unwrap();
        sys.run_epochs(3);
        assert!(sys.manager().epochs_run() >= 3, "{}", kind.name());
        let summary = sys.manager().last_summary().unwrap();
        assert_eq!(summary.requesters, 12, "{}", kind.name());
        assert!(
            summary.total_granted_mw <= sys.manager().budget_mw() + 1e-6,
            "{} violated the budget",
            kind.name()
        );
        // Grants landed: at least one tile left the bottom level.
        assert!(
            sys.tiles()
                .iter()
                .any(|t| t.is_assigned() && t.level() > FrequencyLevel::MIN),
            "{}: no grant ever applied",
            kind.name()
        );
    }
}

#[test]
fn chip_power_draw_respects_budget_after_convergence() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let mut sys = SystemBuilder::new(mesh)
        .workload(workload())
        .budget_fraction(0.5)
        .build()
        .unwrap();
    sys.run_epochs(4);
    // Sum the power of the levels the cores actually run at; the starved
    // floor (retention at the lowest level) is physically outside the
    // managed budget, so only count non-starved tiles.
    let model = sys.model().clone();
    let draw: f64 = sys
        .tiles()
        .iter()
        .filter(|t| t.is_assigned() && !t.is_starved())
        .map(|t| model.power_mw(t.level()))
        .sum();
    assert!(
        draw <= sys.manager().budget_mw() * 1.05,
        "chip draws {draw} mW against budget {} mW",
        sys.manager().budget_mw()
    );
}

#[test]
fn richer_budget_means_no_less_performance() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let run = |fraction: f64| {
        let mut sys = SystemBuilder::new(mesh)
            .workload(workload())
            .budget_fraction(fraction)
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.begin_measurement();
        sys.run_epochs(3);
        sys.performance_report()
            .apps
            .iter()
            .map(|a| a.theta)
            .sum::<f64>()
    };
    let poor = run(0.2);
    let mid = run(0.6);
    let rich = run(1.5);
    assert!(mid >= poor, "mid {mid} < poor {poor}");
    assert!(rich >= mid, "rich {rich} < mid {mid}");
    assert!(rich > poor * 1.2, "budget had no effect: {poor} vs {rich}");
}

#[test]
fn compute_bound_apps_request_more_power() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let sys = SystemBuilder::new(mesh)
        .workload(workload())
        .build()
        .unwrap();
    let model = sys.model();
    let mut bs_req = None;
    let mut cn_req = None;
    for t in sys.tiles() {
        if let Some(a) = t.assignment() {
            let req = t.desired_request_mw(model, 0.90).unwrap();
            match a.profile.benchmark {
                Benchmark::Blackscholes => bs_req = Some(req),
                Benchmark::Canneal => cn_req = Some(req),
                _ => {}
            }
        }
    }
    assert!(
        bs_req.unwrap() > cn_req.unwrap(),
        "compute-bound should ask for more: {bs_req:?} vs {cn_req:?}"
    );
}

#[test]
fn pi_allocator_converges_over_epochs() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let mut sys = SystemBuilder::new(mesh)
        .workload(Workload::new().app(Benchmark::Vips, 15, AppRole::Legitimate))
        .allocator(AllocatorKind::Pi)
        .budget_fraction(0.5)
        .build()
        .unwrap();
    sys.run_epochs(8);
    let s = sys.manager().last_summary().unwrap();
    // After convergence the PI controller grants close to the full budget.
    assert!(
        s.total_granted_mw > sys.manager().budget_mw() * 0.8,
        "PI left budget unused: {} of {}",
        s.total_granted_mw,
        sys.manager().budget_mw()
    );
}

#[test]
fn explicit_budget_override_is_used() {
    let mesh = Mesh2d::new(4, 4).unwrap();
    let sys = SystemBuilder::new(mesh)
        .workload(workload())
        .budget_mw(3_333.0)
        .build()
        .unwrap();
    assert!((sys.manager().budget_mw() - 3_333.0).abs() < 1e-9);
}
