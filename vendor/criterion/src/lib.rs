//! Offline vendored stand-in for the subset of the `criterion` API this
//! workspace's benches use. The build container has no crates.io access,
//! so the real crate cannot be fetched.
//!
//! The statistics engine is intentionally simple: each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the median
//! and min/max per-iteration time. Good enough to eyeball perf movement;
//! not a replacement for upstream criterion's analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: pull code and data into cache before timing.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` product per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.results.is_empty() {
            println!("{label}: no samples");
            return;
        }
        self.results.sort_unstable();
        let median = self.results[self.results.len() / 2];
        let min = self.results[0];
        let max = *self.results.last().expect("non-empty");
        println!(
            "{label}: median {:?} (min {:?}, max {:?}, n={})",
            median,
            min,
            max,
            self.results.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, not acted on).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver (subset of upstream's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
