//! Offline vendored stand-in for `serde_derive`: the derive macros accept
//! the same attribute grammar but expand to nothing. The workspace only
//! ever *derives* `Serialize`/`Deserialize` (no code path serialises
//! through serde), so empty expansions keep every type compiling without
//! network access to crates.io.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
