//! Offline vendored stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! The container this repository builds in has no network access and no
//! crates.io mirror, so the real `rand` crate cannot be fetched. This crate
//! keeps the workspace self-contained. The generator is xoshiro256**
//! seeded through SplitMix64 — statistically solid for simulation seeding,
//! *not* cryptographic, and its streams differ from upstream `StdRng`
//! (ChaCha12). All in-repo determinism contracts key off our own seeds, so
//! only cross-library reproducibility is affected.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator core (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`; `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor of `v` (for inclusive ranges); saturating.
    fn successor(v: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                debug_assert!(span > 0, "empty gen_range span");
                // Widening multiply maps a u64 draw onto the span with
                // negligible bias for the span sizes this workspace uses.
                let draw = rng.next_u64() as u128;
                lo.wrapping_add(((draw * span) >> 64) as $t)
            }
            fn successor(v: Self) -> Self {
                v.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn successor(v: Self) -> Self {
        v
    }
}

/// Ranges that `gen_range` accepts (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, T::successor(hi))
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic generators (`rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// Slice sampling helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use seq::SliceRandom;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements virtually never shuffle to identity");
    }
}
