//! Offline vendored stand-in for the `serde` facade. The workspace only
//! derives `Serialize`/`Deserialize` as forward-looking annotations; no
//! code path performs serde serialisation, so the derives expand to
//! nothing (see `vendor/serde_derive`) and no trait bounds are emitted.
//! The marker traits below exist so `T: Serialize` bounds written by
//! future code still name a real trait.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
