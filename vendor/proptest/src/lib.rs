//! Offline vendored stand-in for the subset of the `proptest` crate this
//! workspace uses. The build container has no crates.io access, so the
//! real crate cannot be fetched; this reimplementation keeps the
//! property-based test suites runnable.
//!
//! Scope (deliberately smaller than upstream):
//! - random-input generation is deterministic per test (seeded from the
//!   test name), so runs are reproducible and CI-stable;
//! - there is **no shrinking** — a failing case reports the assertion
//!   message, not a minimised input;
//! - only the strategies the suites use exist: ranges, tuples, `Just`,
//!   `prop_map`/`prop_filter`, `prop_oneof!`, `collection::{vec,
//!   btree_set}`, `array::uniform4`, `option::of`, `sample::select` and
//!   `any` for small scalar types;
//! - failure persistence mirrors upstream's workflow but not its format:
//!   a failing case appends `xs <property> <hex-rng-state>` to the
//!   `.proptest-regressions` file next to the test source, and every
//!   persisted state is replayed before novel cases are generated.
//!   Upstream `cc` lines (shrunk-case hashes) are tolerated and ignored —
//!   they cannot be replayed without upstream's shrinker.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Deterministic test RNG (SplitMix64).
// ---------------------------------------------------------------------------

/// The generator handed to strategies. Deterministic: each test derives its
/// seed from its own name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the test name).
    #[must_use]
    pub fn from_label(label: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Rebuilds the generator from a raw state captured by [`state`]
    /// (failure-persistence replay).
    ///
    /// [`state`]: TestRng::state
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        TestRng { state }
    }

    /// The raw generator state. Capturing it *before* a case draws its
    /// inputs makes the case replayable via [`TestRng::from_state`].
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Errors and config.
// ---------------------------------------------------------------------------

/// Why a test case did not pass (subset of upstream's type).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the input: resample, don't fail.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (resampled) case with the given reason.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Executes one property: keeps sampling until `config.cases` cases pass,
/// panicking on the first failure. Driven by the `proptest!` macro when no
/// persistence location is known (direct callers, doctests).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    run_cases(config, None, name, case);
}

/// [`run_proptest`] with failure persistence: replays every `xs` state
/// recorded for `name` in the `.proptest-regressions` file next to
/// `source_file`, then samples novel cases, appending the pre-case RNG
/// state of any new failure to that file. Driven by the `proptest!` macro,
/// which supplies `env!("CARGO_MANIFEST_DIR")` and `file!()`.
pub fn run_proptest_persisted<F>(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    name: &str,
    case: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let path = persistence::regression_path(manifest_dir, source_file);
    run_cases(config, Some(&path), name, case);
}

fn run_cases<F>(config: &ProptestConfig, regressions: Option<&Path>, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Phase 1: persisted regressions first, like upstream — a past failure
    // must stay fixed before novel sampling proves anything.
    if let Some(path) = regressions {
        for state in persistence::load_states(path, name) {
            let mut rng = TestRng::from_state(state);
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{name}: persisted regression xs {state:#018x} failed \
                     (from {}): {msg}",
                    path.display()
                ),
            }
        }
    }
    // Phase 2: novel cases.
    let mut rng = TestRng::from_label(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_budget = u64::from(config.cases) * 256;
    while passed < config.cases {
        let state_before = rng.state();
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "{name}: too many prop_assume rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let saved = regressions
                    .map(
                        |path| match persistence::append_state(path, name, state_before) {
                            Ok(()) => format!(
                                "; case saved as `xs {name} {state_before:#018x}` in {}",
                                path.display()
                            ),
                            Err(e) => {
                                format!("; could not save the case to {}: {e}", path.display())
                            }
                        },
                    )
                    .unwrap_or_default();
                panic!("{name}: case {passed} failed: {msg}{saved}")
            }
        }
    }
}

/// Where failing cases are recorded and replayed from.
mod persistence {
    use super::{Path, PathBuf};
    use std::fs;
    use std::io::{self, Write as _};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
#
# Format (vendored runner): `xs <property> <hex-rng-state>` replays the
# generator state that produced a failing case. `cc` lines written by
# the upstream proptest crate are kept but ignored: without upstream's
# shrinker they cannot be replayed.
";

    /// The `.proptest-regressions` file sitting next to the test source.
    ///
    /// `source_file` is the caller's `file!()`, which rustc emits relative
    /// to the directory cargo was invoked from (the workspace root for
    /// this repo); `manifest_dir` anchors the search, walking up its
    /// ancestors until the source file is found. Falls back to
    /// interpreting `source_file` relative to `manifest_dir` when nothing
    /// matches (the file then lands there on the first failure).
    pub(super) fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let source = Path::new(source_file);
        let resolved = if source.is_absolute() {
            source.to_path_buf()
        } else {
            Path::new(manifest_dir)
                .ancestors()
                .map(|a| a.join(source))
                .find(|c| c.exists())
                .unwrap_or_else(|| Path::new(manifest_dir).join(source))
        };
        resolved.with_extension("proptest-regressions")
    }

    /// Every persisted RNG state for `name`, in file order. A missing file
    /// is an empty corpus; comments, blank lines, upstream `cc` lines and
    /// other properties' entries are skipped.
    pub(super) fn load_states(path: &Path, name: &str) -> Vec<u64> {
        let Ok(text) = fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut states = Vec::new();
        for line in text.lines().map(str::trim) {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("xs") {
                continue; // comment, blank, `cc ...`, or junk
            }
            if parts.next() != Some(name) {
                continue; // another property in the same file
            }
            let Some(state) = parts.next().and_then(|s| {
                let s = s.strip_prefix("0x").unwrap_or(s);
                u64::from_str_radix(s, 16).ok()
            }) else {
                eprintln!(
                    "[proptest] warning: unreadable xs line for {name} in {}: {line:?}",
                    path.display()
                );
                continue;
            };
            states.push(state);
        }
        states
    }

    /// Appends one failing state, creating the file (with its header) on
    /// first use. Best-effort by contract: the caller panics with the
    /// failure either way and reports whether the save worked.
    pub(super) fn append_state(path: &Path, name: &str, state: u64) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let fresh = !path.exists();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        if fresh {
            file.write_all(HEADER.as_bytes())?;
        }
        writeln!(file, "xs {name} {state:#018x}")
    }
}

// ---------------------------------------------------------------------------
// Strategy core.
// ---------------------------------------------------------------------------

/// A generator of test values (subset of upstream's `Strategy`: generation
/// only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, resampling otherwise.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 10000 consecutive samples",
            self.reason
        )
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given arms; must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Scalar strategies: ranges and `any`.
// ---------------------------------------------------------------------------

/// Scalars that ranges and `any` can generate.
pub trait SampleScalar: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Successor for inclusive upper bounds (saturating).
    fn successor(self) -> Self;
    /// Sample from the full domain (`any::<T>()`).
    fn sample_any(rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_scalar_int {
    ($($t:ty),*) => {$(
        impl SampleScalar for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                debug_assert!(span > 0, "empty range");
                let draw = u128::from(rng.next_u64());
                lo.wrapping_add(((draw * span) >> 64) as $t)
            }
            fn successor(self) -> Self { self.saturating_add(1) }
            fn sample_any(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_scalar_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleScalar for f64 {
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        lo + rng.unit_f64() * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
    fn sample_any(rng: &mut TestRng) -> Self {
        // Finite values only: property suites here never need NaN/inf.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl SampleScalar for bool {
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
        let _ = (lo, hi);
        rng.next_u64() & 1 == 1
    }
    fn successor(self) -> Self {
        self
    }
    fn sample_any(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: SampleScalar> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleScalar> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, *self.start(), self.end().successor())
    }
}

/// Strategy over a scalar's full domain — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: SampleScalar> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_any(rng)
    }
}

/// Generates arbitrary values of a scalar type.
#[must_use]
pub fn any<T: SampleScalar>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------------
// Container strategies.
// ---------------------------------------------------------------------------

/// Sizes accepted by the collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.hi > self.lo, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// `Vec` / `BTreeSet` strategies.
pub mod collection {
    use super::*;

    /// Strategy for vectors of `elem` values with lengths from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets; duplicate draws shrink the set, mirroring
    /// upstream's "size is an upper bound under collisions" behaviour.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 32 + 32 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::*;

    /// Strategy for `[V; 4]` arrays of independently drawn elements.
    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4 { elem }
    }

    /// See [`uniform4`].
    pub struct Uniform4<S> {
        elem: S,
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.elem.generate(rng),
                self.elem.generate(rng),
                self.elem.generate(rng),
                self.elem.generate(rng),
            ]
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `None` half the time, `Some(elem)` otherwise.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy { elem }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        elem: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.elem.generate(rng))
            }
        }
    }
}

/// Sampling from explicit value lists.
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "sample::select on empty list");
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Asserts a property inside a proptest body; on failure the case errors
/// (rather than panicking) so the runner can attach context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current inputs without failing; the runner resamples.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples inputs and checks the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest_persisted(
                &config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    /// Path alias matching upstream's `prelude::prop`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::TestRng::from_label("bounds");
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = crate::Strategy::generate(&(2u16..=4), &mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn determinism_per_label() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::from_label("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::from_label("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(x in 0u32..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(u32::from(flag) * 100 + x, if flag { 100 + x } else { x });
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![Just(1u32), 5u32..8, any::<u32>().prop_map(|x| x % 2)]) {
            prop_assert!(v == 1 || (5..8).contains(&v) || v < 2);
        }
    }

    mod persistence {
        use crate::{run_proptest_persisted, ProptestConfig, TestCaseError, TestRng};
        use std::fs;
        use std::path::PathBuf;

        /// A throwaway crate layout: `<tmp>/fake-crate/tests/suite.rs`,
        /// so `regression_path` resolves the way a real suite does.
        fn fake_crate(tag: &str) -> (PathBuf, PathBuf) {
            let root =
                std::env::temp_dir().join(format!("proptest-persist-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            let manifest = root.join("fake-crate");
            fs::create_dir_all(manifest.join("tests")).unwrap();
            fs::write(manifest.join("tests/suite.rs"), "// test source\n").unwrap();
            (root, manifest)
        }

        #[test]
        fn regression_path_sits_next_to_the_source() {
            let (root, manifest) = fake_crate("path");
            // `file!()`-style workspace-relative path, anchored by walking
            // up from the manifest dir (here the manifest itself matches).
            let p =
                crate::persistence::regression_path(manifest.to_str().unwrap(), "tests/suite.rs");
            assert_eq!(p, manifest.join("tests/suite.proptest-regressions"));
            let _ = fs::remove_dir_all(&root);
        }

        #[test]
        fn failure_is_persisted_and_replayed_before_novel_cases() {
            let (root, manifest) = fake_crate("replay");
            let manifest_s = manifest.to_str().unwrap();
            let cfg = ProptestConfig::with_cases(64);

            // A property that fails once some drawn value crosses a line.
            let mut seen = Vec::new();
            let failing = |rng: &mut TestRng| {
                let x = rng.next_u64() % 100;
                seen.push(x);
                if x >= 90 {
                    return Err(TestCaseError::fail(format!("x = {x}")));
                }
                Ok(())
            };
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_proptest_persisted(&cfg, manifest_s, "tests/suite.rs", "crossing", failing);
            }));
            assert!(panicked.is_err(), "seen draws: {seen:?}");
            let bad = *seen.last().unwrap();

            let file = manifest.join("tests/suite.proptest-regressions");
            let text = fs::read_to_string(&file).unwrap();
            assert!(
                text.starts_with("# Seeds for failure cases"),
                "fresh file gets the header:\n{text}"
            );
            assert_eq!(
                text.lines()
                    .filter(|l| l.starts_with("xs crossing "))
                    .count(),
                1,
                "{text}"
            );

            // On the next run the very first case replayed must be the
            // saved one — and it still fails, so the property panics
            // before any novel sampling.
            let mut first = None;
            let replayed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_proptest_persisted(&cfg, manifest_s, "tests/suite.rs", "crossing", |rng| {
                    let x = rng.next_u64() % 100;
                    if first.is_none() {
                        first = Some(x);
                    }
                    if x >= 90 {
                        return Err(TestCaseError::fail(format!("x = {x}")));
                    }
                    Ok(())
                });
            }));
            assert!(replayed.is_err());
            assert_eq!(first, Some(bad), "persisted case replays first");
            let _ = fs::remove_dir_all(&root);
        }

        #[test]
        fn upstream_cc_lines_and_foreign_entries_are_tolerated() {
            let (root, manifest) = fake_crate("cc");
            let file = manifest.join("tests/suite.proptest-regressions");
            fs::write(
                &file,
                "# comment\n\
                 cc 9c724b7b77132a7f67207e364cb042db7d4f6038ae562db6ab60380e6092800c # shrinks to x = 3\n\
                 xs other_property 0x0000000000000001\n\
                 \n\
                 xs mine 0x00000000000000ff\n",
            )
            .unwrap();
            assert_eq!(crate::persistence::load_states(&file, "mine"), vec![0xff]);
            assert_eq!(
                crate::persistence::load_states(&file, "other_property"),
                vec![1]
            );
            // A clean property with such a file must simply pass.
            run_proptest_persisted(
                &ProptestConfig::with_cases(8),
                manifest.to_str().unwrap(),
                "tests/suite.rs",
                "mine",
                |_rng| Ok(()),
            );
            let _ = fs::remove_dir_all(&root);
        }
    }
}
