//! Ablation over the power-budgeting algorithm: the paper claims the attack
//! works "irrespective of the power budgeting algorithms" the manager runs
//! (Section I). This example runs the same mix and Trojan fleet under all
//! four allocation policies and shows Q > 1 for every one of them.
//!
//! Usage: `cargo run --release --example allocator_ablation -- [mix1-4] [nodes]`

use htpb_core::{run_campaign, AllocatorKind, CampaignConfig, Mix};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mix = match args.get(1).map(String::as_str) {
        Some("mix2" | "2") => Mix::Mix2,
        Some("mix3" | "3") => Mix::Mix3,
        Some("mix4" | "4") => Mix::Mix4,
        _ => Mix::Mix1,
    };
    let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);

    println!(
        "allocator ablation: {} on {} nodes, Trojans always on\n",
        mix.name(),
        nodes
    );
    println!("allocator     infection    Q(Δ,Γ)   best attacker   worst victim");
    let mut all_effective = true;
    for kind in AllocatorKind::ALL {
        let mut cfg = CampaignConfig::new(mix);
        cfg.nodes = nodes;
        cfg.allocator = kind;
        let r = run_campaign(&cfg, 1.0);
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>14.2}x {:>14.2}x",
            kind.name(),
            r.outcome.infection_rate,
            r.outcome.q_value,
            r.outcome.max_attacker_gain(),
            r.outcome.min_victim_change()
        );
        all_effective &= r.outcome.q_value > 1.0;
    }
    println!(
        "\nattack effective under every policy (Q > 1): {all_effective} \
         (the paper's 'irrespective of the algorithm' claim)"
    );
}
