//! Infection-rate sweep (the Fig. 3 machinery), configurable from the
//! command line.
//!
//! Usage: `cargo run --release --example infection_sweep -- [nodes] [center|corner] [max_hts]`
//!
//! For each Trojan count up to `max_hts`, measures the fraction of power
//! requests tampered with when the Trojans are placed randomly (averaged
//! over several seeds), and cross-checks the cycle-accurate measurement
//! against the closed-form XY-route estimate.

use htpb_core::{analytic_infection_rate, InfectionExperiment, ManagerLocation, PlacementStrategy};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let manager = match args.get(2).map(String::as_str) {
        Some("corner") => ManagerLocation::Corner,
        _ => ManagerLocation::Center,
    };
    let max_hts: usize = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (nodes / 2).min(32) as usize);

    let exp = InfectionExperiment::new(nodes).manager(manager);
    println!(
        "infection sweep: {} nodes, manager at {:?} (node {}), up to {} HTs",
        nodes,
        manager,
        exp.manager_node(),
        max_hts
    );
    println!("#HTs\tsimulated\tanalytic\tdelta");

    let seeds: Vec<u64> = (0..5).collect();
    let step = (max_hts / 16).max(1);
    for m in (0..=max_hts).step_by(step) {
        let simulated = exp.measure_random_avg(m, &seeds);
        // Analytic average over the same seeds.
        let analytic: f64 = seeds
            .iter()
            .map(|&seed| {
                let p = exp.placement(m, &PlacementStrategy::Random { seed });
                analytic_infection_rate(exp.mesh(), exp.manager_node(), p.nodes(), None)
            })
            .sum::<f64>()
            / seeds.len() as f64;
        println!(
            "{m}\t{simulated:.4}\t{analytic:.4}\t{:+.5}",
            simulated - analytic
        );
    }
    println!("\n(simulated and analytic agree exactly under XY routing;");
    println!(" try odd-even adaptive routing via the library API for a contrast)");
}
