//! Defense demo — the "protection against such attacks" the paper's
//! conclusion calls for, end to end:
//!
//! 1. run the attack against the vulnerable baseline protocol (big Q);
//! 2. re-run with keyed-checksum request authentication
//!    ([`htpb_core::RequestProtection`]) — the Trojan's payload rewrites are
//!    detected and discarded, and the attack collapses to Q ≈ 1;
//! 3. feed the detector's observations to the path-intersection localizer
//!    and recover which routers host the Trojans.
//!
//! Run with: `cargo run --release --example defense_demo`

use htpb_core::{
    AppRole, Benchmark, Mesh2d, NodeId, RequestProtection, SystemBuilder, TamperRule, TrojanFleet,
    Workload,
};
use htpb_defense::{DetectorConfig, RequestAnomalyDetector, TrojanLocalizer};

fn workload() -> Workload {
    Workload::new()
        .app(Benchmark::Barnes, 20, AppRole::Malicious)
        .app(Benchmark::Raytrace, 20, AppRole::Legitimate)
}

fn infected_fleet(trojans: &[NodeId], manager: NodeId) -> TrojanFleet {
    // (helper shared by both runs)
    let mut fleet = TrojanFleet::new(trojans, TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    fleet
}

fn victim_theta(sys: &htpb_core::ManyCoreSystem<TrojanFleet>) -> f64 {
    sys.performance_report()
        .apps
        .iter()
        .filter(|a| a.role == AppRole::Legitimate)
        .map(|a| a.theta)
        .sum()
}

fn main() {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    // The optimizer's favourite spot: a ring on the manager's doorstep
    // catches every request (cf. `optimal_placement`).
    let trojans: Vec<NodeId> = htpb_core::Direction::ALL
        .into_iter()
        .filter_map(|d| mesh.neighbor(manager, d))
        .collect();
    println!("== defending the power-budget protocol ==");
    println!(
        "chip: 8x8, manager at {manager}, Trojans at {:?}\n",
        trojans
    );

    // 1. Vulnerable baseline under attack.
    let mut attacked = SystemBuilder::new(mesh)
        .manager(manager)
        .workload(workload())
        .build_with_inspector(infected_fleet(&trojans, manager))
        .unwrap();
    attacked.run_epochs(2);
    attacked.begin_measurement();
    attacked.run_epochs(6);
    let theta_attacked = victim_theta(&attacked);
    println!(
        "vulnerable protocol: victim theta = {theta_attacked:.2}, infection = {:.2}",
        attacked.performance_report().infection_rate()
    );

    // 2. Same chip, same Trojans, checksummed requests.
    let mut protected = SystemBuilder::new(mesh)
        .manager(manager)
        .workload(workload())
        .protection(RequestProtection::new(0xDEAD_BEEF))
        .build_with_inspector(infected_fleet(&trojans, manager))
        .unwrap();
    protected.run_epochs(2);
    protected.begin_measurement();
    protected.run_epochs(6);
    let theta_protected = victim_theta(&protected);
    println!(
        "checksummed protocol: victim theta = {theta_protected:.2}, \
         tampered requests detected+rejected = {}",
        protected.requests_rejected()
    );
    println!(
        "protection recovered {:.0}% of victim performance\n",
        theta_protected / theta_attacked * 100.0 - 100.0
    );

    // 3. Localization. A full ring around the manager flags *every* source
    //    and leaves nothing to triangulate with, so show the localizer on a
    //    sparser infection: two Trojans in the field.
    let sparse = [NodeId(20), NodeId(43)];
    println!("localizing a sparser implant at {sparse:?}:");
    let mut detector = RequestAnomalyDetector::new(DetectorConfig::default());
    // Feed the detector what the manager saw: two honest epochs of per-core
    // demand, then the attacked epoch's arrivals.
    for t in attacked.tiles() {
        if let Some(mw) = t.desired_request_mw(attacked.model(), 0.90) {
            let src = t.node();
            detector.observe(src, 0, mw);
            detector.observe(src, 1, mw);
            let tampered = mesh
                .xy_path(src, manager)
                .iter()
                .any(|n| sparse.contains(n));
            detector.observe(src, 2, if tampered { 0.0 } else { mw });
        }
    }
    let flagged = detector.flagged_cores();
    let clean = detector.clean_cores();
    println!(
        "detector flagged {} cores, cleared {} cores",
        flagged.len(),
        clean.len()
    );
    let localizer = TrojanLocalizer::new(mesh, manager);
    let report = localizer.localize(&flagged, &clean);
    println!(
        "suspect routers: {} of {} ({:?} ...)",
        report.suspects.len(),
        mesh.nodes(),
        &report.suspects[..report.suspects.len().min(6)]
    );
    println!("minimal explanation: {:?}", report.minimal_explanation);
    let found = sparse
        .iter()
        .filter(|t| report.suspects.contains(t))
        .count();
    println!(
        "true Trojans inside the suspect set: {found}/{}",
        sparse.len()
    );
}
