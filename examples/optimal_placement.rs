//! Solves the attack-effect maximisation problem (Eqs. 10–11) and draws the
//! resulting Trojan placement as an ASCII floor plan of the chip.
//!
//! Usage: `cargo run --release --example optimal_placement -- [nodes] [max_hts]`

use htpb_core::{
    analytic_infection_rate, Mesh2d, NodeId, Placement, PlacementOptimizer, PlacementStrategy,
};

fn draw(mesh: Mesh2d, manager: NodeId, placement: &Placement) {
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let node = mesh.node(htpb_core::Coord::new(x, y));
            row.push(if node == manager {
                'M'
            } else if placement.nodes().contains(&node) {
                'T'
            } else {
                '.'
            });
            row.push(' ');
        }
        println!("  {row}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let max_hts: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let mesh = Mesh2d::with_nodes(nodes).expect("valid node count");
    let manager = mesh.center();
    println!(
        "optimizing placement of up to {max_hts} Trojans on {}x{} mesh, manager at {manager}\n",
        mesh.width(),
        mesh.height()
    );

    let optimizer = PlacementOptimizer::new(mesh, manager, max_hts).exclude(&[manager]);
    let best = optimizer.optimize();
    println!(
        "optimal: {} HTs, rho = {:.2}, eta = {:.2}, predicted infection = {:.3} ({})",
        best.m, best.rho, best.eta, best.infection, best.description
    );
    println!("\nfloor plan (M = manager, T = Trojan):");
    draw(mesh, manager, &best.placement);

    // Contrast with a random placement of the same size.
    let random = Placement::generate(
        mesh,
        best.m,
        &PlacementStrategy::Random { seed: 42 },
        &[manager],
    );
    let random_rate = analytic_infection_rate(mesh, manager, random.nodes(), None);
    println!(
        "\nrandom placement of the same size: infection = {random_rate:.3} \
         ({:.2}x worse than optimal)",
        best.infection / random_rate.max(1e-9)
    );
}
