//! Attack-class comparison (the paper's Section II-B taxonomy, measured):
//! the proposed **false-data** attack vs. the classic **packet-drop**
//! attack, with the same Trojan placement and workload.
//!
//! Two axes are compared:
//! - *strength*: the attack effect Q(Δ, Γ);
//! - *stealth*: what the global manager can see — a drop attack leaves
//!   requesters visibly silent every epoch, while the false-data attack
//!   presents a complete, plausible request stream.
//!
//! Usage: `cargo run --release --example attack_classes -- [mix1-4] [nodes]`

use htpb_core::{
    AppRole, Benchmark, CampaignConfig, Mesh2d, Mix, SystemBuilder, TamperRule, TrojanFleet,
    TrojanMode, Workload,
};

fn measure_missing(mode: TrojanMode) -> usize {
    // Drive a small system directly to read the manager-side silence
    // metric, independent of the campaign plumbing.
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();
    let mut fleet = TrojanFleet::new(&[manager], TamperRule::Zero).with_mode(mode);
    fleet.configure_all(&[], manager, true);
    let mut sys = SystemBuilder::new(mesh)
        .manager(manager)
        .workload(
            Workload::new()
                .app(Benchmark::Barnes, 20, AppRole::Malicious)
                .app(Benchmark::Raytrace, 20, AppRole::Legitimate),
        )
        .build_with_inspector(fleet)
        .unwrap();
    sys.run_epochs(3);
    sys.missing_requesters_last_epoch()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mix = match args.get(1).map(String::as_str) {
        Some("mix2" | "2") => Mix::Mix2,
        Some("mix3" | "3") => Mix::Mix3,
        Some("mix4" | "4") => Mix::Mix4,
        _ => Mix::Mix1,
    };
    let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);

    println!(
        "attack-class comparison on {} ({} nodes)\n",
        mix.name(),
        nodes
    );
    println!("class        Q(Δ,Γ)   worst victim   silent requesters/epoch");
    for (label, mode) in [
        ("false-data", TrojanMode::FalseData),
        ("packet-drop", TrojanMode::PacketDrop),
    ] {
        let mut cfg = CampaignConfig::new(mix);
        cfg.nodes = nodes;
        cfg.ht_mode = mode;
        let r = htpb_core::run_campaign(&cfg, 1.0);
        let missing = measure_missing(mode);
        println!(
            "{:<12} {:>6.2} {:>13.2}x {:>18}",
            label,
            r.outcome.q_value,
            r.outcome.min_victim_change(),
            missing,
        );
    }
    println!(
        "\nThe false-data attack is the paper's contribution: it starves victims\n\
         harder (their tampered requests cap every allocator's grant at ~0)\n\
         while the manager still sees every requester check in — zero silent\n\
         requesters, nothing to alarm on. The drop attack is both weaker\n\
         (victims keep their pre-attack DVFS level) and loud."
    );
}
