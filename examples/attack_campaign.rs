//! A full attack campaign on one benchmark mix (the Fig. 5 / Fig. 6 rig),
//! configurable from the command line.
//!
//! Usage: `cargo run --release --example attack_campaign -- [mix1-4] [duty 0..1] [nodes]`
//!
//! Runs the clean baseline and the attacked chip, then prints the
//! per-application performance change Θ and the attack effect Q.

use htpb_core::{run_campaign, AppRole, CampaignConfig, Mix};

fn parse_mix(s: &str) -> Mix {
    match s {
        "mix2" | "2" => Mix::Mix2,
        "mix3" | "3" => Mix::Mix3,
        "mix4" | "4" => Mix::Mix4,
        _ => Mix::Mix1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mix = parse_mix(args.get(1).map(String::as_str).unwrap_or("mix1"));
    let duty = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.9)
        .clamp(0.0, 1.0);
    let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);

    let mut cfg = CampaignConfig::new(mix);
    cfg.nodes = nodes;
    println!(
        "campaign: {} on {} nodes, Trojan duty {:.0}% (≈ target infection rate)",
        mix.name(),
        nodes,
        duty * 100.0
    );
    println!("attackers: {:?}", mix.attackers());
    println!("victims:   {:?}\n", mix.victims());

    let result = run_campaign(&cfg, duty);

    println!("app              role       Θ (attacked/clean)   starved cores");
    for ((_, role, change), att) in result.outcome.changes.iter().zip(&result.attacked.apps) {
        println!(
            "{:<16} {:<9} {:>10.3}x          {:>6}/{}",
            att.benchmark.name(),
            if *role == AppRole::Malicious {
                "attacker"
            } else {
                "victim"
            },
            change,
            att.starved_cores,
            att.threads
        );
    }
    println!(
        "\nmeasured infection rate: {:.3}",
        result.outcome.infection_rate
    );
    println!("attack effect Q(Δ,Γ):   {:.3}", result.outcome.q_value);
    println!(
        "best attacker gain: {:.2}x, worst victim: {:.2}x",
        result.outcome.max_attacker_gain(),
        result.outcome.min_victim_change()
    );
    println!(
        "\nmanager saw {} victim requests this window ({} tampered)",
        result.attacked.power_requests_delivered, result.attacked.power_requests_modified,
    );
}
