//! Quickstart: a guided tour of the reproduction in under a minute.
//!
//! Builds a small many-core chip, shows the power-budgeting protocol
//! working on clean silicon, then implants a handful of hardware Trojans,
//! re-runs the same workload and prints what the attack did — the paper's
//! core claim end-to-end.
//!
//! Run with: `cargo run --release --example quickstart`

use htpb_core::{
    describe_mixes, describe_platform, run_campaign, AppRole, AreaReport, CampaignConfig, Mesh2d,
    Mix, PowerModel, SystemConfig, TamperRule,
};

fn main() {
    println!("== HT power-budget attack: quickstart ==\n");
    let mesh = Mesh2d::with_nodes(64).unwrap();
    print!("{}", describe_platform(&SystemConfig::new(mesh)));
    print!("{}", describe_mixes());
    println!();

    // 1. The platform: Table-I-flavoured defaults, mix-1 of Table III on a
    //    64-node chip (the paper's smallest evaluated size).
    let mut cfg = CampaignConfig::small(Mix::Mix1);
    cfg.tamper_rule = TamperRule::Zero;
    println!(
        "platform: {} nodes, mix {} ({} attacker app(s), {} victim app(s))",
        cfg.nodes,
        cfg.mix.name(),
        cfg.mix.attackers().len(),
        cfg.mix.victims().len()
    );
    let model = PowerModel::default_45nm();
    println!(
        "power model: {} DVFS levels, {:.0} mW (lowest) to {:.0} mW (peak) per core\n",
        model.table().levels(),
        model.min_power_mw(),
        model.peak_power_mw()
    );

    // 2. Run the same workload clean and under attack (Trojans always on,
    //    clustered on the manager's neighbourhood).
    println!("running clean baseline and attacked chip (a few seconds)...\n");
    let result = run_campaign(&cfg, 1.0);

    println!("per-application outcome (theta = instructions/ns, Def. 1):");
    println!("  app              role       clean θ   attacked θ   change Θ");
    for (clean, attacked) in result.clean.apps.iter().zip(&result.attacked.apps) {
        let change = attacked.theta / clean.theta;
        println!(
            "  {:<16} {:<9} {:>8.2}   {:>10.2}   {:>7.2}x",
            clean.benchmark.name(),
            if clean.role == AppRole::Malicious {
                "attacker"
            } else {
                "victim"
            },
            clean.theta,
            attacked.theta,
            change
        );
    }
    println!(
        "\ninfection rate (victim requests tampered): {:.2}",
        result.outcome.infection_rate
    );
    println!(
        "attack effect Q (Def. 3): {:.2}  (1.0 = no attack; larger = stronger)",
        result.outcome.q_value
    );

    // 3. Why this is hard to catch: the silicon cost of the Trojans.
    let report = AreaReport::new(5, cfg.nodes as usize);
    println!("\nstealth: {report}");
    println!("\nNext steps:");
    println!("  cargo run --release -p htpb-bench --bin fig3   # infection vs #HTs");
    println!("  cargo run --release -p htpb-bench --bin fig5   # Q vs infection per mix");
    println!("  cargo run --release --example optimal_placement");
}
