//! Visualises *where* the attack happens: ASCII heatmaps of (a) router
//! crossbar utilization under the power-request traffic, (b) per-Trojan
//! tamper counts, and (c) which sources' requests arrive infected.
//!
//! Usage: `cargo run --release --example infection_heatmap -- [nodes] [m]`

use htpb_core::{
    Coord, Mesh2d, Network, NetworkConfig, Packet, PlacementStrategy, TamperRule, TrojanFleet,
};

fn shade(v: f64) -> char {
    match (v * 5.0) as u32 {
        0 => '.',
        1 => ':',
        2 => '+',
        3 => '*',
        _ => '#',
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let mesh = Mesh2d::with_nodes(nodes).expect("valid node count");
    let manager = mesh.center();
    let placement =
        htpb_core::Placement::generate(mesh, m, &PlacementStrategy::Random { seed: 7 }, &[manager]);
    let mut fleet = TrojanFleet::new(placement.nodes(), TamperRule::Zero);
    fleet.configure_all(&[], manager, true);
    let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);

    // A few epochs of request traffic.
    let mut infected_src = vec![false; mesh.nodes() as usize];
    for round in 0..4u32 {
        for src in mesh.iter_nodes() {
            if src != manager {
                net.inject(Packet::power_request(src, manager, 1_000 + round))
                    .unwrap();
            }
        }
        assert!(net.run_until_idle(1_000_000));
        for d in net.drain_ejected() {
            if d.modified {
                infected_src[d.packet.src().0 as usize] = true;
            }
        }
    }

    println!(
        "chip {}x{}, manager (M) at {manager}, {m} random Trojans (T)\n",
        mesh.width(),
        mesh.height()
    );

    let util = net.utilization_map();
    let max = *util.iter().max().unwrap_or(&1) as f64;
    println!("router crossbar utilization (darker = busier; requests funnel into M):");
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let n = mesh.node(Coord::new(x, y));
            row.push(if n == manager {
                'M'
            } else {
                shade(util[n.0 as usize] as f64 / max)
            });
            row.push(' ');
        }
        println!("  {row}");
    }

    println!("\ntampering activity (digits = log2 of per-Trojan modified packets):");
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let n = mesh.node(Coord::new(x, y));
            let c = if n == manager {
                'M'
            } else if let Some(ht) = net.inspector().trojan(n) {
                let hits = ht.packets_modified();
                if hits == 0 {
                    'T'
                } else {
                    char::from_digit((64 - hits.leading_zeros()).min(9), 10).unwrap()
                }
            } else {
                '.'
            };
            row.push(c);
            row.push(' ');
        }
        println!("  {row}");
    }

    println!("\ninfected sources (x = this node's requests arrive tampered):");
    let mut infected_count = 0;
    for y in 0..mesh.height() {
        let mut row = String::new();
        for x in 0..mesh.width() {
            let n = mesh.node(Coord::new(x, y));
            let c = if n == manager {
                'M'
            } else if infected_src[n.0 as usize] {
                infected_count += 1;
                'x'
            } else {
                '.'
            };
            row.push(c);
            row.push(' ');
        }
        println!("  {row}");
    }
    println!(
        "\ninfection rate: {:.3} ({} of {} sources)",
        net.stats().infection_rate(),
        infected_count,
        mesh.nodes() - 1
    );
}
