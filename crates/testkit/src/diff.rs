//! The differential oracle: runs a [`Scenario`] through the optimized
//! [`htpb_noc::Network`] and the dense [`ReferenceNet`] in lock-step,
//! comparing statistics fingerprints, trace fingerprints, and delivered
//! packets after every cycle, and localizing the first divergence down to a
//! (cycle, router, input port, VC) tuple by diffing per-VC snapshots.

use htpb_noc::{Direction, Network, NodeId, VcSnapshot};
use htpb_trojan::TrojanFleet;

use crate::reference::ReferenceNet;
use crate::scenario::{Scenario, SplitMix64};

/// Knobs of one differential run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Arm the deliberately seeded round-robin arbitration bug in the
    /// *optimized* network (`Network::set_rr_skew`). The reference always
    /// runs the correct arbitration, so any scenario whose traffic exercises
    /// switch contention diverges — the self-test proving the oracle can
    /// catch a real bug.
    pub rr_skew: bool,
    /// Extra lock-step cycles granted after traffic generation stops for
    /// both networks to drain in-flight packets.
    pub drain_cycles: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            rr_skew: false,
            drain_cycles: 2_000,
        }
    }
}

/// The first observable disagreement between the two implementations.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Cycle count of both networks when the mismatch was observed (cycles
    /// are compared first, so the two never disagree on it).
    pub cycle: u64,
    /// Which observable differed, with both values.
    pub what: String,
    /// First differing `(router, input port, VC)` found by the snapshot
    /// sweep, when any internal state differs (counter-only divergences —
    /// e.g. pure statistics bugs — can leave identical buffers behind).
    pub location: Option<(NodeId, usize, usize)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.what)?;
        if let Some((node, port, vc)) = self.location {
            write!(
                f,
                " (first differing state: {node} port {} vc {vc})",
                Direction::ALL[port].index()
            )?;
        }
        Ok(())
    }
}

fn build_fleet(scenario: &Scenario) -> TrojanFleet {
    let nodes: Vec<NodeId> = scenario.trojans.iter().map(|&t| NodeId(t)).collect();
    let mut fleet =
        TrojanFleet::new(&nodes, scenario.tamper_rule()).with_schedule(scenario.trojan_schedule());
    fleet.configure_all(&[], NodeId(scenario.manager), true);
    fleet
}

fn delivered_eq(a: &htpb_noc::DeliveredPacket, b: &htpb_noc::DeliveredPacket) -> bool {
    a.packet == b.packet && a.latency == b.latency && a.hops == b.hops && a.modified == b.modified
}

/// Sweeps every (router, port, VC) of both networks and reports the first
/// snapshot mismatch, ascending (node, port, vc) order.
fn localize(
    optimized: &Network<TrojanFleet>,
    reference: &ReferenceNet,
    scenario: &Scenario,
) -> Option<(NodeId, usize, usize)> {
    let vcs = scenario.network_config().router.vcs;
    for node in scenario.mesh().iter_nodes() {
        for port in 0..5 {
            for vc in 0..vcs {
                let opt: VcSnapshot = optimized.router(node).vc_snapshot(port, vc);
                let dense = reference.vc_snapshot(node, port, vc);
                if opt != dense {
                    return Some((node, port, vc));
                }
            }
        }
    }
    None
}

/// One lock-step comparison of every cross-checked observable. Returns the
/// first mismatch as a [`Divergence`].
fn compare(
    optimized: &mut Network<TrojanFleet>,
    reference: &mut ReferenceNet,
    scenario: &Scenario,
) -> Option<Divergence> {
    let cycle = optimized.cycle();
    let fail = |what: String, optimized: &Network<TrojanFleet>, reference: &ReferenceNet| {
        Some(Divergence {
            cycle,
            what,
            location: localize(optimized, reference, scenario),
        })
    };
    if optimized.cycle() != reference.cycle() {
        return Some(Divergence {
            cycle,
            what: format!(
                "cycle counters drifted: optimized {} vs reference {}",
                optimized.cycle(),
                reference.cycle()
            ),
            location: None,
        });
    }
    let (of, rf) = (
        optimized.stats().fingerprint(),
        reference.stats().fingerprint(),
    );
    if of != rf {
        return fail(
            format!(
                "stats fingerprints differ: optimized {of:#018x} vs reference {rf:#018x} \
                 (delivered {} vs {}, dropped {} vs {})",
                optimized.stats().delivered_packets(),
                reference.stats().delivered_packets(),
                optimized.stats().dropped_packets(),
                reference.stats().dropped_packets(),
            ),
            optimized,
            reference,
        );
    }
    let ot = optimized.trace().map(htpb_noc::TraceBuffer::fingerprint);
    let rt = reference.trace().map(htpb_noc::TraceBuffer::fingerprint);
    if ot != rt {
        return fail(
            format!("trace fingerprints differ: optimized {ot:?} vs reference {rt:?}"),
            optimized,
            reference,
        );
    }
    let od = optimized.drain_ejected();
    let rd = reference.drain_ejected();
    if od.len() != rd.len() || !od.iter().zip(&rd).all(|(a, b)| delivered_eq(a, b)) {
        return fail(
            format!(
                "delivered packets differ: optimized {} vs reference {} this cycle",
                od.len(),
                rd.len()
            ),
            optimized,
            reference,
        );
    }
    None
}

/// Runs `scenario` through both implementations in lock-step.
///
/// Returns `None` when every per-cycle observable agreed for the whole run
/// (traffic phase plus drain), or the first [`Divergence`] otherwise.
#[must_use]
pub fn run_differential(scenario: &Scenario, config: &DiffConfig) -> Option<Divergence> {
    let net_cfg = scenario.network_config();
    let mut optimized = Network::with_inspector(net_cfg.clone(), build_fleet(scenario));
    let mut reference = ReferenceNet::new(&net_cfg, Box::new(build_fleet(scenario)));
    if config.rr_skew {
        optimized.set_rr_skew(true);
    }
    if scenario.has_faults() {
        // Two independent plan instances: decisions are pure functions of
        // (seed, domain, entity, window), so both sides see identical faults.
        optimized.set_fault_hook(Box::new(scenario.fault_plan()));
        reference.set_fault_hook(Box::new(scenario.fault_plan()));
    }
    let mut rng = SplitMix64::new(scenario.seed);
    for _ in 0..scenario.cycles {
        for src in 0..scenario.nodes() {
            let Some(packet) = scenario.traffic_for(&mut rng, src) else {
                continue;
            };
            let a = optimized.inject(packet);
            let b = reference.inject(packet);
            if a != b {
                return Some(Divergence {
                    cycle: optimized.cycle(),
                    what: format!("inject results differ: optimized {a:?} vs reference {b:?}"),
                    location: localize(&optimized, &reference, scenario),
                });
            }
        }
        optimized.step();
        reference.step();
        if let Some(d) = compare(&mut optimized, &mut reference, scenario) {
            return Some(d);
        }
    }
    for _ in 0..config.drain_cycles {
        if optimized.is_idle() && reference.is_idle() {
            break;
        }
        optimized.step();
        reference.step();
        if let Some(d) = compare(&mut optimized, &mut reference, scenario) {
            return Some(d);
        }
    }
    if !optimized.is_idle() || !reference.is_idle() {
        return Some(Divergence {
            cycle: optimized.cycle(),
            what: format!(
                "network failed to drain within {} extra cycles (optimized idle: {}, reference idle: {})",
                config.drain_cycles,
                optimized.is_idle(),
                reference.is_idle()
            ),
            location: localize(&optimized, &reference, scenario),
        });
    }
    None
}

/// Every observable of one optimized-network run that the metrics-identity
/// property compares: cycle count, statistics and trace fingerprints, and
/// a running digest of the delivered-packet stream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RunObservables {
    cycle: u64,
    stats_fp: u64,
    trace_fp: Option<u64>,
    delivered: u64,
    latency_sum: u64,
    hops_sum: u64,
    modified: u64,
}

/// Drives `scenario` through the optimized network alone (same traffic,
/// faults and drain policy as [`run_differential`]'s optimized side),
/// with or without live metrics, and returns its observables plus how many
/// active-router cycles the metric hooks tallied (0 when `metrics` is
/// off).
fn observe_optimized(
    scenario: &Scenario,
    config: &DiffConfig,
    metrics: bool,
) -> (RunObservables, u64) {
    let mut net = Network::with_inspector(scenario.network_config(), build_fleet(scenario));
    if metrics {
        net.enable_metrics();
    }
    if scenario.has_faults() {
        net.set_fault_hook(Box::new(scenario.fault_plan()));
    }
    let mut obs = RunObservables {
        cycle: 0,
        stats_fp: 0,
        trace_fp: None,
        delivered: 0,
        latency_sum: 0,
        hops_sum: 0,
        modified: 0,
    };
    let fold = |net: &mut Network<TrojanFleet>, obs: &mut RunObservables| {
        for d in net.drain_ejected() {
            obs.delivered += 1;
            obs.latency_sum = obs.latency_sum.wrapping_add(d.latency);
            obs.hops_sum = obs.hops_sum.wrapping_add(u64::from(d.hops));
            obs.modified += u64::from(d.modified);
        }
    };
    let mut rng = SplitMix64::new(scenario.seed);
    for _ in 0..scenario.cycles {
        for src in 0..scenario.nodes() {
            if let Some(packet) = scenario.traffic_for(&mut rng, src) {
                let _ = net.inject(packet);
            }
        }
        net.step();
        fold(&mut net, &mut obs);
    }
    for _ in 0..config.drain_cycles {
        if net.is_idle() {
            break;
        }
        net.step();
        fold(&mut net, &mut obs);
    }
    obs.cycle = net.cycle();
    obs.stats_fp = net.stats().fingerprint();
    obs.trace_fp = net.trace().map(htpb_noc::TraceBuffer::fingerprint);
    let activity = net.metrics().map_or(0, |m| m.active_router_cycles);
    (obs, activity)
}

/// The metamorphic **non-perturbation** property of the observability
/// layer: running a scenario with live NoC metrics enabled must leave
/// every simulation observable — cycle count, [`htpb_noc::NetworkStats`]
/// fingerprint, [`htpb_noc::TraceBuffer`] fingerprint, and the full
/// delivered-packet stream — bit-identical to a metrics-off run.
///
/// Returns `None` when the property holds, or a description of the first
/// difference. Also fails when the metrics-on run *recorded nothing*
/// despite delivering packets, so a dead metrics hook cannot make the
/// check vacuously pass.
#[must_use]
pub fn run_metrics_identity(scenario: &Scenario, config: &DiffConfig) -> Option<String> {
    let (off, _) = observe_optimized(scenario, config, false);
    let (on, activity) = observe_optimized(scenario, config, true);
    if off != on {
        return Some(format!(
            "metrics-on run perturbed the simulation: off {off:?} vs on {on:?}"
        ));
    }
    if on.delivered > 0 && activity == 0 {
        return Some(
            "metrics-on run delivered packets but recorded no active-router cycles — \
             the hooks are dead and the identity check is vacuous"
                .to_string(),
        );
    }
    None
}

/// Outcome of a batch of random differential runs.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Scenarios that ran clean.
    pub passed: u64,
    /// `(spec, divergence)` of every failing scenario, in discovery order.
    pub failures: Vec<(String, Divergence)>,
}

impl BatchReport {
    /// Whether every scenario agreed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `count` random scenarios derived from `master_seed` through the
/// differential oracle, collecting all failures.
#[must_use]
pub fn run_batch(master_seed: u64, count: u64) -> BatchReport {
    let mut report = BatchReport::default();
    let config = DiffConfig::default();
    for i in 0..count {
        let scenario = Scenario::random(master_seed.wrapping_add(i));
        match run_differential(&scenario, &config) {
            None => report.passed += 1,
            Some(d) => report.failures.push((scenario.to_spec(), d)),
        }
    }
    report
}
