//! Greedy scenario shrinking: given a failing [`Scenario`] and a predicate
//! that re-checks failure, repeatedly tries simplifying candidates and
//! adopts the first that still fails, until no candidate does.
//!
//! The candidate order is tuned to collapse the big cost drivers first
//! (cycles, mesh area), then strip whole features (faults, Trojans,
//! adaptive routing), so shrunk scenarios end up as small replayable specs
//! a human can step through — the acceptance bar is ≤ 8 routers and
//! ≤ 50 traffic cycles for the seeded arbitration bug.

use crate::scenario::Scenario;

/// Clamps scenario fields that name nodes into the (possibly smaller) mesh.
fn fixup_nodes(s: &mut Scenario) {
    let nodes = s.nodes();
    if u32::from(s.manager) >= nodes {
        s.manager = (nodes - 1) as u16;
    }
    s.trojans.retain(|&t| u32::from(t) < nodes);
    s.trojans.dedup();
}

/// All one-step simplifications of `s`, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |c: Scenario| {
        if c != *s && !out.contains(&c) {
            out.push(c);
        }
    };
    // Halve the run length (dominant cost), with a floor that still lets
    // traffic cross a tiny mesh.
    if s.cycles > 10 {
        let mut c = s.clone();
        c.cycles = (s.cycles / 2).max(10);
        push(c);
    }
    // Shrink each mesh dimension.
    if s.width > 2 {
        let mut c = s.clone();
        c.width -= 1;
        fixup_nodes(&mut c);
        push(c);
    }
    if s.height > 1 {
        let mut c = s.clone();
        c.height -= 1;
        fixup_nodes(&mut c);
        push(c);
    }
    // Remove fault families wholesale, then the whole plan.
    if s.has_faults() {
        let mut c = s.clone();
        c.link_ppm = 0;
        c.stall_ppm = 0;
        c.flip_ppm = 0;
        c.drop_ppm = 0;
        push(c);
    }
    for field in 0..4usize {
        let mut c = s.clone();
        let ppm = match field {
            0 => &mut c.link_ppm,
            1 => &mut c.stall_ppm,
            2 => &mut c.flip_ppm,
            _ => &mut c.drop_ppm,
        };
        if *ppm > 0 {
            *ppm = 0;
            push(c);
        }
    }
    // Strip the Trojans, one then all.
    if !s.trojans.is_empty() {
        let mut c = s.clone();
        c.trojans.clear();
        push(c);
        let mut c = s.clone();
        c.trojans.pop();
        push(c);
    }
    // Pin the duty cycle to a trivial endpoint. Mid values offer both
    // endpoints; endpoints themselves are terminal, so the shrinker cannot
    // oscillate between them.
    if !s.trojans.is_empty() && !matches!(s.duty_tenths, 0 | 10) {
        for duty in [10, 0] {
            let mut c = s.clone();
            c.duty_tenths = duty;
            push(c);
        }
    }
    // Make the traffic mix degenerate (all power requests, or none) —
    // endpoints terminal, as above.
    if !matches!(s.power_req_pct, 0 | 100) {
        for pct in [100, 0] {
            let mut c = s.clone();
            c.power_req_pct = pct;
            push(c);
        }
    }
    // Thin the traffic.
    if s.rate_permille > 25 {
        let mut c = s.clone();
        c.rate_permille /= 2;
        push(c);
    }
    // Deterministic routing last: adaptive routing is itself a suspect.
    if s.routing != htpb_noc::RoutingKind::Xy {
        let mut c = s.clone();
        c.routing = htpb_noc::RoutingKind::Xy;
        push(c);
    }
    out
}

/// Greedily shrinks `failing` while `still_fails` keeps returning `true`.
///
/// The returned scenario is a local minimum: no single candidate step
/// reproduces the failure. `still_fails(&returned)` is guaranteed to have
/// returned `true` (the input itself is returned unshrunk if no candidate
/// ever fails).
pub fn shrink<F>(failing: &Scenario, mut still_fails: F) -> Scenario
where
    F: FnMut(&Scenario) -> bool,
{
    let mut best = failing.clone();
    loop {
        let mut progressed = false;
        for candidate in candidates(&best) {
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_reaches_fixpoint_on_always_failing() {
        // With an always-true predicate the shrinker must terminate at the
        // global minimum of the candidate lattice.
        let s = Scenario::random(3);
        let min = shrink(&s, |_| true);
        assert_eq!(min.width, 2);
        assert_eq!(min.height, 1);
        assert_eq!(min.cycles, 10);
        assert!(min.trojans.is_empty());
        assert!(!min.has_faults());
        assert!(matches!(min.power_req_pct, 0 | 100));
        assert!(candidates(&min).iter().all(|c| c != &min));
    }

    #[test]
    fn shrink_returns_input_when_nothing_smaller_fails() {
        let s = Scenario::random(5);
        let out = shrink(&s, |c| c == &s);
        assert_eq!(out, s);
    }

    #[test]
    fn shrunk_scenarios_stay_well_formed() {
        for seed in 0..50 {
            let s = Scenario::random(seed);
            let min = shrink(&s, |_| true);
            let spec = min.to_spec();
            assert_eq!(Scenario::from_spec(&spec).unwrap(), min, "{spec}");
        }
    }

    #[test]
    fn candidates_never_upsize() {
        let s = Scenario::random(11);
        for c in candidates(&s) {
            assert!(c.nodes() <= s.nodes());
            assert!(c.cycles <= s.cycles);
        }
    }
}
