//! Serializable conformance scenarios: everything a differential run needs,
//! in one small struct with a compact single-line spec string.
//!
//! The spec format is the unit of exchange for the whole testkit: failing
//! scenarios are shrunk and appended to the checked-in regression corpus as
//! spec lines, CI prints spec lines for any divergence it finds, and
//! `Scenario::from_spec` replays them exactly.
//!
//! ```
//! use htpb_testkit::Scenario;
//!
//! let s = Scenario::random(42);
//! let round = Scenario::from_spec(&s.to_spec()).unwrap();
//! assert_eq!(s, round);
//! ```

use htpb_faults::FaultPlan;
use htpb_noc::{Mesh2d, NetworkConfig, NodeId, Packet, PacketKind, RoutingKind};
use htpb_trojan::{ActivationSchedule, TamperRule};

/// A self-contained description of one differential-conformance run:
/// topology, routing, traffic, Trojan placement and fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Mesh width (columns).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Routing algorithm both implementations use.
    pub routing: RoutingKind,
    /// Cycles of traffic generation (both networks then drain).
    pub cycles: u64,
    /// Per-node injection probability in permille (0..=1000).
    pub rate_permille: u32,
    /// Share of injected packets that are power requests, in percent; the
    /// rest are data packets to random destinations.
    pub power_req_pct: u32,
    /// Seed of the traffic generator.
    pub seed: u64,
    /// Routers hosting a payload-zeroing Trojan.
    pub trojans: Vec<u16>,
    /// Trojan duty in tenths (0 = never active, 10 = always on; anything in
    /// between duty-cycles over a 20-cycle period).
    pub duty_tenths: u32,
    /// Node id of the global manager (destination of power requests and the
    /// address the Trojans match on).
    pub manager: u16,
    /// Seed of the fault plan (only meaningful when any ppm below is > 0).
    pub fault_seed: u64,
    /// Link-down probability, ppm per (link, window).
    pub link_ppm: u32,
    /// Link-fault window granularity in cycles.
    pub link_gran: u32,
    /// Router-stall probability, ppm per (router, window).
    pub stall_ppm: u32,
    /// Stall window granularity in cycles.
    pub stall_gran: u32,
    /// Payload bit-flip probability, ppm per (packet, router).
    pub flip_ppm: u32,
    /// Whole-packet drop probability, ppm per (packet, router).
    pub drop_ppm: u32,
}

fn routing_tag(kind: RoutingKind) -> &'static str {
    match kind {
        RoutingKind::Xy => "xy",
        RoutingKind::OddEven => "oe",
        RoutingKind::WestFirst => "wf",
    }
}

fn routing_from_tag(tag: &str) -> Option<RoutingKind> {
    match tag {
        "xy" => Some(RoutingKind::Xy),
        "oe" => Some(RoutingKind::OddEven),
        "wf" => Some(RoutingKind::WestFirst),
        _ => None,
    }
}

/// SplitMix64: tiny, high-quality, and stable across platforms — the
/// generator behind all scenario randomness so spec strings replay exactly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

impl Scenario {
    /// Number of nodes in the scenario's mesh.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        u32::from(self.width) * u32::from(self.height)
    }

    /// Whether the fault plan would inject anything.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        self.link_ppm > 0 || self.stall_ppm > 0 || self.flip_ppm > 0 || self.drop_ppm > 0
    }

    /// The mesh this scenario runs on.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are invalid; scenario constructors and the
    /// shrinker only ever produce valid dimensions.
    #[must_use]
    pub fn mesh(&self) -> Mesh2d {
        Mesh2d::new(self.width, self.height).expect("scenario mesh dimensions are valid")
    }

    /// The network configuration both the optimized and reference networks
    /// are built from: Table-I router defaults, scenario routing, and a
    /// trace buffer large enough that no conformance-sized run ever evicts
    /// (eviction would make trace fingerprints order-sensitive in a way the
    /// diff does not intend to test).
    #[must_use]
    pub fn network_config(&self) -> NetworkConfig {
        NetworkConfig::new(self.mesh())
            .with_routing(self.routing)
            .with_tracing(1 << 16)
    }

    /// The Trojan activation schedule encoded by `duty_tenths`.
    #[must_use]
    pub fn trojan_schedule(&self) -> ActivationSchedule {
        match self.duty_tenths {
            0 => ActivationSchedule::duty(0.0, 20),
            10.. => ActivationSchedule::AlwaysOn,
            d => ActivationSchedule::duty(f64::from(d) / 10.0, 20),
        }
    }

    /// The payload rewrite the scenario's Trojans apply — zeroing, the
    /// paper's strongest starvation attack.
    #[must_use]
    pub fn tamper_rule(&self) -> TamperRule {
        TamperRule::Zero
    }

    /// Builds the scenario's fault plan (empty when all ppm are zero, which
    /// [`FaultPlan::is_empty`] reports, keeping the no-fault path
    /// hook-free).
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.fault_seed);
        if self.link_ppm > 0 {
            plan = plan.with_link_down(self.link_ppm, u64::from(self.link_gran.max(1)));
        }
        if self.stall_ppm > 0 {
            plan = plan.with_stalls(self.stall_ppm, u64::from(self.stall_gran.max(1)));
        }
        if self.flip_ppm > 0 {
            plan = plan.with_flips(self.flip_ppm);
        }
        if self.drop_ppm > 0 {
            plan = plan.with_drops(self.drop_ppm);
        }
        plan
    }

    /// The packet (if any) node `src` injects this cycle, drawn from `rng`.
    ///
    /// Exactly one `rng` consumption pattern per call, so the traffic stream
    /// is a pure function of (seed, call order) — the diff runner calls this
    /// once per node per cycle for both networks from a single generator.
    #[must_use]
    pub fn traffic_for(&self, rng: &mut SplitMix64, src: u32) -> Option<Packet> {
        if rng.below(1000) >= u64::from(self.rate_permille) {
            return None;
        }
        let src = NodeId(src as u16);
        let kind_roll = rng.below(100);
        let payload = (rng.next_u64() & 0xFFFF) as u32;
        let dst_roll = rng.below(u64::from(self.nodes()));
        if kind_roll < u64::from(self.power_req_pct) {
            Some(Packet::power_request(src, NodeId(self.manager), payload))
        } else {
            let dst = NodeId(dst_roll as u16);
            Some(Packet::new(src, dst, PacketKind::Data, payload))
        }
    }

    /// Generates a random scenario from a seed. Meshes are tiny (at most
    /// 4×4) so a single run costs microseconds and thousands fit in a CI
    /// smoke budget; roughly half the scenarios carry faults.
    #[must_use]
    pub fn random(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let width = rng.range(2, 4) as u16;
        let height = rng.range(1, 4) as u16;
        let nodes = u64::from(width) * u64::from(height);
        let manager = rng.below(nodes) as u16;
        let n_trojans = rng.below(3);
        let mut trojans = Vec::new();
        for _ in 0..n_trojans {
            let t = rng.below(nodes) as u16;
            if !trojans.contains(&t) {
                trojans.push(t);
            }
        }
        trojans.sort_unstable();
        let with_faults = rng.below(2) == 1;
        let (link_ppm, stall_ppm, flip_ppm, drop_ppm) = if with_faults {
            (
                rng.below(30_000) as u32,
                rng.below(30_000) as u32,
                rng.below(30_000) as u32,
                rng.below(30_000) as u32,
            )
        } else {
            (0, 0, 0, 0)
        };
        Scenario {
            width,
            height,
            routing: RoutingKind::ALL[rng.below(3) as usize],
            cycles: rng.range(40, 260),
            rate_permille: rng.range(50, 450) as u32,
            power_req_pct: rng.range(0, 100) as u32,
            seed: rng.next_u64(),
            trojans,
            duty_tenths: rng.range(0, 10) as u32,
            manager,
            fault_seed: rng.next_u64(),
            link_ppm,
            link_gran: [16, 32, 64][rng.below(3) as usize],
            stall_ppm,
            stall_gran: [16, 32, 64][rng.below(3) as usize],
            flip_ppm,
            drop_ppm,
        }
    }

    /// Encodes the scenario as a compact one-line spec string.
    #[must_use]
    pub fn to_spec(&self) -> String {
        let trojans = self
            .trojans
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(".");
        format!(
            "mesh={}x{};routing={};cycles={};rate={};pr={};seed={:#x};trojans={};duty={};manager={};fseed={:#x};link={}@{};stall={}@{};flip={};drop={}",
            self.width,
            self.height,
            routing_tag(self.routing),
            self.cycles,
            self.rate_permille,
            self.power_req_pct,
            self.seed,
            trojans,
            self.duty_tenths,
            self.manager,
            self.fault_seed,
            self.link_ppm,
            self.link_gran,
            self.stall_ppm,
            self.stall_gran,
            self.flip_ppm,
            self.drop_ppm,
        )
    }

    /// Decodes a spec string produced by [`Scenario::to_spec`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        fn parse_u64(v: &str) -> Result<u64, String> {
            let r = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            r.map_err(|e| format!("bad number {v:?}: {e}"))
        }
        let mut out = Scenario {
            width: 0,
            height: 0,
            routing: RoutingKind::Xy,
            cycles: 0,
            rate_permille: 0,
            power_req_pct: 0,
            seed: 0,
            trojans: Vec::new(),
            duty_tenths: 10,
            manager: 0,
            fault_seed: 0,
            link_ppm: 0,
            link_gran: 64,
            stall_ppm: 0,
            stall_gran: 64,
            flip_ppm: 0,
            drop_ppm: 0,
        };
        let mut saw_mesh = false;
        for field in spec.trim().split(';') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "mesh" => {
                    let (w, h) = value
                        .split_once('x')
                        .ok_or_else(|| format!("bad mesh {value:?}"))?;
                    out.width = parse_u64(w)? as u16;
                    out.height = parse_u64(h)? as u16;
                    saw_mesh = true;
                }
                "routing" => {
                    out.routing = routing_from_tag(value)
                        .ok_or_else(|| format!("unknown routing {value:?}"))?;
                }
                "cycles" => out.cycles = parse_u64(value)?,
                "rate" => out.rate_permille = parse_u64(value)? as u32,
                "pr" => out.power_req_pct = parse_u64(value)? as u32,
                "seed" => out.seed = parse_u64(value)?,
                "trojans" => {
                    out.trojans = value
                        .split('.')
                        .filter(|s| !s.is_empty())
                        .map(|s| parse_u64(s).map(|v| v as u16))
                        .collect::<Result<_, _>>()?;
                }
                "duty" => out.duty_tenths = parse_u64(value)? as u32,
                "manager" => out.manager = parse_u64(value)? as u16,
                "fseed" => out.fault_seed = parse_u64(value)?,
                "link" | "stall" => {
                    let (ppm, gran) = value
                        .split_once('@')
                        .ok_or_else(|| format!("bad {key} {value:?} (want ppm@gran)"))?;
                    let (ppm, gran) = (parse_u64(ppm)? as u32, parse_u64(gran)? as u32);
                    if key == "link" {
                        out.link_ppm = ppm;
                        out.link_gran = gran;
                    } else {
                        out.stall_ppm = ppm;
                        out.stall_gran = gran;
                    }
                }
                "flip" => out.flip_ppm = parse_u64(value)? as u32,
                "drop" => out.drop_ppm = parse_u64(value)? as u32,
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        if !saw_mesh {
            return Err("spec missing mesh=WxH".to_string());
        }
        if out.width == 0 || out.height == 0 {
            return Err(format!("degenerate mesh {}x{}", out.width, out.height));
        }
        let nodes = out.nodes();
        if u32::from(out.manager) >= nodes {
            return Err(format!("manager {} outside mesh", out.manager));
        }
        if let Some(t) = out.trojans.iter().find(|&&t| u32::from(t) >= nodes) {
            return Err(format!("trojan {t} outside mesh"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_random_scenarios() {
        for seed in 0..200 {
            let s = Scenario::random(seed);
            let spec = s.to_spec();
            let back = Scenario::from_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(s, back, "{spec}");
        }
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(Scenario::from_spec("").is_err());
        assert!(Scenario::from_spec("mesh=0x3").is_err());
        assert!(Scenario::from_spec("mesh=3x3;routing=zz").is_err());
        assert!(Scenario::from_spec("mesh=2x2;manager=9").is_err());
        assert!(Scenario::from_spec("mesh=2x2;trojans=9").is_err());
        assert!(Scenario::from_spec("nonsense").is_err());
    }

    #[test]
    fn random_scenarios_are_well_formed() {
        for seed in 0..500 {
            let s = Scenario::random(seed);
            let nodes = s.nodes();
            assert!((2..=16).contains(&nodes), "seed {seed}");
            assert!(u32::from(s.manager) < nodes, "seed {seed}");
            assert!(
                s.trojans.iter().all(|&t| u32::from(t) < nodes),
                "seed {seed}"
            );
            assert!(s.cycles >= 40 && s.cycles <= 260, "seed {seed}");
        }
    }

    #[test]
    fn traffic_is_deterministic_per_seed() {
        let s = Scenario::random(7);
        let mut a = SplitMix64::new(s.seed);
        let mut b = SplitMix64::new(s.seed);
        for src in 0..s.nodes() {
            assert_eq!(s.traffic_for(&mut a, src), s.traffic_for(&mut b, src));
        }
    }

    #[test]
    fn duty_schedule_edges() {
        let mut s = Scenario::random(1);
        s.duty_tenths = 0;
        assert!(!s.trojan_schedule().active_at(0));
        s.duty_tenths = 10;
        assert!(s.trojan_schedule().active_at(0));
    }
}
