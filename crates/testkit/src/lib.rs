//! Conformance tooling for the optimized simulator.
//!
//! The active-set rewrite of [`htpb_noc::Network::step`] made the hot loop
//! scale with traffic instead of mesh size — and made its correctness
//! argument subtle. This crate keeps that argument *checkable* forever, with
//! three layers:
//!
//! * [`ReferenceNet`] — a deliberately dense, obvious re-implementation of
//!   the wormhole pipeline (all routers × ports × VCs, every stage, every
//!   cycle), kept permanently as an oracle. Never optimized.
//! * [`run_differential`] — lock-step execution of a [`Scenario`] on both
//!   implementations, comparing statistics fingerprints, trace fingerprints
//!   and delivered packets after every cycle, with first-divergence
//!   localization down to a (cycle, router, port, VC) tuple.
//! * [`Scenario`] / [`shrink`] — serializable random scenarios (mesh,
//!   traffic, routing, Trojans, faults) and a greedy shrinker that reduces a
//!   failing scenario to a small replayable spec string for the checked-in
//!   regression corpus (`crates/testkit/corpus/conformance.txt`, replayed by
//!   `tests/conformance.rs`).
//!
//! A deliberately seeded bug (`Network::set_rr_skew`, which perturbs the
//! round-robin arbitration pointer) provides the standing self-test that the
//! oracle actually detects and shrinks real divergences.
//!
//! ```
//! use htpb_testkit::{run_differential, DiffConfig, Scenario};
//!
//! let scenario = Scenario::random(1);
//! assert!(run_differential(&scenario, &DiffConfig::default()).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod reference;
mod scenario;
mod shrink;

pub use diff::{
    run_batch, run_differential, run_metrics_identity, BatchReport, DiffConfig, Divergence,
};
pub use reference::{RefStats, ReferenceNet};
pub use scenario::{Scenario, SplitMix64};
pub use shrink::shrink;
