//! The dense reference stepper: a deliberately simple, all-routers ×
//! ports × VCs re-implementation of the wormhole pipeline, kept permanently
//! as the oracle the optimized active-set [`htpb_noc::Network`] is diffed
//! against.
//!
//! Everything here favours obviousness over speed: every stage scans every
//! router in ascending index order, round-robin arbitration walks all
//! `5 × vcs` slots with a modulo, and bookkeeping is recomputed rather than
//! maintained incrementally. The semantics mirror `Network::step` stage by
//! stage — link delivery → switch traversal → injection → VC allocation →
//! routing computation & inspection — including the fault-hook call points
//! threaded through the pipeline: `any_faults_at` once per non-quiescent
//! cycle, `router_stalled` per flit-holding router at the head of switch
//! traversal, `link_down` after the link-busy check, and `packet_fault`
//! immediately after the inspector.
//!
//! The reference keeps its own statistics mirror ([`RefStats`]) whose
//! [`RefStats::fingerprint`] folds the same fields in the same order as
//! `NetworkStats::fingerprint`, and records into a real
//! [`htpb_noc::TraceBuffer`], so per-cycle fingerprint equality is the
//! equivalence criterion.

use std::collections::{HashMap, VecDeque};

use htpb_noc::{
    DeliveredPacket, Digest, FaultAction, FaultHook, Flit, Mesh2d, NetworkConfig, NocError, NodeId,
    Packet, PacketInspector, PacketKind, RoutingAlgorithm, TraceBuffer, TraceEvent, VcSnapshot,
};

use htpb_noc::Direction;

/// Statistics mirror of `NetworkStats`, updated by the reference pipeline.
///
/// [`RefStats::fingerprint`] reproduces `NetworkStats::fingerprint` exactly
/// (same fields, same order, same FNV digest), so the two implementations
/// fingerprint equal iff every observable counter — including the full
/// latency histogram — is equal.
#[derive(Debug, Clone, Default)]
pub struct RefStats {
    injected_packets: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    total_hops: u64,
    modified_packets: u64,
    dropped_packets: u64,
    delivered_power_requests: u64,
    modified_power_requests: u64,
    lat_buckets: [u64; 32],
    lat_count: u64,
    lat_sum: u64,
    lat_max: u64,
}

impl RefStats {
    fn record_latency(&mut self, latency: u64) {
        let idx = (64 - latency.max(1).leading_zeros() as usize - 1).min(31);
        self.lat_buckets[idx] += 1;
        self.lat_count += 1;
        self.lat_sum += latency;
        self.lat_max = self.lat_max.max(latency);
    }

    /// Packets fully delivered so far.
    #[must_use]
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets injected so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Packets sunk by an inspector or fault drop order.
    #[must_use]
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Field-for-field mirror of `NetworkStats::fingerprint`.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.u64(self.injected_packets)
            .u64(self.delivered_packets)
            .u64(self.delivered_flits)
            .u64(self.total_hops)
            .u64(self.modified_packets)
            .u64(self.dropped_packets)
            .u64(self.delivered_power_requests)
            .u64(self.modified_power_requests)
            .u64(self.lat_count)
            .u64(self.lat_sum)
            .u64(self.lat_max);
        for &bucket in &self.lat_buckets {
            d.u64(bucket);
        }
        d.finish()
    }
}

/// One input virtual channel of the reference router.
#[derive(Debug, Clone)]
struct RefVc {
    buffer: VecDeque<(Flit, u64)>,
    capacity: usize,
    route: Option<Direction>,
    out_vc: Option<usize>,
    inspected: bool,
    dropping: bool,
}

impl RefVc {
    fn new(capacity: usize) -> Self {
        RefVc {
            buffer: VecDeque::new(),
            capacity,
            route: None,
            out_vc: None,
            inspected: false,
            dropping: false,
        }
    }

    fn has_space(&self) -> bool {
        self.buffer.len() < self.capacity
    }

    fn push(&mut self, flit: Flit, now: u64) {
        assert!(self.has_space(), "reference: credit protocol violated");
        self.buffer.push_back((flit, now));
    }

    fn pop(&mut self) -> Option<Flit> {
        let (flit, _) = self.buffer.pop_front()?;
        if flit.kind.is_tail() {
            self.route = None;
            self.out_vc = None;
            self.inspected = false;
            self.dropping = false;
        }
        Some(flit)
    }
}

/// Credit/allocation state for one downstream port.
#[derive(Debug, Clone)]
struct RefOutput {
    credits: Vec<usize>,
    allocated: Vec<bool>,
}

/// One dense reference router: raw state, no incremental counters.
#[derive(Debug, Clone)]
struct RefRouter {
    inputs: Vec<Vec<RefVc>>,
    outputs: Vec<RefOutput>,
    sa_rr: Vec<usize>,
}

impl RefRouter {
    fn new(vcs: usize, depth: usize) -> Self {
        RefRouter {
            inputs: (0..5)
                .map(|_| (0..vcs).map(|_| RefVc::new(depth)).collect())
                .collect(),
            outputs: (0..5)
                .map(|_| RefOutput {
                    credits: vec![depth; vcs],
                    allocated: vec![false; vcs],
                })
                .collect(),
            sa_rr: vec![0; 5],
        }
    }

    fn buffered(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.iter())
            .map(|vc| vc.buffer.len())
            .sum()
    }

    fn output_credits(&self, dir: Direction) -> usize {
        self.outputs[dir.index()].credits.iter().sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct RefMeta {
    injected_at: u64,
    hops: u32,
    modified: bool,
}

/// The dense reference network: same observable contract as
/// [`htpb_noc::Network`], evolved by exhaustive scans.
pub struct ReferenceNet {
    mesh: Mesh2d,
    vcs: usize,
    routing: Box<dyn RoutingAlgorithm>,
    routers: Vec<RefRouter>,
    /// `links[node * 4 + dir]`, flit plus its allocated downstream VC.
    links: Vec<Option<(Flit, usize)>>,
    queues: Vec<VecDeque<Flit>>,
    injection_vc: Vec<Option<usize>>,
    injection_capacity: usize,
    neighbor_tbl: Vec<Option<NodeId>>,
    in_flight: HashMap<u64, RefMeta>,
    pending_heads: HashMap<u64, Packet>,
    ejected: Vec<DeliveredPacket>,
    inspector: Box<dyn PacketInspector>,
    faults: Option<Box<dyn FaultHook>>,
    stats: RefStats,
    trace: Option<TraceBuffer>,
    cycle: u64,
    next_packet_id: u64,
}

impl ReferenceNet {
    /// Builds a reference network from the same configuration the optimized
    /// `Network` was built from, with the given inspector (the Trojan
    /// attachment point).
    #[must_use]
    pub fn new(config: &NetworkConfig, inspector: Box<dyn PacketInspector>) -> Self {
        let nodes = config.mesh.nodes() as usize;
        ReferenceNet {
            mesh: config.mesh,
            vcs: config.router.vcs,
            routing: config.routing.build(),
            routers: (0..nodes)
                .map(|_| RefRouter::new(config.router.vcs, config.router.buffer_depth))
                .collect(),
            links: vec![None; nodes * 4],
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            injection_vc: vec![None; nodes],
            injection_capacity: config.injection_queue_capacity,
            neighbor_tbl: config.mesh.neighbor_table(),
            in_flight: HashMap::new(),
            pending_heads: HashMap::new(),
            ejected: Vec::new(),
            inspector,
            faults: None,
            stats: RefStats::default(),
            trace: config.trace_capacity.map(TraceBuffer::new),
            cycle: 0,
            next_packet_id: 0,
        }
    }

    /// Installs a fault hook, consulted at the same pipeline points as the
    /// optimized network's.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.faults = Some(hook);
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The statistics mirror.
    #[must_use]
    pub fn stats(&self) -> &RefStats {
        &self.stats
    }

    /// The trace buffer, when tracing was configured.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Takes all packets delivered since the previous call.
    pub fn drain_ejected(&mut self) -> Vec<DeliveredPacket> {
        std::mem::take(&mut self.ejected)
    }

    /// Whether no flit is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.queues.iter().all(VecDeque::is_empty)
    }

    fn is_quiescent(&self) -> bool {
        self.routers.iter().all(|r| r.buffered() == 0)
            && self.links.iter().all(Option::is_none)
            && self.queues.iter().all(VecDeque::is_empty)
    }

    /// Snapshot of one input VC, field-compatible with
    /// `Router::vc_snapshot` on the optimized network — the divergence
    /// localizer diffs the two.
    #[must_use]
    pub fn vc_snapshot(&self, node: NodeId, in_port: usize, vc: usize) -> VcSnapshot {
        let ch = &self.routers[node.0 as usize].inputs[in_port][vc];
        VcSnapshot {
            occupancy: ch.buffer.len(),
            front_packet: ch.buffer.front().map(|(f, _)| f.packet_id),
            front_arrived_at: ch.buffer.front().map(|(_, at)| *at),
            route: ch.route,
            out_vc: ch.out_vc,
            inspected: ch.inspected,
            dropping: ch.dropping,
        }
    }

    /// Mirror of `Network::inject`: same validation, same packetization,
    /// same id assignment, same trace/stats effects.
    pub fn inject(&mut self, packet: Packet) -> Result<u64, NocError> {
        for node in [packet.src(), packet.dst()] {
            if !self.mesh.contains(node) {
                return Err(NocError::NodeOutOfRange {
                    node,
                    nodes: self.mesh.nodes(),
                });
            }
        }
        let queue = &mut self.queues[packet.src().0 as usize];
        if queue.len() + packet.flit_count() > self.injection_capacity {
            return Err(NocError::InjectionQueueFull { node: packet.src() });
        }
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        for flit in Flit::packetize(packet, id, self.cycle) {
            queue.push_back(flit);
        }
        self.in_flight.insert(
            id,
            RefMeta {
                injected_at: self.cycle,
                hops: 0,
                modified: false,
            },
        );
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::Injected {
                packet: id,
                kind: packet.kind(),
                src: packet.src(),
                dst: packet.dst(),
                cycle: self.cycle,
            });
        }
        self.stats.injected_packets += 1;
        Ok(id)
    }

    /// Advances the reference by one cycle, running the stages in the same
    /// order as `Network::step`.
    pub fn step(&mut self) {
        if self.is_quiescent() {
            self.cycle += 1;
            return;
        }
        let faults_engaged = match self.faults.as_mut() {
            Some(hook) => hook.any_faults_at(self.cycle),
            None => false,
        };
        self.stage_link_delivery();
        self.stage_switch_traversal(faults_engaged);
        self.stage_injection();
        self.stage_vc_allocation();
        self.stage_routing_and_inspection(faults_engaged);
        self.cycle += 1;
    }

    /// Steps until the network drains completely or `max_cycles` elapse.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return true;
            }
            self.step();
        }
        self.is_idle()
    }

    fn stage_link_delivery(&mut self) {
        let now = self.cycle;
        for li in 0..self.links.len() {
            let Some((flit, ovc)) = self.links[li].take() else {
                continue;
            };
            let dst = self.neighbor_tbl[li].expect("link endpoints are mesh neighbours");
            let in_port = Direction::OPPOSITE_INDEX[li % 4];
            self.routers[dst.0 as usize].inputs[in_port][ovc].push(flit, now);
        }
    }

    fn stage_switch_traversal(&mut self, faults_engaged: bool) {
        // Deferred credit returns: (upstream node, upstream out dir, vc).
        let mut credit_returns: Vec<(NodeId, Direction, usize)> = Vec::new();
        for ri in 0..self.routers.len() {
            if self.routers[ri].buffered() == 0 {
                continue;
            }
            let node = NodeId(ri as u16);
            // A stalled router forwards (and sinks) nothing this cycle.
            if faults_engaged {
                if let Some(hook) = self.faults.as_mut() {
                    if hook.router_stalled(node, self.cycle) {
                        continue;
                    }
                }
            }
            // Drop sink: one flit per dropping VC per cycle, credits still
            // returned upstream.
            for in_port in 0..5 {
                for vc in 0..self.vcs {
                    if !self.routers[ri].inputs[in_port][vc].dropping {
                        continue;
                    }
                    let Some(flit) = self.routers[ri].inputs[in_port][vc].pop() else {
                        continue;
                    };
                    if let Some(up_out) = Direction::ALL[in_port].opposite() {
                        if let Some(up) = self.neighbor_tbl[ri * 4 + in_port] {
                            credit_returns.push((up, up_out, vc));
                        }
                    }
                    if flit.kind.is_tail() {
                        self.in_flight.remove(&flit.packet_id);
                        self.stats.dropped_packets += 1;
                    }
                }
            }
            for out_dir in Direction::ALL {
                let od = out_dir.index();
                if out_dir != Direction::Local && self.links[ri * 4 + od].is_some() {
                    continue;
                }
                // A downed link is indistinguishable from a busy one.
                if faults_engaged && out_dir != Direction::Local {
                    if let Some(hook) = self.faults.as_mut() {
                        if hook.link_down(node, out_dir, self.cycle) {
                            continue;
                        }
                    }
                }
                let slots = 5 * self.vcs;
                let start = self.routers[ri].sa_rr[od];
                let mut granted = None;
                // Plain dense round-robin: every slot, starting at the
                // pointer, wrapping with a modulo.
                for off in 0..slots {
                    let slot = (start + off) % slots;
                    let (in_port, vc) = (slot / self.vcs, slot % self.vcs);
                    let ivc = &self.routers[ri].inputs[in_port][vc];
                    let Some((_, arrived)) = ivc.buffer.front() else {
                        continue;
                    };
                    if ivc.route != Some(out_dir) {
                        continue;
                    }
                    // A flit spends at least one full cycle buffered.
                    if *arrived == self.cycle {
                        continue;
                    }
                    if out_dir != Direction::Local {
                        let Some(ovc) = ivc.out_vc else { continue };
                        if self.routers[ri].outputs[od].credits[ovc] == 0 {
                            continue;
                        }
                    }
                    granted = Some((in_port, vc));
                    break;
                }
                let Some((in_port, vc)) = granted else {
                    continue;
                };
                self.routers[ri].sa_rr[od] = (in_port * self.vcs + vc + 1) % slots;
                let out_vc = self.routers[ri].inputs[in_port][vc].out_vc;
                let flit = self.routers[ri].inputs[in_port][vc]
                    .pop()
                    .expect("granted VC nonempty");
                if let Some(up_out) = Direction::ALL[in_port].opposite() {
                    if let Some(up) = self.neighbor_tbl[ri * 4 + in_port] {
                        credit_returns.push((up, up_out, vc));
                    }
                }
                if out_dir == Direction::Local {
                    self.eject(flit);
                } else {
                    let ovc = out_vc.expect("non-local ST requires an allocated VC");
                    self.routers[ri].outputs[od].credits[ovc] -= 1;
                    if flit.kind.is_tail() {
                        self.routers[ri].outputs[od].allocated[ovc] = false;
                    }
                    if flit.kind.is_head() {
                        if let Some(meta) = self.in_flight.get_mut(&flit.packet_id) {
                            meta.hops += 1;
                        }
                    }
                    assert!(self.links[ri * 4 + od].is_none());
                    self.links[ri * 4 + od] = Some((flit, ovc));
                }
            }
        }
        for (up, up_out, vc) in credit_returns {
            self.routers[up.0 as usize].outputs[up_out.index()].credits[vc] += 1;
        }
    }

    fn stage_injection(&mut self) {
        let now = self.cycle;
        for ri in 0..self.queues.len() {
            let Some(front) = self.queues[ri].front() else {
                continue;
            };
            let local = Direction::Local.index();
            let target_vc = if front.kind.is_head() {
                let free = self.routers[ri].inputs[local]
                    .iter()
                    .position(|vc| vc.buffer.is_empty() && vc.route.is_none());
                match free {
                    Some(v) => v,
                    None => continue,
                }
            } else {
                match self.injection_vc[ri] {
                    Some(v) => v,
                    None => continue,
                }
            };
            if !self.routers[ri].inputs[local][target_vc].has_space() {
                continue;
            }
            let flit = self.queues[ri].pop_front().expect("front checked");
            self.injection_vc[ri] = if flit.kind.is_tail() {
                None
            } else {
                Some(target_vc)
            };
            self.routers[ri].inputs[local][target_vc].push(flit, now);
        }
    }

    fn stage_vc_allocation(&mut self) {
        for ri in 0..self.routers.len() {
            if self.routers[ri].buffered() == 0 {
                continue;
            }
            for in_port in 0..5 {
                for vc in 0..self.vcs {
                    let ivc = &self.routers[ri].inputs[in_port][vc];
                    let Some(route) = ivc.route else { continue };
                    if route == Direction::Local || ivc.out_vc.is_some() {
                        continue;
                    }
                    let od = route.index();
                    let free = self.routers[ri].outputs[od]
                        .allocated
                        .iter()
                        .position(|a| !a);
                    if let Some(free) = free {
                        self.routers[ri].outputs[od].allocated[free] = true;
                        self.routers[ri].inputs[in_port][vc].out_vc = Some(free);
                    }
                }
            }
        }
    }

    fn stage_routing_and_inspection(&mut self, faults_engaged: bool) {
        for ri in 0..self.routers.len() {
            if self.routers[ri].buffered() == 0 {
                continue;
            }
            let node = NodeId(ri as u16);
            for in_port in 0..5 {
                for vc in 0..self.vcs {
                    let ivc = &mut self.routers[ri].inputs[in_port][vc];
                    if ivc.route.is_some() || ivc.dropping {
                        continue;
                    }
                    let needs_inspection = !ivc.inspected;
                    let Some((front, _)) = ivc.buffer.front_mut() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let packet_id = front.packet_id;
                    let packet = front.packet.as_mut().expect("head flit carries packet");
                    if needs_inspection {
                        let payload_before = packet.payload();
                        let outcome = self.inspector.inspect(node, self.cycle, packet);
                        if outcome.dropped {
                            let ivc = &mut self.routers[ri].inputs[in_port][vc];
                            ivc.dropping = true;
                            ivc.inspected = true;
                            continue;
                        }
                        if outcome.modified {
                            if let Some(meta) = self.in_flight.get_mut(&packet_id) {
                                meta.modified = true;
                            }
                            if let Some(trace) = self.trace.as_mut() {
                                trace.record(TraceEvent::Tampered {
                                    packet: packet_id,
                                    node,
                                    payload_before,
                                    payload_after: packet.payload(),
                                    cycle: self.cycle,
                                });
                            }
                        }
                        let action = match self.faults.as_mut() {
                            Some(hook) if faults_engaged => {
                                hook.packet_fault(node, self.cycle, packet)
                            }
                            _ => FaultAction::none(),
                        };
                        if action.drop {
                            let ivc = &mut self.routers[ri].inputs[in_port][vc];
                            ivc.dropping = true;
                            ivc.inspected = true;
                            continue;
                        }
                        if action.flip_mask != 0 {
                            let before = packet.payload();
                            packet.set_payload(before ^ action.flip_mask);
                            if let Some(meta) = self.in_flight.get_mut(&packet_id) {
                                meta.modified = true;
                            }
                            if let Some(trace) = self.trace.as_mut() {
                                trace.record(TraceEvent::Tampered {
                                    packet: packet_id,
                                    node,
                                    payload_before: before,
                                    payload_after: packet.payload(),
                                    cycle: self.cycle,
                                });
                            }
                        }
                    }
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::Routed {
                            packet: packet_id,
                            node,
                            cycle: self.cycle,
                        });
                    }
                    let dst = self.routers[ri].inputs[in_port][vc]
                        .buffer
                        .front()
                        .map(|(f, _)| f.packet.as_ref().expect("head").dst())
                        .expect("front checked");
                    let candidates =
                        self.routing
                            .route(self.mesh, node, dst, Direction::ALL[in_port]);
                    assert!(!candidates.is_empty());
                    let chosen = if candidates.len() == 1 {
                        candidates[0]
                    } else {
                        *candidates
                            .iter()
                            .max_by_key(|d| self.routers[ri].output_credits(**d))
                            .expect("nonempty candidates")
                    };
                    let ivc = &mut self.routers[ri].inputs[in_port][vc];
                    ivc.route = Some(chosen);
                    ivc.inspected = true;
                }
            }
        }
    }

    fn eject(&mut self, flit: Flit) {
        self.stats.delivered_flits += 1;
        if flit.kind.is_head() {
            let packet = flit.packet.expect("head flit carries packet");
            self.pending_heads.insert(flit.packet_id, packet);
        }
        if flit.kind.is_tail() {
            let packet = self
                .pending_heads
                .remove(&flit.packet_id)
                .expect("tail after head");
            let meta = self
                .in_flight
                .remove(&flit.packet_id)
                .expect("meta tracked from injection");
            let latency = self.cycle - meta.injected_at;
            self.stats.delivered_packets += 1;
            self.stats.total_hops += u64::from(meta.hops);
            self.stats.record_latency(latency);
            if meta.modified {
                self.stats.modified_packets += 1;
            }
            if matches!(packet.kind(), PacketKind::PowerReq) {
                self.stats.delivered_power_requests += 1;
                if meta.modified {
                    self.stats.modified_power_requests += 1;
                }
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Ejected {
                    packet: flit.packet_id,
                    node: packet.dst(),
                    cycle: self.cycle,
                });
            }
            self.ejected.push(DeliveredPacket {
                packet,
                latency,
                hops: meta.hops,
                modified: meta.modified,
            });
        }
    }
}

impl std::fmt::Debug for ReferenceNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceNet")
            .field("mesh", &self.mesh)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}
