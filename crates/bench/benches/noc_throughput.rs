//! Microbenchmarks of the NoC substrate itself: draining manager-hotspot
//! traffic under both routing algorithms, and the cost of the inspector
//! hook with an armed Trojan fleet (it must be nearly free on clean
//! routers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use htpb_core::{
    Mesh2d, Network, NetworkConfig, NodeId, Packet, PacketKind, RoutingKind, TamperRule,
    TrojanFleet,
};
use htpb_noc::{TrafficPattern, UniformTraffic};

fn hotspot_net(routing: RoutingKind) -> Network {
    let mesh = Mesh2d::new(8, 8).unwrap();
    let mut net = Network::new(NetworkConfig::new(mesh).with_routing(routing));
    let manager = mesh.center();
    for src in mesh.iter_nodes() {
        if src != manager {
            net.inject(Packet::power_request(src, manager, 1_000))
                .unwrap();
        }
    }
    net
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_drain_hotspot");
    group.sample_size(20);
    for routing in [RoutingKind::Xy, RoutingKind::OddEven] {
        group.bench_function(format!("{routing:?}"), |b| {
            b.iter_batched(
                || hotspot_net(routing),
                |mut net| {
                    assert!(net.run_until_idle(100_000));
                    net.stats().delivered_packets()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_inspector_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_inspector_overhead");
    group.sample_size(20);
    let mesh = Mesh2d::new(8, 8).unwrap();
    let manager = mesh.center();

    group.bench_function("clean", |b| {
        b.iter_batched(
            || hotspot_net(RoutingKind::Xy),
            |mut net| {
                net.run_until_idle(100_000);
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("16-trojans-armed", |b| {
        b.iter_batched(
            || {
                let nodes: Vec<NodeId> = (0..16).map(|i| NodeId(i * 4)).collect();
                let mut fleet = TrojanFleet::new(&nodes, TamperRule::Zero);
                fleet.configure_all(&[], manager, true);
                let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);
                for src in mesh.iter_nodes() {
                    if src != manager {
                        net.inject(Packet::power_request(src, manager, 1_000))
                            .unwrap();
                    }
                }
                net
            },
            |mut net| {
                net.run_until_idle(100_000);
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The regime the active-set stepping targets: the paper's 16×16 platform
/// under low uniform-random injection, where most routers are idle most
/// cycles and per-cycle cost should track traffic, not mesh size.
fn bench_low_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_low_injection_16x16");
    group.sample_size(10);
    let mesh = Mesh2d::new(16, 16).unwrap();
    for rate_milli in [10u32, 50] {
        group.bench_function(format!("rate_0.{rate_milli:03}"), |b| {
            b.iter(|| {
                let mut net = Network::new(NetworkConfig::new(mesh));
                let mut traffic = UniformTraffic::new(
                    mesh,
                    f64::from(rate_milli) / 1_000.0,
                    PacketKind::Meta,
                    42,
                );
                for cycle in 0..5_000 {
                    for p in traffic.generate(cycle) {
                        let _ = net.inject(p);
                    }
                    net.step();
                }
                net.run_until_idle(100_000);
                net.stats().delivered_packets()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_drain,
    bench_inspector_overhead,
    bench_low_injection
);
criterion_main!(benches);
