//! Criterion benches for the defense layer: the checksum, probe and
//! localization primitives must be cheap enough to run every epoch on a
//! manager core.

use criterion::{criterion_group, criterion_main, Criterion};

use htpb_core::{DefenseSuite, Mesh2d, NodeId, ProbePlan, RequestProtection, TrojanLocalizer};

fn bench_checksum(c: &mut Criterion) {
    let p = RequestProtection::new(0xDEAD_BEEF);
    c.bench_function("defense_checksum_verify", |b| {
        let sum = p.checksum(17, 2_515);
        b.iter(|| {
            p.verify(
                std::hint::black_box(17),
                std::hint::black_box(2_515),
                Some(sum),
            )
        });
    });
}

fn bench_probe_schedule(c: &mut Criterion) {
    let plan = ProbePlan::default_band(7);
    c.bench_function("defense_probe_expected", |b| {
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            plan.expected(NodeId((epoch % 256) as u16), epoch)
        });
    });
}

fn bench_localizer_256(c: &mut Criterion) {
    let mesh = Mesh2d::with_nodes(256).unwrap();
    let manager = mesh.center();
    let trojans = [NodeId(40), NodeId(200)];
    let mut flagged = Vec::new();
    let mut clean = Vec::new();
    for src in mesh.iter_nodes() {
        if src == manager {
            continue;
        }
        if mesh
            .xy_path(src, manager)
            .iter()
            .any(|n| trojans.contains(n))
        {
            flagged.push(src);
        } else {
            clean.push(src);
        }
    }
    let loc = TrojanLocalizer::new(mesh, manager);
    c.bench_function("defense_localize_256nodes", |b| {
        b.iter(|| {
            let r = loc.localize(&flagged, &clean);
            assert!(r.suspects.contains(&trojans[0]));
            r.suspects.len()
        });
    });
}

fn bench_suite_epoch(c: &mut Criterion) {
    // One full epoch of suite bookkeeping on a 256-node chip.
    let mesh = Mesh2d::with_nodes(256).unwrap();
    c.bench_function("defense_suite_epoch_256nodes", |b| {
        b.iter(|| {
            let mut suite = DefenseSuite::new(mesh, mesh.center(), ProbePlan::default_band(1));
            for epoch in 0..3 {
                for core in mesh.iter_nodes() {
                    suite.observe_request(core, epoch, 2_000.0);
                }
            }
            suite.verdict().compromised
        });
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_probe_schedule,
    bench_localizer_256,
    bench_suite_epoch
);
criterion_main!(benches);
