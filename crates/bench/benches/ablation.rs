//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! allocation policy, routing algorithm, tamper rule, and epoch length.
//! Each measures one campaign under the varied knob and asserts the attack
//! stays effective (Q > 1) — the paper's "irrespective of the algorithm"
//! claim, mechanised.

use criterion::{criterion_group, criterion_main, Criterion};

use htpb_core::{
    run_campaign, AllocatorKind, AppRole, Benchmark, CampaignConfig, Mesh2d, Mix,
    RequestProtection, RoutingKind, SystemBuilder, TamperRule, TrojanFleet, Workload,
};

fn base() -> CampaignConfig {
    CampaignConfig::tiny(Mix::Mix1)
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_allocator");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut cfg = base();
                cfg.allocator = kind;
                let r = run_campaign(&cfg, 1.0);
                assert!(r.outcome.q_value > 1.0, "{} defeated", kind.name());
                r.outcome.q_value
            });
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_routing");
    group.sample_size(10);
    for routing in RoutingKind::ALL {
        group.bench_function(format!("{routing:?}"), |b| {
            b.iter(|| {
                let mut cfg = base();
                cfg.routing = routing;
                let r = run_campaign(&cfg, 1.0);
                assert!(r.outcome.q_value > 1.0);
                r.outcome.q_value
            });
        });
    }
    group.finish();
}

fn bench_tamper_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tamper_rule");
    group.sample_size(10);
    for (label, rule) in [
        ("zero", TamperRule::Zero),
        ("scale25", TamperRule::ScalePercent(25)),
        ("clamp400mw", TamperRule::ClampTo(400)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base();
                cfg.tamper_rule = rule;
                let r = run_campaign(&cfg, 1.0);
                assert!(r.outcome.q_value >= 1.0);
                r.outcome.q_value
            });
        });
    }
    group.finish();
}

fn bench_epoch_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_epoch_cycles");
    group.sample_size(10);
    for epoch in [600u64, 1200, 2400] {
        group.bench_function(format!("{epoch}"), |b| {
            b.iter(|| {
                let mut cfg = base();
                cfg.epoch_cycles = Some(epoch);
                let r = run_campaign(&cfg, 1.0);
                r.outcome.q_value
            });
        });
    }
    group.finish();
}

fn bench_memory_model(c: &mut Criterion) {
    // Rate-based vs. detailed caches: the structural-fidelity knob's cost.
    let mut group = c.benchmark_group("ablation_memory_model");
    group.sample_size(10);
    for (label, detailed) in [("rate-based", false), ("detailed-caches", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mesh = Mesh2d::new(8, 8).unwrap();
                let mut sys = SystemBuilder::new(mesh)
                    .workload(
                        Workload::new()
                            .app(Benchmark::Canneal, 30, AppRole::Legitimate)
                            .app(Benchmark::Vips, 30, AppRole::Legitimate),
                    )
                    .detailed_caches(detailed)
                    .build()
                    .unwrap();
                sys.run_epochs(3);
                sys.network().stats().delivered_packets()
            });
        });
    }
    group.finish();
}

fn bench_protection_overhead(c: &mut Criterion) {
    // The checksum defense must be nearly free on a clean chip and cheap
    // under attack.
    let mut group = c.benchmark_group("ablation_protection");
    group.sample_size(10);
    for (label, protect) in [("vulnerable", false), ("checksummed", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mesh = Mesh2d::new(8, 8).unwrap();
                let manager = mesh.center();
                let mut fleet = TrojanFleet::new(&[manager], TamperRule::Zero);
                fleet.configure_all(&[], manager, true);
                let mut builder = SystemBuilder::new(mesh)
                    .manager(manager)
                    .workload(Workload::new().app(Benchmark::Barnes, 40, AppRole::Legitimate));
                if protect {
                    builder = builder.protection(RequestProtection::new(7));
                }
                let mut sys = builder.build_with_inspector(fleet).unwrap();
                sys.run_epochs(3);
                sys.requests_rejected()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allocators,
    bench_routing,
    bench_tamper_rules,
    bench_epoch_length,
    bench_memory_model,
    bench_protection_overhead
);
criterion_main!(benches);
