//! Regenerates **Fig. 5** of the paper: attack effect Q(Δ, Γ) vs. infection
//! rate for the four benchmark mixes of Table III, each application
//! multi-threaded on a 256-core chip with the manager at the center.
//!
//! Paper shapes to reproduce: Q grows with the infection rate for every
//! mix, and mix-4 (three attackers, one victim) peaks highest — 6.89 at
//! 0.9 infection in the paper.

use htpb_bench::{banner, timed};
use htpb_core::{attack_sweep, CampaignConfig, Mix, Series};

fn main() {
    banner("Fig. 5", "attack effect Q vs. infection rate per mix");
    let duties: Vec<f64> = (0..=9).map(|i| f64::from(i) / 10.0).collect();
    let mut peak: (f64, &str) = (0.0, "");
    let mut tables = Vec::new();
    for mix in Mix::ALL {
        let cfg = CampaignConfig::new(mix);
        let points = timed(mix.name(), || attack_sweep(&cfg, &duties));
        let mut series = Series::new(mix.name());
        for p in &points {
            series.push(p.infection, p.q_value);
        }
        if let Some((_, q)) = series.points.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
            if *q > peak.0 {
                peak = (*q, mix.name());
            }
        }
        println!(
            "shape: {} Q rises from {:.2} to {:.2} (monotonic-ish = {})",
            mix.name(),
            series.points.first().map_or(0.0, |p| p.1),
            series.last_y().unwrap_or(0.0),
            series.is_monotonic_nondecreasing(),
        );
        tables.push(series);
    }
    println!("\n--- Fig. 5 data (x = measured infection rate, y = Q) ---");
    for s in &tables {
        print!("{}", s.to_table());
    }
    println!(
        "shape: peak Q = {:.2} on {} (paper: 6.89 on mix-4 at 0.9 infection)",
        peak.0, peak.1
    );
}
