//! Regenerates **Fig. 5** of the paper: attack effect Q(Δ, Γ) vs. infection
//! rate for the four benchmark mixes of Table III, each application
//! multi-threaded on a 256-core chip with the manager at the center.
//!
//! Paper shapes to reproduce: Q grows with the infection rate for every
//! mix, and mix-4 (three attackers, one victim) peaks highest — 6.89 at
//! 0.9 infection in the paper.
//!
//! Each (mix, duty) campaign is an independent harness job; `--jobs N`
//! parallelises them, `--no-cache` / `--resume` control `results/.cache/`
//! reuse.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use htpb_bench::{banner, timed_stage};
use htpb_core::{Mix, Series};
use htpb_harness::{
    cache_for, std_fs, Campaign, CampaignScale, HarnessArgs, JobOutput, JobSpec, RunOptions,
};

fn main() -> ExitCode {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(args) if args.rest.is_empty() => args,
        Ok(args) => {
            eprintln!("fig5: unknown flag `{}`", args.rest[0]);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("fig5: {e}");
            return ExitCode::FAILURE;
        }
    };
    banner("Fig. 5", "attack effect Q vs. infection rate per mix");
    let outdir = Path::new("results");
    let opts = RunOptions {
        workers: args.workers(),
        cache: match cache_for(outdir, args.use_cache) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("fig5: opening cache: {e}");
                return ExitCode::FAILURE;
            }
        },
        // All duty points of one mix share a single clean baseline; the
        // cache computes it once per mix (and persists it with --cache).
        baselines: Some(std::sync::Arc::new(if args.use_cache {
            htpb_harness::BaselineCache::with_dir(outdir.join(".cache"))
        } else {
            htpb_harness::BaselineCache::in_memory()
        })),
        progress: true,
        job_timeout: args.job_timeout(),
        retries: args.retries,
        retry_seed: args.retry_seed,
        retry_base_ms: args.retry_base_ms,
    };

    // One job per (mix, duty): a full campaign, its clean baseline shared
    // per mix through the baseline cache (deterministic, so bit-equal to
    // an inline-baseline sweep).
    let duty_tenths: Vec<u32> = (0..=9).collect();
    let mut jobs = Vec::new();
    for mix in Mix::ALL {
        for &duty_tenths in &duty_tenths {
            jobs.push(JobSpec::SweepPoint {
                mix,
                scale: CampaignScale::Paper,
                duty_tenths,
            });
        }
    }
    // Campaign::start recovers from a crashed prior run: started-but-died
    // jobs are distrusted and re-executed, committed ones come from cache.
    let campaign = match Campaign::start("fig5", outdir, &jobs, &opts, std_fs(), vec![]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fig5: opening campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = campaign.journal();
    let reports = campaign.execute(&jobs, &opts);
    if reports.iter().any(|r| r.output.is_err()) {
        campaign.finish(false, vec![]);
        eprintln!("fig5: a job failed; see results/journal.jsonl");
        return ExitCode::FAILURE;
    }

    let mut peak: (f64, &str) = (0.0, "");
    let mut tables = Vec::new();
    let mut next = 0usize;
    for mix in Mix::ALL {
        let series = timed_stage(Some(journal), &format!("fig5 {}", mix.name()), || {
            let mut series = Series::new(mix.name());
            for _ in &duty_tenths {
                let JobOutput::Sweep { infection, q, .. } = reports[next].expect_output() else {
                    unreachable!("fig5 jobs produce sweep points")
                };
                series.push(*infection, *q);
                next += 1;
            }
            series
        });
        if let Some((_, q)) = series.points.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
            if *q > peak.0 {
                peak = (*q, mix.name());
            }
        }
        println!(
            "shape: {} Q rises from {:.2} to {:.2} (monotonic-ish = {})",
            mix.name(),
            series.points.first().map_or(0.0, |p| p.1),
            series.last_y().unwrap_or(0.0),
            series.is_monotonic_nondecreasing(),
        );
        tables.push(series);
    }
    println!("\n--- Fig. 5 data (x = measured infection rate, y = Q) ---");
    for s in &tables {
        print!("{}", s.to_table());
    }
    println!(
        "shape: peak Q = {:.2} on {} (paper: 6.89 on mix-4 at 0.9 infection)",
        peak.0, peak.1
    );
    campaign.finish(true, vec![]);
    ExitCode::SUCCESS
}
