//! Regenerates **Fig. 6** of the paper: per-application performance change
//! Θ vs. infection rate, one panel per mix (a–d).
//!
//! Paper call-outs to reproduce:
//! - (a) mix-1 at infection 0.5: attackers gain up to ≈1.2×, the victim
//!   drops to ≈0.6×;
//! - (c) mix-3 at infection 0.5: the attacker improves by up to ≈1.35×;
//! - (d) mix-4 at infection 0.5: victims degrade to ≈0.8×.

#![forbid(unsafe_code)]

use htpb_bench::{banner, timed};
use htpb_core::{attack_sweep, AppRole, CampaignConfig, Mix, Series};

fn main() {
    banner("Fig. 6", "per-application performance change vs. infection");
    let duties: Vec<f64> = (0..=9).map(|i| f64::from(i) / 10.0).collect();
    for (panel, mix) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(Mix::ALL) {
        let cfg = CampaignConfig::new(mix);
        let points = timed(mix.name(), || attack_sweep(&cfg, &duties));
        println!("\n--- Fig. 6 {panel}: {} ---", mix.name());

        // One series per application in the mix.
        let napps = points.first().map_or(0, |p| p.outcome.changes.len());
        let mut series: Vec<Series> = (0..napps)
            .map(|i| {
                let (_, role, _) = points[0].outcome.changes[i];
                let bench = mix
                    .attackers()
                    .iter()
                    .chain(mix.victims())
                    .nth(i)
                    .expect("app order is attackers then victims");
                Series::new(format!(
                    "{bench} ({})",
                    if role == AppRole::Malicious {
                        "attacker"
                    } else {
                        "victim"
                    }
                ))
            })
            .collect();
        for p in &points {
            for (i, (_, _, change)) in p.outcome.changes.iter().enumerate() {
                series[i].push(p.infection, *change);
            }
        }
        for s in &series {
            print!("{}", s.to_table());
        }

        // Call-out near infection 0.5.
        if let Some(mid) = points.iter().min_by(|a, b| {
            (a.infection - 0.5)
                .abs()
                .total_cmp(&(b.infection - 0.5).abs())
        }) {
            println!(
                "shape @infection {:.2}: best attacker gain {:.2}x, worst victim {:.2}x",
                mid.infection,
                mid.outcome.max_attacker_gain(),
                mid.outcome.min_victim_change()
            );
        }
    }
    println!("\n(paper: mix-1 @0.5 -> attackers ~1.2x, victims ~0.6x; mix-3 attacker up to ~1.35x; mix-4 victims ~0.8x)");
}
