//! Cycles-per-second meter for the NoC hot path.
//!
//! Unlike the Criterion benches (statistical, slow), this binary times a
//! handful of fixed scenarios once and prints one JSON line per scenario —
//! cheap enough to run in CI for trend-spotting and to capture the
//! before/after numbers of `results/BENCH_noc.json`. Scenarios cover the
//! regimes the active-set stepping is designed around: low uniform-random
//! injection on the paper's 16×16 platform, bursty hotspot (`POWER_REQ`)
//! epochs with idle gaps, an all-to-center drain, and a fully idle mesh.
//!
//! Usage: `noc_perf [--smoke] [--json <out.json>] [--check <BENCH_noc.json>] [--metrics]`
//!
//! - `--smoke` shrinks cycle counts ~10× for CI smoke runs;
//! - `--json` additionally writes the measurements as one machine-readable
//!   JSON document;
//! - `--check` compares the measured cycles/sec against the committed
//!   `after_cycles_per_sec` of `results/BENCH_noc.json` and exits non-zero
//!   on a >25% regression. The gate is ratio-based (measured/committed per
//!   scenario), and scenarios whose cycle counts differ more than 2× from
//!   the committed run are skipped — a `--smoke` run is not "matched
//!   scale" and must not trip the gate;
//! - `--metrics` enables live NoC metrics on every timed network and prints
//!   the registry summary on stderr at exit. Combining `--metrics` with
//!   `--check` is the observability layer's standing overhead gate: the
//!   timed hot loop must clear the same 0.75× bar with metrics on.
//!   Counter totals cover all [`RUNS`] timing runs of each scenario, not
//!   just the best one.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Instant;

use htpb_harness::json::{self, Value};
use htpb_noc::{
    HotspotTraffic, Mesh2d, Network, NetworkConfig, NodeId, Packet, TrafficPattern, UniformTraffic,
};
use htpb_trojan::{TamperRule, TrojanFleet};

/// Best-of-N timing runs per scenario (the container may jitter).
const RUNS: usize = 3;

/// A measured run regresses when it falls below this fraction of the
/// committed cycles/sec (`--check`).
const CHECK_RATIO: f64 = 0.75;

struct Outcome {
    cycles: u64,
    delivered: u64,
    wall_s: f64,
}

impl Outcome {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s.max(1e-12)
    }
}

fn time_scenario(mut run: impl FnMut() -> (u64, u64)) -> Outcome {
    let mut best = Outcome {
        cycles: 0,
        delivered: 0,
        wall_s: f64::INFINITY,
    };
    for _ in 0..RUNS {
        let start = Instant::now();
        let (cycles, delivered) = run();
        let wall_s = start.elapsed().as_secs_f64();
        if wall_s < best.wall_s {
            best = Outcome {
                cycles,
                delivered,
                wall_s,
            };
        }
    }
    best
}

fn report(scenario: &str, o: &Outcome) {
    println!(
        "{{\"scenario\":\"{scenario}\",\"cycles\":{},\"delivered\":{},\"wall_s\":{:.6},\"cycles_per_sec\":{:.0}}}",
        o.cycles,
        o.delivered,
        o.wall_s,
        o.cycles_per_sec()
    );
}

/// Drives a 16×16 mesh with a per-cycle traffic generator for `cycles`
/// cycles, then drains. Returns (total cycles stepped, packets delivered).
fn drive(mesh: Mesh2d, mut traffic: impl TrafficPattern, cycles: u64) -> (u64, u64) {
    let mut net = Network::new(NetworkConfig::new(mesh));
    if htpb_obs::enabled() {
        net.enable_metrics();
    }
    for c in 0..cycles {
        for p in traffic.generate(c) {
            let _ = net.inject(p);
        }
        net.step();
    }
    net.run_until_idle(1_000_000);
    if htpb_obs::enabled() {
        htpb_manycore::obs_bridge::absorb_network(&net);
    }
    (net.cycle(), net.stats().delivered_packets())
}

fn run_scenarios(scale: u64) -> Vec<(&'static str, Outcome)> {
    let mesh16 = Mesh2d::new(16, 16).unwrap();
    let mesh8 = Mesh2d::new(8, 8).unwrap();
    let mut results = Vec::new();

    // Low and moderate uniform-random injection on the paper's platform.
    for (name, rate) in [("uniform16_rate001", 0.01), ("uniform16_rate005", 0.05)] {
        let cycles = 20_000 / scale;
        let o = time_scenario(|| {
            drive(
                mesh16,
                UniformTraffic::new(mesh16, rate, htpb_noc::PacketKind::Meta, 42),
                cycles,
            )
        });
        results.push((name, o));
    }

    // Bursty POWER_REQ epochs: one all-nodes burst to the manager every
    // 2000 cycles, long idle gaps in between (the Fig. 5 traffic shape).
    {
        let cycles = 40_000 / scale;
        let o = time_scenario(|| {
            drive(
                mesh16,
                HotspotTraffic::new(mesh16, mesh16.center(), 2_000, 0, 7),
                cycles,
            )
        });
        results.push(("hotspot16_epoch2k", o));
    }

    // All-to-center drain on 8×8 (the original noc_throughput shape),
    // with an armed 16-Trojan fleet so the inspector hot path is included.
    {
        let o = time_scenario(|| {
            let nodes: Vec<NodeId> = (0..16).map(|i| NodeId(i * 4)).collect();
            let mut fleet = TrojanFleet::new(&nodes, TamperRule::Zero);
            fleet.configure_all(&[], mesh8.center(), true);
            let mut net = Network::with_inspector(NetworkConfig::new(mesh8), fleet);
            if htpb_obs::enabled() {
                net.enable_metrics();
            }
            for _ in 0..4 {
                for src in mesh8.iter_nodes() {
                    if src != mesh8.center() {
                        let _ = net.inject(Packet::power_request(src, mesh8.center(), 1_000));
                    }
                }
            }
            net.run_until_idle(1_000_000);
            if htpb_obs::enabled() {
                htpb_manycore::obs_bridge::absorb_network(&net);
            }
            (net.cycle(), net.stats().delivered_packets())
        });
        results.push(("hotspot8_drain_trojan", o));
    }

    // Fully idle 16×16 mesh: the pure cost of stepping a quiet network.
    {
        let cycles = 2_000_000 / scale;
        let o = time_scenario(|| {
            let mut net = Network::new(NetworkConfig::new(mesh16));
            if htpb_obs::enabled() {
                net.enable_metrics();
            }
            net.step_n(cycles);
            if htpb_obs::enabled() {
                htpb_manycore::obs_bridge::absorb_network(&net);
            }
            (net.cycle(), 0)
        });
        results.push(("idle16_empty", o));
    }

    results
}

fn write_json(path: &str, smoke: bool, results: &[(&str, Outcome)]) -> std::io::Result<()> {
    let scenarios = results
        .iter()
        .map(|(name, o)| {
            Value::obj(vec![
                ("scenario", Value::Str((*name).to_string())),
                ("cycles", Value::Int(o.cycles as i64)),
                ("delivered", Value::Int(o.delivered as i64)),
                ("wall_s", Value::Num(o.wall_s)),
                ("cycles_per_sec", Value::Num(o.cycles_per_sec().round())),
            ])
        })
        .collect();
    let doc = Value::obj(vec![
        ("bench", Value::Str("noc_perf".to_string())),
        (
            "scale",
            Value::Str(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("runs", Value::Int(RUNS as i64)),
        ("scenarios", Value::Arr(scenarios)),
    ]);
    htpb_harness::commit_file(
        &htpb_harness::StdFs,
        path.as_ref(),
        (doc.render() + "\n").as_bytes(),
    )
}

/// Gates the measured numbers on the committed `BENCH_noc.json`. Returns
/// `false` when any matched-scale scenario regresses below [`CHECK_RATIO`]
/// of its committed `after_cycles_per_sec`.
fn check_against(path: &str, results: &[(&str, Outcome)]) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("noc_perf: --check: reading {path}: {e}");
            return false;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("noc_perf: --check: parsing {path}: {e}");
            return false;
        }
    };
    let Some(committed) = doc.get("scenarios").and_then(Value::as_arr) else {
        eprintln!("noc_perf: --check: {path} has no `scenarios` array");
        return false;
    };
    let mut ok = true;
    let mut compared = 0usize;
    for entry in committed {
        let Some(name) = entry.get("scenario").and_then(Value::as_str) else {
            continue;
        };
        let (Some(ref_cycles), Some(ref_cps)) = (
            entry.get("cycles").and_then(Value::as_f64),
            entry.get("after_cycles_per_sec").and_then(Value::as_f64),
        ) else {
            continue;
        };
        let Some((_, measured)) = results.iter().find(|(n, _)| *n == name) else {
            eprintln!("perf-check: {name}: not measured, skipped");
            continue;
        };
        // "Matched scale" guard: a --smoke run steps ~10× fewer cycles and
        // has a different warm-up/drain mix — not comparable.
        let cycles = measured.cycles as f64;
        if !(ref_cycles / 2.0..=ref_cycles * 2.0).contains(&cycles) {
            eprintln!(
                "perf-check: {name}: cycle count {cycles:.0} vs committed {ref_cycles:.0}, scale mismatch, skipped"
            );
            continue;
        }
        compared += 1;
        let ratio = measured.cycles_per_sec() / ref_cps;
        let verdict = if ratio >= CHECK_RATIO {
            "ok"
        } else {
            "REGRESSED"
        };
        eprintln!(
            "perf-check: {name}: {:.0} c/s vs committed {ref_cps:.0} (ratio {ratio:.2}) {verdict}",
            measured.cycles_per_sec()
        );
        if ratio < CHECK_RATIO {
            ok = false;
        }
    }
    if compared == 0 {
        eprintln!("perf-check: no scenario compared (scale mismatch everywhere?) — failing");
        return false;
    }
    ok
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut metrics = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--metrics" => metrics = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("noc_perf: --json needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match args.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("noc_perf: --check needs a committed BENCH_noc.json path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("noc_perf: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    htpb_obs::set_enabled(metrics);

    let scale = if smoke { 10 } else { 1 };
    let results = run_scenarios(scale);
    for (name, o) in &results {
        report(name, o);
    }
    if metrics {
        eprint!("{}", htpb_obs::global().snapshot().to_summary());
    }
    if let Some(path) = &json_path {
        if let Err(e) = write_json(path, smoke, &results) {
            eprintln!("noc_perf: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &check_path {
        if !check_against(path, &results) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
