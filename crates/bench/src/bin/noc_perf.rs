//! Cycles-per-second meter for the NoC hot path.
//!
//! Unlike the Criterion benches (statistical, slow), this binary times a
//! handful of fixed scenarios once and prints one JSON line per scenario —
//! cheap enough to run in CI for trend-spotting and to capture the
//! before/after numbers of `results/BENCH_noc.json`. Scenarios cover the
//! regimes the active-set stepping is designed around: low uniform-random
//! injection on the paper's 16×16 platform, bursty hotspot (`POWER_REQ`)
//! epochs with idle gaps, an all-to-center drain, and a fully idle mesh.
//!
//! Usage: `noc_perf [--smoke]` — `--smoke` shrinks cycle counts ~10× for
//! CI smoke runs.

use std::time::Instant;

use htpb_noc::{
    HotspotTraffic, Mesh2d, Network, NetworkConfig, NodeId, Packet, TrafficPattern, UniformTraffic,
};
use htpb_trojan::{TamperRule, TrojanFleet};

/// Best-of-N timing runs per scenario (the container may jitter).
const RUNS: usize = 3;

struct Outcome {
    cycles: u64,
    delivered: u64,
    wall_s: f64,
}

fn time_scenario(mut run: impl FnMut() -> (u64, u64)) -> Outcome {
    let mut best = Outcome {
        cycles: 0,
        delivered: 0,
        wall_s: f64::INFINITY,
    };
    for _ in 0..RUNS {
        let start = Instant::now();
        let (cycles, delivered) = run();
        let wall_s = start.elapsed().as_secs_f64();
        if wall_s < best.wall_s {
            best = Outcome {
                cycles,
                delivered,
                wall_s,
            };
        }
    }
    best
}

fn report(scenario: &str, o: &Outcome) {
    let cps = o.cycles as f64 / o.wall_s.max(1e-12);
    println!(
        "{{\"scenario\":\"{scenario}\",\"cycles\":{},\"delivered\":{},\"wall_s\":{:.6},\"cycles_per_sec\":{:.0}}}",
        o.cycles, o.delivered, o.wall_s, cps
    );
}

/// Drives a 16×16 mesh with a per-cycle traffic generator for `cycles`
/// cycles, then drains. Returns (total cycles stepped, packets delivered).
fn drive(mesh: Mesh2d, mut traffic: impl TrafficPattern, cycles: u64) -> (u64, u64) {
    let mut net = Network::new(NetworkConfig::new(mesh));
    for c in 0..cycles {
        for p in traffic.generate(c) {
            let _ = net.inject(p);
        }
        net.step();
    }
    net.run_until_idle(1_000_000);
    (net.cycle(), net.stats().delivered_packets())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 10 } else { 1 };
    let mesh16 = Mesh2d::new(16, 16).unwrap();
    let mesh8 = Mesh2d::new(8, 8).unwrap();

    // Low and moderate uniform-random injection on the paper's platform.
    for (name, rate) in [("uniform16_rate001", 0.01), ("uniform16_rate005", 0.05)] {
        let cycles = 20_000 / scale;
        let o = time_scenario(|| {
            drive(
                mesh16,
                UniformTraffic::new(mesh16, rate, htpb_noc::PacketKind::Meta, 42),
                cycles,
            )
        });
        report(name, &o);
    }

    // Bursty POWER_REQ epochs: one all-nodes burst to the manager every
    // 2000 cycles, long idle gaps in between (the Fig. 5 traffic shape).
    {
        let cycles = 40_000 / scale;
        let o = time_scenario(|| {
            drive(
                mesh16,
                HotspotTraffic::new(mesh16, mesh16.center(), 2_000, 0, 7),
                cycles,
            )
        });
        report("hotspot16_epoch2k", &o);
    }

    // All-to-center drain on 8×8 (the original noc_throughput shape),
    // with an armed 16-Trojan fleet so the inspector hot path is included.
    {
        let o = time_scenario(|| {
            let nodes: Vec<NodeId> = (0..16).map(|i| NodeId(i * 4)).collect();
            let mut fleet = TrojanFleet::new(&nodes, TamperRule::Zero);
            fleet.configure_all(&[], mesh8.center(), true);
            let mut net = Network::with_inspector(NetworkConfig::new(mesh8), fleet);
            for _ in 0..4 {
                for src in mesh8.iter_nodes() {
                    if src != mesh8.center() {
                        let _ = net.inject(Packet::power_request(src, mesh8.center(), 1_000));
                    }
                }
            }
            net.run_until_idle(1_000_000);
            (net.cycle(), net.stats().delivered_packets())
        });
        report("hotspot8_drain_trojan", &o);
    }

    // Fully idle 16×16 mesh: the pure cost of stepping a quiet network.
    {
        let cycles = 2_000_000 / scale;
        let o = time_scenario(|| {
            let mut net = Network::new(NetworkConfig::new(mesh16));
            net.step_n(cycles);
            (net.cycle(), 0)
        });
        report("idle16_empty", &o);
    }
}
