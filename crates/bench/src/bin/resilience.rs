//! Resilience campaign driver: attack effect under injected transport
//! faults, swept over *fault rate × allocator policy × hardening × duty*.
//!
//! Usage:
//! `cargo run --release -p htpb-bench --bin resilience [-- FLAGS]`
//!
//! - `--quick`        the default: small campaigns (64 nodes, fewer epochs);
//! - `--tiny`         seconds-scale smoke run (CI / integration scale);
//! - `--paper`        full paper-scale campaigns;
//! - `--jobs N`       worker threads (default: one per core);
//! - `--no-cache` / `--resume`   as in `repro_all`;
//! - `--job-timeout SECS` / `--retries N`   per-job wall-clock guard;
//! - `--metrics`      collect runtime metrics: `results/metrics.prom`,
//!   a JSON snapshot in the journal's `run_end`, and a stderr summary.
//!
//! Writes `results/resilience.tsv` (one row per swept cell) and
//! `results/RESILIENCE.txt` (graceful-degradation and attack-effect shape
//! checks); per-job timings land in `results/journal.jsonl`.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use htpb_harness::{cache_for, run_resilience_sweep, HarnessArgs, ReproScale, RunOptions};

fn main() -> ExitCode {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("resilience: {e}");
            return ExitCode::FAILURE;
        }
    };
    htpb_obs::set_enabled(args.metrics);
    let mut scale = ReproScale::Quick;
    for arg in &args.rest {
        match arg.as_str() {
            "--quick" => scale = ReproScale::Quick,
            "--tiny" => scale = ReproScale::Tiny,
            "--paper" => scale = ReproScale::Paper,
            other => {
                eprintln!("resilience: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let outdir = Path::new("results");
    let opts = RunOptions {
        workers: args.workers(),
        cache: match cache_for(outdir, args.use_cache) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("resilience: opening cache: {e}");
                return ExitCode::FAILURE;
            }
        },
        // Resilience baselines are fault-laden and per-cell; nothing to
        // share across jobs.
        baselines: None,
        progress: true,
        job_timeout: args.job_timeout(),
        retries: args.retries,
        retry_seed: args.retry_seed,
        retry_base_ms: args.retry_base_ms,
    };
    let result = run_resilience_sweep(scale, outdir, &opts);
    if args.metrics {
        eprint!("{}", htpb_harness::obs::summary_text());
    }
    match result {
        Ok(outcome) if outcome.failed == 0 => {
            eprintln!(
                "[harness] {} jobs, {} from cache",
                outcome.jobs, outcome.cache_hits
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            eprintln!(
                "resilience: {} job(s) failed; see results/journal.jsonl",
                outcome.failed
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("resilience: {e}");
            ExitCode::FAILURE
        }
    }
}
