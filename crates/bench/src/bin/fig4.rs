//! Regenerates **Fig. 4** of the paper: infection rate vs. system size
//! (64–512 nodes) for three HT distributions — clustered at the chip
//! center, uniformly random, and clustered in one corner — with the Trojan
//! count fixed at 1/16 (a) and 1/8 (b) of the system size. The global
//! manager sits at the center.
//!
//! Paper shapes to reproduce: center-cluster ≥ random ≥ corner-cluster at
//! every size; at 256 nodes with N/16 HTs the paper reports the center
//! cluster at 1.59× the random rate and 9.85× the corner rate.

#![forbid(unsafe_code)]

use htpb_bench::{banner, timed};
use htpb_core::{fig4_series, PlacementStrategy, Series};

const SIZES: [u32; 4] = [64, 128, 256, 512];

fn run_panel(denominator: u32, seeds: &[u64]) -> Vec<Series> {
    vec![
        fig4_series(
            &SIZES,
            "HTs around the center",
            |_| PlacementStrategy::CenterCluster,
            denominator,
            seeds,
        ),
        fig4_series(
            &SIZES,
            "HTs distributed randomly",
            |seed| PlacementStrategy::Random { seed },
            denominator,
            seeds,
        ),
        fig4_series(
            &SIZES,
            "HTs in one corner",
            |_| PlacementStrategy::CornerCluster,
            denominator,
            seeds,
        ),
    ]
}

fn main() {
    banner(
        "Fig. 4",
        "infection rate vs. HT distribution and system size",
    );
    let seeds: Vec<u64> = (0..8).collect();
    for (panel, denominator) in [("(a)", 16u32), ("(b)", 8u32)] {
        let series = timed(&format!("panel {panel} (#HT = N/{denominator})"), || {
            run_panel(denominator, &seeds)
        });
        println!("\n--- Fig. 4 {panel}: #HTs = system size / {denominator} ---");
        for s in &series {
            print!("{}", s.to_table());
        }
        // Shape checks at every size: center >= random >= corner.
        let (center, random, corner) = (&series[0], &series[1], &series[2]);
        let ordered = center
            .points
            .iter()
            .zip(&random.points)
            .zip(&corner.points)
            .all(|(((_, c), (_, r)), (_, k))| c >= r && r >= k);
        println!("shape: center >= random >= corner at all sizes = {ordered}");
        // The paper's 256-node call-outs.
        let at = |s: &Series, size: f64| {
            s.points
                .iter()
                .find(|(x, _)| *x == size)
                .map(|(_, y)| *y)
                .unwrap_or(0.0)
        };
        let (c, r, k) = (at(center, 256.0), at(random, 256.0), at(corner, 256.0));
        if r > 0.0 && k > 0.0 {
            println!(
                "shape @256 nodes: center/random = {:.2}x (paper 1.59x), center/corner = {:.2}x (paper 9.85x)",
                c / r,
                c / k
            );
        }
    }
}
