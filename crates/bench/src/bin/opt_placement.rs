//! Regenerates the **Section V-C** placement comparison (reported in the
//! paper's text): the attack effect with 16 optimally placed Trojans
//! (solving Eqs. 10–11) vs. 16 randomly placed ones, on a 256-node chip
//! with the manager at the center.
//!
//! Paper shapes to reproduce: the optimized placement improves Q by ≈30%
//! for mixes 1–3 and by as much as ≈110% for mix-4.

#![forbid(unsafe_code)]

use htpb_bench::{banner, pct, timed};
use htpb_core::{optimal_vs_random, CampaignConfig, Mix};

fn main() {
    banner(
        "Section V-C",
        "optimal (Eq. 10) vs. random HT placement, 16 HTs, 256 nodes",
    );
    let seeds: Vec<u64> = (100..105).collect();
    println!(
        "| mix   | Q optimal | Q random (mean of {}) | improvement |",
        seeds.len()
    );
    println!("|-------|-----------|------------------------|-------------|");
    let mut improvements = Vec::new();
    for mix in Mix::ALL {
        let cfg = CampaignConfig::new(mix);
        let cmp = timed(mix.name(), || optimal_vs_random(&cfg, 16, &seeds));
        println!(
            "| {} | {:>9.3} | {:>22.3} | {:>11} |",
            mix.name(),
            cmp.q_optimal,
            cmp.q_random,
            pct(cmp.improvement)
        );
        improvements.push((mix, cmp.improvement));
    }
    println!();
    let all_positive = improvements.iter().all(|(_, i)| *i > 0.0);
    println!("shape: optimized beats random for every mix = {all_positive}");
    let mix4 = improvements
        .iter()
        .find(|(m, _)| *m == Mix::Mix4)
        .map(|(_, i)| *i)
        .unwrap_or(0.0);
    let others_max = improvements
        .iter()
        .filter(|(m, _)| *m != Mix::Mix4)
        .map(|(_, i)| *i)
        .fold(0.0, f64::max);
    println!(
        "shape: mix-4 improvement {} vs. best other {} (paper: ~+110% vs ~+30%)",
        pct(mix4),
        pct(others_max)
    );
}
