//! NoC substrate validation: the classic load–latency curve under
//! uniform-random traffic, for each routing algorithm.
//!
//! A healthy wormhole network shows flat low-load latency (close to the
//! zero-load bound: hops × per-hop pipeline delay), then a knee as offered
//! load approaches saturation. This binary sweeps injection rates and
//! prints the curve — evidence the interconnect the attack rides on behaves
//! like a real one.
//!
//! Usage: `cargo run --release -p htpb-bench --bin noc_loadlat [-- nodes]`

#![forbid(unsafe_code)]

use htpb_bench::banner;
use htpb_core::{Mesh2d, Network, NetworkConfig, PacketKind, RoutingKind};
use htpb_noc::{TrafficPattern, UniformTraffic};

/// Runs uniform traffic at `rate` flits/node/cycle and returns
/// (mean latency, delivered fraction).
fn measure(mesh: Mesh2d, routing: RoutingKind, rate: f64, cycles: u64) -> (f64, f64) {
    let mut net = Network::new(NetworkConfig::new(mesh).with_routing(routing));
    let mut traffic = UniformTraffic::new(mesh, rate, PacketKind::Meta, 99);
    for cycle in 0..cycles {
        for packet in traffic.generate(cycle) {
            // Saturated injection queues shed load (counted via stats).
            let _ = net.inject(packet);
        }
        net.step();
    }
    // Drain what is in flight.
    net.run_until_idle(1_000_000);
    let stats = net.stats();
    let delivered_fraction = if stats.injected_packets() == 0 {
        0.0
    } else {
        stats.delivered_packets() as f64 / stats.injected_packets() as f64
    };
    (stats.latency().mean(), delivered_fraction)
}

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    banner("NoC validation", "load vs. latency under uniform traffic");
    let mesh = Mesh2d::with_nodes(nodes).expect("valid node count");
    println!(
        "mesh {}x{}, 4 VCs x 5-flit buffers, 1-flit packets, 3000 warm cycles\n",
        mesh.width(),
        mesh.height()
    );
    for routing in RoutingKind::ALL {
        println!("# {routing:?}");
        println!("rate\tmean_latency\tdelivered");
        let mut zero_load = None;
        for &rate in &[0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40] {
            let (lat, done) = measure(mesh, routing, rate, 3_000);
            zero_load.get_or_insert(lat);
            println!("{rate:.3}\t{lat:.1}\t{done:.3}");
        }
        let zl = zero_load.unwrap_or(0.0);
        println!("zero-load latency ≈ {zl:.1} cycles (bound: mean hops x 3 + serialization)\n");
    }
}
