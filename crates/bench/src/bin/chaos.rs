//! Process-level chaos harness for the crash-safe campaign machinery.
//!
//! Jepsen-style discipline: run the real `repro_all` binary as a child
//! process, SIGKILL it at a deterministic, seed-derived journal offset,
//! resume it, and assert that crash + resume is indistinguishable from an
//! uninterrupted run:
//!
//! - **(a) artefact identity** — every emitted artefact (`*.tsv`,
//!   `SUMMARY.txt`, `plot.gp`) is byte-identical to an uninterrupted
//!   reference run;
//! - **(b) no recomputation of committed work** — once a `job_done` with
//!   `ok:true, cached:true` is journalled, no later epoch may record a
//!   `job_start` for that job id;
//! - **(c) durable state stays readable** — the journal parses with at
//!   most one corrupt (torn-tail) record per kill, and the resumed run's
//!   `--verify` pass exits zero.
//!
//! A second battery injects filesystem faults (ENOSPC, short writes,
//! failed renames) *in-process* through [`FaultyFs`] at seed-derived
//! operation indices, then re-runs clean and asserts convergence.
//!
//! Usage:
//! `cargo run --release -p htpb-bench --bin chaos [-- FLAGS]`
//!
//! - `--trials N`    SIGKILL trials (default 50);
//! - `--fs-trials N` in-process fault-injection trials (default 12);
//! - `--smoke`       CI mode: 8 kill trials, 4 fs trials;
//! - `--tiny` / `--quick`   child campaign scale (default tiny);
//! - `--seed N`      base seed for kill offsets and fault schedules;
//! - `--keep`        keep per-trial work directories on success.
//!
//! On a failed trial the work directory (child journal, artefacts, logs
//! and a `FAILURE.txt` diagnosis) is left under `results/chaos/` and the
//! exit code is non-zero.

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;
use std::process::{Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htpb_harness::hash::fnv1a64_parts;
use htpb_harness::json::Value;
use htpb_harness::{
    std_fs, Campaign, FaultyFs, FsFault, JobSpec, Journal, ReproPlan, ReproScale, ResultCache,
    RunOptions,
};

/// Wall-clock guard per child invocation; a hung child fails the trial.
const CHILD_TIMEOUT: Duration = Duration::from_secs(600);

struct ChaosArgs {
    trials: u64,
    fs_trials: u64,
    scale: ReproScale,
    seed: u64,
    keep: bool,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<ChaosArgs, String> {
    let mut parsed = ChaosArgs {
        trials: 50,
        fs_trials: 12,
        scale: ReproScale::Tiny,
        seed: 0xC4A0_5EED,
        keep: false,
    };
    let mut it = args.into_iter();
    let number = |flag: &str, text: &str| -> Result<u64, String> {
        text.parse()
            .map_err(|_| format!("{flag}: invalid number `{text}`"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => {
                let n = it.next().ok_or("--trials requires a number")?;
                parsed.trials = number("--trials", &n)?;
            }
            _ if arg.starts_with("--trials=") => {
                parsed.trials = number("--trials", &arg["--trials=".len()..])?;
            }
            "--fs-trials" => {
                let n = it.next().ok_or("--fs-trials requires a number")?;
                parsed.fs_trials = number("--fs-trials", &n)?;
            }
            _ if arg.starts_with("--fs-trials=") => {
                parsed.fs_trials = number("--fs-trials", &arg["--fs-trials=".len()..])?;
            }
            "--seed" => {
                let n = it.next().ok_or("--seed requires a number")?;
                parsed.seed = number("--seed", &n)?;
            }
            _ if arg.starts_with("--seed=") => {
                parsed.seed = number("--seed", &arg["--seed=".len()..])?;
            }
            "--smoke" => {
                parsed.trials = 8;
                parsed.fs_trials = 4;
            }
            "--tiny" => parsed.scale = ReproScale::Tiny,
            "--quick" => parsed.scale = ReproScale::Quick,
            "--keep" => parsed.keep = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

/// Artefact files the reproduction emits (mirrors the harness emit list).
fn is_artefact(name: &str) -> bool {
    name.ends_with(".tsv") || name == "SUMMARY.txt" || name == "plot.gp"
}

fn read_artefacts(outdir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(outdir)
        .into_iter()
        .flatten()
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            is_artefact(&name).then(|| {
                let bytes = fs::read(e.path()).unwrap_or_default();
                (name, bytes)
            })
        })
        .collect();
    files.sort();
    files
}

/// Runs `repro_all` in `dir` (artefacts land in `dir/results/`), with
/// stdout/stderr teed to log files for post-mortem. Returns the exit
/// status, or `Err` on spawn failure / hang.
fn run_child(exe: &Path, dir: &Path, scale: ReproScale, verify: bool) -> Result<bool, String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let log = |name: &str| -> Stdio {
        // htpb-lint: allow(fs/choke-point) -- live child Stdio handle, not a durable artefact; atomicity is meaningless for a tee'd log
        fs::File::create(dir.join(name)).map_or_else(|_| Stdio::null(), Stdio::from)
    };
    let mut cmd = Command::new(exe);
    cmd.arg(scale_flag(scale))
        .args(["--jobs", "2", "--resume"])
        .current_dir(dir)
        .stdout(log("stdout.log"))
        .stderr(log("stderr.log"));
    if verify {
        cmd.arg("--verify");
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawning child: {e}"))?;
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().map_err(|e| e.to_string())? {
            return Ok(status.success());
        }
        if start.elapsed() > CHILD_TIMEOUT {
            let _ = child.kill();
            let _ = child.wait();
            return Err("child exceeded wall-clock guard".into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Spawns the child and SIGKILLs it once its journal reaches `offset`
/// bytes. Returns whether the child was actually killed (it may finish
/// first if the offset lands past the end of the run).
fn run_child_killed_at(
    exe: &Path,
    dir: &Path,
    scale: ReproScale,
    offset: u64,
) -> Result<bool, String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let log = |name: &str| -> Stdio {
        // htpb-lint: allow(fs/choke-point) -- live child Stdio handle, not a durable artefact; atomicity is meaningless for a tee'd log
        fs::File::create(dir.join(name)).map_or_else(|_| Stdio::null(), Stdio::from)
    };
    let mut child = Command::new(exe)
        .arg(scale_flag(scale))
        .args(["--jobs", "2", "--resume"])
        .current_dir(dir)
        .stdout(log("stdout.log"))
        .stderr(log("stderr.log"))
        .spawn()
        .map_err(|e| format!("spawning child: {e}"))?;
    let journal = dir.join("results").join("journal.jsonl");
    let start = Instant::now();
    loop {
        if let Some(_status) = child.try_wait().map_err(|e| e.to_string())? {
            return Ok(false); // finished before the kill point
        }
        if start.elapsed() > CHILD_TIMEOUT {
            let _ = child.kill();
            let _ = child.wait();
            return Err("child exceeded wall-clock guard".into());
        }
        let len = fs::metadata(&journal).map_or(0, |m| m.len());
        if len >= offset {
            child.kill().map_err(|e| format!("kill: {e}"))?;
            let _ = child.wait();
            return Ok(true);
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

fn scale_flag(scale: ReproScale) -> &'static str {
    match scale {
        ReproScale::Quick => "--quick",
        _ => "--tiny",
    }
}

/// Assertion (b): once a job is journalled `job_done ok:true cached:true`
/// (its result durably committed to the cache), no later epoch may start
/// it again. Returns the violating job ids.
fn recomputed_committed_jobs(events: &[Value]) -> Vec<String> {
    let mut committed: Vec<(String, i64)> = Vec::new();
    for e in events {
        let done = matches!(
            e.get("event").and_then(Value::as_str),
            Some("job_done" | "job")
        );
        let ok = matches!(e.get("ok"), Some(Value::Bool(true)));
        let cached = matches!(e.get("cached"), Some(Value::Bool(true)));
        if done && ok && cached {
            if let Some(id) = e.get("id").and_then(Value::as_str) {
                let epoch = e.get("epoch").and_then(Value::as_i64).unwrap_or(1);
                if !committed.iter().any(|(i, _)| i == id) {
                    committed.push((id.to_string(), epoch));
                }
            }
        }
    }
    let mut violations = Vec::new();
    for e in events {
        if e.get("event").and_then(Value::as_str) != Some("job_start") {
            continue;
        }
        let (Some(id), Some(epoch)) = (
            e.get("id").and_then(Value::as_str),
            e.get("epoch").and_then(Value::as_i64),
        ) else {
            continue;
        };
        if committed
            .iter()
            .any(|(i, committed_epoch)| i == id && epoch > *committed_epoch)
            && !violations.iter().any(|v| v == id)
        {
            violations.push(id.to_string());
        }
    }
    violations
}

/// One SIGKILL trial. Returns a failure description, or `None` on pass.
fn kill_trial(
    exe: &Path,
    dir: &Path,
    scale: ReproScale,
    offset: u64,
    reference: &[(String, Vec<u8>)],
) -> Option<String> {
    let killed = match run_child_killed_at(exe, dir, scale, offset) {
        Ok(killed) => killed,
        Err(e) => return Some(format!("interrupted run: {e}")),
    };
    // Resume; the child re-runs only uncommitted work and re-verifies
    // every artefact digest against the journal before exiting.
    match run_child(exe, dir, scale, true) {
        Ok(true) => {}
        Ok(false) => return Some("resumed run exited non-zero".into()),
        Err(e) => return Some(format!("resumed run: {e}")),
    }
    let outdir = dir.join("results");
    // (a) byte-identical artefacts.
    let artefacts = read_artefacts(&outdir);
    let names =
        |set: &[(String, Vec<u8>)]| -> Vec<String> { set.iter().map(|(n, _)| n.clone()).collect() };
    if names(&artefacts) != names(reference) {
        return Some(format!(
            "artefact sets differ: {:?} vs reference {:?}",
            names(&artefacts),
            names(reference)
        ));
    }
    for ((name, bytes), (_, expected)) in artefacts.iter().zip(reference) {
        if bytes != expected {
            return Some(format!("artefact {name} differs from the reference run"));
        }
    }
    // (c) the journal replays; at most the killed append is torn.
    let (events, corrupt) = match Journal::read_events_stats(&outdir.join("journal.jsonl")) {
        Ok(stats) => stats,
        Err(e) => return Some(format!("journal unreadable after resume: {e}")),
    };
    let allowed = usize::from(killed);
    if corrupt > allowed {
        return Some(format!(
            "{corrupt} corrupt journal records (at most {allowed} torn tail expected)"
        ));
    }
    // (b) committed jobs are never recomputed.
    let violations = recomputed_committed_jobs(&events);
    if !violations.is_empty() {
        return Some(format!(
            "committed jobs re-executed after resume: {violations:?}"
        ));
    }
    None
}

/// One in-process fault-injection trial: run a small campaign over a
/// [`FaultyFs`] that fails one seed-derived operation, then re-run clean
/// and require full convergence.
fn fs_trial(dir: &Path, seed: u64, trial: u64, jobs: &[JobSpec]) -> Option<String> {
    let fault = match trial % 3 {
        0 => FsFault::Enospc,
        1 => FsFault::ShortWrite {
            keep: (trial % 7) as usize,
        },
        _ => FsFault::FailRename,
    };
    let op = fnv1a64_parts(&[&seed.to_string(), "fsop", &trial.to_string()]) % 40;
    let faulty: Arc<FaultyFs> = Arc::new(FaultyFs::new(std_fs(), vec![(op, fault)]));
    let cache_dir = dir.join(".cache");
    let faulted_opts = RunOptions {
        workers: 2,
        cache: ResultCache::open_with_fs(&cache_dir, faulty.clone()).ok(),
        ..RunOptions::sequential()
    };
    // The faulted pass may fail anywhere (including while opening the
    // campaign); whatever it leaves behind must not poison the clean pass.
    if let Ok(campaign) = Campaign::start("chaos_fs", dir, jobs, &faulted_opts, faulty, vec![]) {
        let reports = campaign.execute(jobs, &faulted_opts);
        campaign.finish(reports.iter().all(|r| r.output.is_ok()), vec![]);
    }
    let clean_opts = RunOptions {
        workers: 2,
        cache: match ResultCache::open_with_fs(&cache_dir, std_fs()) {
            Ok(cache) => Some(cache),
            Err(e) => return Some(format!("clean cache open failed: {e}")),
        },
        ..RunOptions::sequential()
    };
    let campaign = match Campaign::start("chaos_fs", dir, jobs, &clean_opts, std_fs(), vec![]) {
        Ok(c) => c,
        Err(e) => return Some(format!("clean campaign open failed: {e}")),
    };
    let reports = campaign.execute(jobs, &clean_opts);
    campaign.finish(true, vec![]);
    for (report, spec) in reports.iter().zip(jobs) {
        match &report.output {
            Err(e) => return Some(format!("{} failed on the clean pass: {e}", spec.id())),
            Ok(output) if *output != spec.execute() => {
                return Some(format!(
                    "{} converged to a wrong result after fault {fault:?}@op{op}",
                    spec.id()
                ));
            }
            Ok(_) => {}
        }
    }
    let (events, corrupt) = match Journal::read_events_stats(&dir.join("journal.jsonl")) {
        Ok(stats) => stats,
        Err(e) => return Some(format!("journal unreadable: {e}")),
    };
    if corrupt > 1 {
        return Some(format!("{corrupt} corrupt journal records from one fault"));
    }
    let violations = recomputed_committed_jobs(&events);
    if !violations.is_empty() {
        return Some(format!("committed jobs re-executed: {violations:?}"));
    }
    None
}

fn fail_trial(dir: &Path, label: &str, why: &str) -> ExitCode {
    let report = format!(
        "chaos {label} FAILED: {why}\nwork dir kept for post-mortem: {}\n",
        dir.display()
    );
    let _ = htpb_harness::commit_file(
        &htpb_harness::StdFs,
        &dir.join("FAILURE.txt"),
        report.as_bytes(),
    );
    eprint!("{report}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exe = match std::env::current_exe()
        .ok()
        .and_then(|p| {
            Some(
                p.parent()?
                    .join(format!("repro_all{}", std::env::consts::EXE_SUFFIX)),
            )
        })
        .filter(|p| p.exists())
    {
        Some(exe) => exe,
        None => {
            eprintln!("chaos: repro_all binary not found next to chaos; build it first");
            return ExitCode::FAILURE;
        }
    };
    let workdir = Path::new("results").join("chaos");
    let _ = fs::remove_dir_all(&workdir);
    if let Err(e) = fs::create_dir_all(&workdir) {
        eprintln!("chaos: creating {}: {e}", workdir.display());
        return ExitCode::FAILURE;
    }

    // Uninterrupted reference run: the ground truth every crashed-and-
    // resumed trial must be byte-identical to.
    eprintln!("[chaos] reference run ({})...", scale_flag(args.scale));
    let refdir = workdir.join("reference");
    match run_child(&exe, &refdir, args.scale, true) {
        Ok(true) => {}
        Ok(false) => return fail_trial(&refdir, "reference", "reference run exited non-zero"),
        Err(e) => return fail_trial(&refdir, "reference", &e),
    }
    let reference = read_artefacts(&refdir.join("results"));
    if reference.is_empty() {
        return fail_trial(&refdir, "reference", "reference run produced no artefacts");
    }
    let ref_journal_len =
        fs::metadata(refdir.join("results").join("journal.jsonl")).map_or(0, |m| m.len());
    eprintln!(
        "[chaos] reference: {} artefacts, {ref_journal_len}-byte journal",
        reference.len()
    );

    let mut kills = 0u64;
    for trial in 0..args.trials {
        // Seed-derived kill point, spread past the journal's end so some
        // trials exercise the no-kill and kill-at-zero edges too.
        let span = ref_journal_len + ref_journal_len / 4 + 1;
        let offset = fnv1a64_parts(&[&args.seed.to_string(), "kill", &trial.to_string()]) % span;
        let dir = workdir.join(format!("trial-{trial:03}"));
        if let Some(why) = kill_trial(&exe, &dir, args.scale, offset, &reference) {
            return fail_trial(&dir, &format!("kill trial {trial} (offset {offset})"), &why);
        }
        kills += 1;
        eprintln!("[chaos] kill trial {trial}: offset {offset} ok");
        if !args.keep {
            let _ = fs::remove_dir_all(&dir);
        }
    }

    // In-process filesystem fault battery over a cheap job subset.
    let plan = ReproPlan::plan(ReproScale::Tiny);
    let jobs: Vec<JobSpec> = plan
        .jobs
        .iter()
        .filter(|j| matches!(j, JobSpec::Fig3Point { .. }))
        .take(4)
        .cloned()
        .collect();
    for trial in 0..args.fs_trials {
        let dir = workdir.join(format!("fs-trial-{trial:03}"));
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("chaos: creating {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        if let Some(why) = fs_trial(&dir, args.seed, trial, &jobs) {
            return fail_trial(&dir, &format!("fs trial {trial}"), &why);
        }
        eprintln!("[chaos] fs trial {trial} ok");
        if !args.keep {
            let _ = fs::remove_dir_all(&dir);
        }
    }

    if !args.keep {
        let _ = fs::remove_dir_all(workdir.join("reference"));
    }
    eprintln!(
        "[chaos] PASS: {kills} SIGKILL trials + {} fault-injection trials, \
         artefacts byte-identical, no committed job recomputed, journal intact",
        args.fs_trials
    );
    ExitCode::SUCCESS
}
