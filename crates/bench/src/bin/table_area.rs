//! Regenerates the **Section III-D** area/power accounting: one Trojan vs.
//! one DSENT router, and the 60-Trojan 512-node chip-level totals.
//!
//! These are the paper's stealth numbers and are reproduced exactly — they
//! are arithmetic over the recorded synthesis constants.

#![forbid(unsafe_code)]

use htpb_bench::banner;
use htpb_core::{AreaReport, HT_AREA_UM2, HT_POWER_UW, ROUTER_AREA_UM2, ROUTER_POWER_UW};

fn main() {
    banner("Section III-D", "HT area & power vs. router");
    println!("constants (Synopsys DC 45nm TSMC / DSENT):");
    println!("  HT area      = {HT_AREA_UM2} um^2");
    println!("  HT power     = {HT_POWER_UW} uW");
    println!("  router area  = {ROUTER_AREA_UM2} um^2");
    println!("  router power = {ROUTER_POWER_UW} uW");
    println!();

    println!("| config          | HT area (um^2) | HT power (uW) | area % of routers | power % of routers |");
    println!("|-----------------|----------------|---------------|-------------------|--------------------|");
    for (label, hts, routers) in [
        ("1 HT / 1 router ", 1usize, 1usize),
        ("60 HTs / 512 chip", 60, 512),
    ] {
        let r = AreaReport::new(hts, routers);
        println!(
            "| {label} | {:>14.4} | {:>13.4} | {:>16.4}% | {:>17.5}% |",
            r.trojan_area_um2(),
            r.trojan_power_uw(),
            r.area_fraction() * 100.0,
            r.power_fraction() * 100.0,
        );
    }
    println!();
    println!("paper: 1 HT is ~0.017% of a router's area and ~0.0017% of its power;");
    println!("       60 HTs are ~730.296 um^2 / 33.0108 uW, ~0.002% / ~0.0002% of a 512-node chip's routers.");

    // Exact-match verification (these are recorded constants, so the
    // reproduction must agree to the printed precision).
    let one = AreaReport::new(1, 1);
    assert!((one.area_fraction() * 100.0 - 0.017).abs() < 0.001);
    let chip = AreaReport::new(60, 512);
    assert!((chip.trojan_area_um2() - 730.296).abs() < 1e-3);
    assert!((chip.trojan_power_uw() - 33.0108).abs() < 1e-4);
    println!("verified: all Section III-D figures match.");
}
