//! Fits the **Eq. 9** linear attack-effect model on a measured dataset:
//!
//! `Q ≈ a₁ρ + a₂η + a₃m + Σ b_j Φ_γj + Σ c_k Φ_δk + a₀`
//!
//! The dataset sweeps Trojan placements (varying ρ, η and m) across all
//! four Table-III mixes (varying the sensitivity sums), measures Q in the
//! full simulator for each configuration, and reports the fitted
//! coefficients with the training R².
//!
//! Expected signs (Section IV-B): a₁ < 0 (farther virtual center → weaker
//! attack), a₃ > 0 (more Trojans → stronger attack).

#![forbid(unsafe_code)]

use htpb_bench::{banner, timed};
use htpb_core::{
    regression_dataset, AttackModel, CampaignConfig, ManagerLocation, Mesh2d, Mix, Placement,
    PlacementStrategy,
};

fn main() {
    banner("Eq. 9", "linear attack-effect regression");
    // A 128-node platform keeps the 48-campaign dataset affordable while
    // preserving the spatial dynamics the model regresses over.
    let mut base = CampaignConfig::new(Mix::Mix1);
    base.nodes = 128;
    let mesh = Mesh2d::with_nodes(base.nodes).expect("mesh");
    let manager = ManagerLocation::Center.resolve(mesh);

    // Placement variants spanning (rho, eta, m).
    let mut placements = Vec::new();
    for m in [4usize, 8, 16] {
        // Clusters at increasing distance from the manager.
        for anchor in [manager, htpb_core::NodeId(24), htpb_core::NodeId(0)] {
            placements.push(Placement::generate(
                mesh,
                m,
                &PlacementStrategy::ClusterAround { anchor },
                &[manager],
            ));
        }
        // One random scatter (high eta).
        placements.push(Placement::generate(
            mesh,
            m,
            &PlacementStrategy::Random { seed: m as u64 },
            &[manager],
        ));
    }
    println!(
        "dataset: {} placements x {} mixes = {} simulated campaigns",
        placements.len(),
        Mix::ALL.len(),
        placements.len() * Mix::ALL.len()
    );

    let samples = timed("simulate dataset", || {
        regression_dataset(&base, &Mix::ALL, &placements)
    });
    println!("\n# rho\teta\tm\tphiV\tphiA\tQ");
    for s in &samples {
        println!(
            "{:.2}\t{:.2}\t{:.0}\t{:.2}\t{:.2}\t{:.3}",
            s.rho, s.eta, s.m, s.phi_victims, s.phi_attackers, s.q
        );
    }

    let model = AttackModel::fit(&samples).expect("dataset is well-conditioned");
    println!("\nfitted Eq. 9 coefficients:");
    println!("  a0 (intercept)      = {:+.4}", model.a0());
    println!("  a1 (rho)            = {:+.4}", model.a1_rho());
    println!("  a2 (eta)            = {:+.4}", model.a2_eta());
    println!("  a3 (m)              = {:+.4}", model.a3_m());
    println!("  b  (sum phi victims)  = {:+.4}", model.b_phi_victims());
    println!("  c  (sum phi attackers)= {:+.4}", model.c_phi_attackers());
    println!("  R^2                 = {:.4}", model.r2());
    println!();
    println!(
        "shape: a1 < 0 (distance hurts) = {}; a3 > 0 (more HTs help) = {}",
        model.a1_rho() < 0.0,
        model.a3_m() > 0.0
    );
}
