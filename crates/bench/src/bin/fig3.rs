//! Regenerates **Fig. 3** of the paper: infection rate vs. number of
//! randomly placed hardware Trojans, for the global manager at the chip's
//! center vs. at one corner, on 64-node (a) and 512-node (b) chips.
//!
//! Paper shapes to reproduce:
//! - infection rate rises monotonically with the number of HTs;
//! - the corner-manager curve sits above the center-manager curve (the
//!   paper reports >20% higher beyond ~10 HTs) because requests travel
//!   farther and cross more routers.
//!
//! Points are computed as independent harness jobs; `--jobs N` parallelises
//! them, `--no-cache` / `--resume` control `results/.cache/` reuse.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use htpb_bench::{banner, timed_stage};
use htpb_core::{fig3_label, ManagerLocation, Series};
use htpb_harness::{cache_for, std_fs, Campaign, HarnessArgs, JobOutput, JobSpec, RunOptions};

fn counts_for(nodes: u32) -> Vec<usize> {
    // Paper: 0..30 HTs for 64 nodes, 0..60 for 512.
    let max = if nodes <= 64 { 30 } else { 60 };
    (0..=max).step_by(5).collect()
}

fn main() -> ExitCode {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(args) if args.rest.is_empty() => args,
        Ok(args) => {
            eprintln!("fig3: unknown flag `{}`", args.rest[0]);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("fig3: {e}");
            return ExitCode::FAILURE;
        }
    };
    banner(
        "Fig. 3",
        "infection rate vs. #HTs, manager at center vs. corner",
    );
    let outdir = Path::new("results");
    let opts = RunOptions {
        workers: args.workers(),
        cache: match cache_for(outdir, args.use_cache) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("fig3: opening cache: {e}");
                return ExitCode::FAILURE;
            }
        },
        // Fig. 3 points have no campaign baseline to share.
        baselines: None,
        progress: true,
        job_timeout: args.job_timeout(),
        retries: args.retries,
        retry_seed: args.retry_seed,
        retry_base_ms: args.retry_base_ms,
    };

    let seeds: Vec<u64> = (0..8).collect();
    let sizes = [64u32, 512];
    // One job per (size, location, count); order matches assembly below.
    let mut jobs = Vec::new();
    for &nodes in &sizes {
        for corner in [false, true] {
            for ht_count in counts_for(nodes) {
                jobs.push(JobSpec::Fig3Point {
                    nodes,
                    corner,
                    ht_count,
                    seeds: seeds.clone(),
                });
            }
        }
    }
    // Campaign::start recovers from a crashed prior run: started-but-died
    // jobs are distrusted and re-executed, committed ones come from cache.
    let campaign = match Campaign::start("fig3", outdir, &jobs, &opts, std_fs(), vec![]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fig3: opening campaign: {e}");
            return ExitCode::FAILURE;
        }
    };
    let journal = campaign.journal();
    let reports = campaign.execute(&jobs, &opts);
    if reports.iter().any(|r| r.output.is_err()) {
        campaign.finish(false, vec![]);
        eprintln!("fig3: a job failed; see results/journal.jsonl");
        return ExitCode::FAILURE;
    }

    let mut next = 0usize;
    let mut curve = |nodes: u32, corner: bool| -> Series {
        let loc = if corner {
            ManagerLocation::Corner
        } else {
            ManagerLocation::Center
        };
        let mut s = Series::new(fig3_label(loc));
        for m in counts_for(nodes) {
            let JobOutput::Rate(rate) = reports[next].expect_output() else {
                unreachable!("fig3 jobs produce rates")
            };
            s.push(m as f64, *rate);
            next += 1;
        }
        s
    };
    for (panel, nodes) in [("(a)", 64u32), ("(b)", 512u32)] {
        let (center, corner) = timed_stage(
            Some(journal),
            &format!("fig3 panel {panel} ({nodes} nodes)"),
            || (curve(nodes, false), curve(nodes, true)),
        );
        println!("\n--- Fig. 3 {panel}: system size = {nodes} ---");
        print!("{}", center.to_table());
        print!("{}", corner.to_table());

        // Shape checks.
        let mono = center.is_monotonic_nondecreasing() && corner.is_monotonic_nondecreasing();
        println!("shape: monotonic-in-#HTs = {mono}");
        let advantage: Vec<f64> = center
            .points
            .iter()
            .zip(&corner.points)
            .filter(|((_, c), _)| *c > 0.0)
            .map(|((_, c), (_, k))| k / c - 1.0)
            .collect();
        if let Some(max_adv) = advantage
            .iter()
            .cloned()
            .fold(None::<f64>, |a, b| Some(a.map_or(b, |a| a.max(b))))
        {
            println!(
                "shape: corner manager advantage up to {:+.0}% (paper: >20% beyond ~10 HTs)",
                max_adv * 100.0
            );
        }
    }
    campaign.finish(true, vec![]);
    ExitCode::SUCCESS
}
