//! Regenerates **Fig. 3** of the paper: infection rate vs. number of
//! randomly placed hardware Trojans, for the global manager at the chip's
//! center vs. at one corner, on 64-node (a) and 512-node (b) chips.
//!
//! Paper shapes to reproduce:
//! - infection rate rises monotonically with the number of HTs;
//! - the corner-manager curve sits above the center-manager curve (the
//!   paper reports >20% higher beyond ~10 HTs) because requests travel
//!   farther and cross more routers.

use htpb_bench::{banner, timed};
use htpb_core::{fig3_series, ManagerLocation, Series};

fn counts_for(nodes: u32) -> Vec<usize> {
    // Paper: 0..30 HTs for 64 nodes, 0..60 for 512.
    let max = if nodes <= 64 { 30 } else { 60 };
    (0..=max).step_by(5).collect()
}

fn run_panel(nodes: u32, seeds: &[u64]) -> (Series, Series) {
    let counts = counts_for(nodes);
    let center = fig3_series(nodes, ManagerLocation::Center, &counts, seeds);
    let corner = fig3_series(nodes, ManagerLocation::Corner, &counts, seeds);
    (center, corner)
}

fn main() {
    banner(
        "Fig. 3",
        "infection rate vs. #HTs, manager at center vs. corner",
    );
    let seeds: Vec<u64> = (0..8).collect();
    for (panel, nodes) in [("(a)", 64u32), ("(b)", 512u32)] {
        let (center, corner) = timed(&format!("panel {panel} ({nodes} nodes)"), || {
            run_panel(nodes, &seeds)
        });
        println!("\n--- Fig. 3 {panel}: system size = {nodes} ---");
        print!("{}", center.to_table());
        print!("{}", corner.to_table());

        // Shape checks.
        let mono = center.is_monotonic_nondecreasing() && corner.is_monotonic_nondecreasing();
        println!("shape: monotonic-in-#HTs = {mono}");
        let advantage: Vec<f64> = center
            .points
            .iter()
            .zip(&corner.points)
            .filter(|((_, c), _)| *c > 0.0)
            .map(|((_, c), (_, k))| k / c - 1.0)
            .collect();
        if let Some(max_adv) = advantage.iter().cloned().fold(None::<f64>, |a, b| {
            Some(a.map_or(b, |a| a.max(b)))
        }) {
            println!(
                "shape: corner manager advantage up to {:+.0}% (paper: >20% beyond ~10 HTs)",
                max_adv * 100.0
            );
        }
    }
}
