//! Differential-conformance driver: replays the checked-in regression
//! corpus, then sweeps random scenarios through the optimized network and
//! the dense reference oracle in lock-step.
//!
//! Every divergence is shrunk to a minimal replayable spec, printed, and
//! appended to `results/conformance_failures.txt` so CI can upload the
//! artifact; the process exits non-zero if anything diverged.
//!
//! The random sweep dispatches [`JobSpec::Conformance`] batches through the
//! harness worker pool, so campaigns get the same journalling, retry and
//! parallelism machinery as every other experiment job.
//!
//! Usage: `conformance [--smoke] [--scenarios N] [--seed S] [--jobs N] [--out DIR] [--metrics]`
//!   --smoke        200 scenarios (CI budget, well under a minute in release)
//!   --scenarios N  explicit scenario count (default 1000)
//!   --seed S       master seed (default 0x5EED)
//!   --jobs N       worker threads for the random sweep (default 1)
//!   --out DIR      output directory for the failure artifact (default results)
//!   --metrics      collect runtime metrics and print the stderr summary
//!
//! Independently of `--metrics`, every corpus replay also runs the
//! metrics-identity oracle: the scenario re-executes with live NoC metrics
//! on and its fingerprints must equal the metrics-off ones (the
//! observability layer's non-perturbation contract, docs/OBSERVABILITY.md).

#![forbid(unsafe_code)]

use std::path::PathBuf;

use htpb_harness::{run_jobs, JobOutput, JobSpec, Journal, RunOptions};
use htpb_testkit::{run_differential, run_metrics_identity, DiffConfig, Scenario};

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics = args.iter().any(|a| a == "--metrics");
    htpb_obs::set_enabled(metrics);
    let count: u64 = parse_flag(&args, "--scenarios")
        .map(|v| v.parse().expect("--scenarios wants a number"))
        .unwrap_or(if smoke { 200 } else { 1000 });
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|v| {
            let v = v.strip_prefix("0x").unwrap_or(&v);
            u64::from_str_radix(v, 16)
                .or_else(|_| v.parse())
                .expect("--seed wants a number")
        })
        .unwrap_or(0x5EED);
    let workers: usize = parse_flag(&args, "--jobs")
        .map(|v| v.parse().expect("--jobs wants a number"))
        .unwrap_or(1)
        .max(1);
    let outdir = PathBuf::from(parse_flag(&args, "--out").unwrap_or_else(|| "results".into()));

    let config = DiffConfig::default();
    let mut failures: Vec<(String, String)> = Vec::new();

    // Phase 1: the regression corpus — every shrunk failure ever found.
    // Each scenario replays through the differential oracle AND through the
    // metrics-identity oracle (metrics-on vs metrics-off fingerprints must
    // be bit-identical — the observability layer's non-perturbation
    // contract).
    let corpus = include_str!("../../../testkit/corpus/conformance.txt");
    let mut corpus_n = 0u64;
    for line in corpus.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        corpus_n += 1;
        let scenario = match Scenario::from_spec(line) {
            Ok(s) => s,
            Err(e) => {
                failures.push((
                    line.to_string(),
                    format!("corpus spec failed to parse: {e}"),
                ));
                continue;
            }
        };
        if let Some(d) = run_differential(&scenario, &config) {
            failures.push((line.to_string(), format!("corpus replay diverged: {d}")));
        }
        if let Some(why) = run_metrics_identity(&scenario, &config) {
            failures.push((line.to_string(), format!("metrics identity broken: {why}")));
        }
    }
    println!("corpus: {corpus_n} scenarios, {} failures", failures.len());

    // Phase 2: random sweep as harness jobs. Scenario i of the sweep uses
    // seed + i regardless of chunking, so any worker count explores the
    // identical scenario set; each job shrinks its own divergences.
    const CHUNK: u64 = 100;
    let jobs: Vec<JobSpec> = (0..count)
        .step_by(CHUNK as usize)
        .map(|offset| JobSpec::Conformance {
            scenarios: CHUNK.min(count - offset),
            seed: seed.wrapping_add(offset),
        })
        .collect();
    let opts = RunOptions {
        workers,
        ..RunOptions::sequential()
    };
    let mut passed = 0u64;
    for report in run_jobs(&jobs, &opts, &Journal::disabled()) {
        match report.output {
            Ok(JobOutput::Conformance {
                passed: p,
                failures: shrunk,
            }) => {
                passed += p;
                for spec in shrunk {
                    let detail = run_differential(
                        &Scenario::from_spec(&spec).expect("job outputs valid specs"),
                        &config,
                    )
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "shrunk scenario stopped reproducing".to_string());
                    eprintln!("divergence (job {}): {spec}\n  {detail}", report.spec.id());
                    failures.push((spec, detail));
                }
            }
            Ok(other) => failures.push((
                report.spec.id(),
                format!("conformance job returned wrong output variant: {other:?}"),
            )),
            Err(e) => failures.push((report.spec.id(), format!("conformance job crashed: {e}"))),
        }
    }
    println!("random sweep: {passed}/{count} scenarios agreed (seed {seed:#x})");

    if metrics {
        eprint!("{}", htpb_harness::obs::summary_text());
    }
    if failures.is_empty() {
        println!("conformance: PASS");
        return;
    }
    std::fs::create_dir_all(&outdir).expect("create output dir");
    let path = outdir.join("conformance_failures.txt");
    let mut doc = format!(
        "# Shrunk divergence specs (seed {seed:#x}, {count} scenarios).\n\
         # Replay: add the spec line to crates/testkit/corpus/conformance.txt\n\
         # or feed it to Scenario::from_spec; see docs/TESTING.md.\n"
    );
    for (spec, detail) in &failures {
        doc.push_str(&format!("{spec}\n# ^ {detail}\n"));
    }
    htpb_harness::commit_file(&htpb_harness::StdFs, &path, doc.as_bytes())
        .expect("write failure artifact");
    eprintln!(
        "conformance: FAIL — {} divergences, specs written to {}",
        failures.len(),
        path.display()
    );
    std::process::exit(1);
}
