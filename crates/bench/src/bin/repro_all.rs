//! One-shot reproduction harness: regenerates **every** table and figure of
//! the paper and writes each artefact's series to `results/<artefact>.tsv`,
//! plus a `results/SUMMARY.txt` with the shape checks.
//!
//! Usage:
//! `cargo run --release -p htpb-bench --bin repro_all [-- FLAGS]`
//!
//! - `--quick`      shrink the platforms (64 nodes, fewer seeds) for a fast
//!   smoke-reproduction (~1 min); default is paper scale;
//! - `--tiny`       seconds-scale smoke run (integration-test scale);
//! - `--jobs N`     run experiment points on N worker threads (default: one
//!   per core; deterministic — parallel output is byte-identical to
//!   sequential);
//! - `--no-cache`   recompute every point, ignore `results/.cache/`;
//! - `--resume`     reuse cached points (the default) — an interrupted or
//!   crashed run picks up where it left off: jobs the journal shows as
//!   started-but-died are distrusted and re-run, committed ones are served
//!   from cache, and the final artefacts are byte-identical to an
//!   uninterrupted run;
//! - `--verify`     after the run, re-checksum every emitted artefact
//!   against the digests recorded in the journal; exit non-zero on any
//!   mismatch;
//! - `--sequential` bypass the job pool and run the legacy whole-series
//!   drivers in order (reference path, no cache);
//! - `--metrics`    collect runtime metrics (`htpb-obs`): writes
//!   `results/metrics.prom`, embeds a JSON snapshot in the journal's
//!   `run_end` record and prints a summary block on stderr. Proven not to
//!   perturb the simulation (see `docs/OBSERVABILITY.md`).
//!
//! Every run appends framed, checksummed per-job lifecycle events and
//! per-stage timings to `results/journal.jsonl` (see
//! `docs/CRASH_SAFETY.md`).

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use htpb_harness::{
    cache_for, run_repro, run_repro_sequential, verify_artefacts, HarnessArgs, ReproScale,
    RunOptions,
};

fn main() -> ExitCode {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("repro_all: {e}");
            return ExitCode::FAILURE;
        }
    };
    htpb_obs::set_enabled(args.metrics);
    let mut scale = ReproScale::Paper;
    let mut sequential = false;
    let mut verify = false;
    for arg in &args.rest {
        match arg.as_str() {
            "--quick" => scale = ReproScale::Quick,
            "--tiny" => scale = ReproScale::Tiny,
            "--sequential" => sequential = true,
            "--verify" => verify = true,
            other => {
                eprintln!("repro_all: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let outdir = Path::new("results");
    let result = if sequential {
        run_repro_sequential(scale, outdir)
    } else {
        let opts = RunOptions {
            workers: args.workers(),
            cache: match cache_for(outdir, args.use_cache) {
                Ok(cache) => cache,
                Err(e) => {
                    eprintln!("repro_all: opening cache: {e}");
                    return ExitCode::FAILURE;
                }
            },
            // Sweep/opt/regression jobs share one clean baseline per
            // campaign config; with --cache the baselines persist next to
            // the result cache, so warm re-runs skip them entirely.
            baselines: Some(std::sync::Arc::new(if args.use_cache {
                htpb_harness::BaselineCache::with_dir(outdir.join(".cache"))
            } else {
                htpb_harness::BaselineCache::in_memory()
            })),
            progress: true,
            job_timeout: args.job_timeout(),
            retries: args.retries,
            retry_seed: args.retry_seed,
            retry_base_ms: args.retry_base_ms,
        };
        run_repro(scale, outdir, &opts)
    };
    let run_ok = match result {
        Ok(outcome) if outcome.failed == 0 => {
            if outcome.jobs > 0 {
                eprintln!(
                    "[harness] {} jobs, {} from cache",
                    outcome.jobs, outcome.cache_hits
                );
                eprintln!(
                    "[harness] baselines: {} shared, {} computed",
                    outcome.baseline_hits, outcome.baseline_misses
                );
            }
            true
        }
        Ok(outcome) => {
            eprintln!(
                "repro_all: {} job(s) failed; see results/journal.jsonl",
                outcome.failed
            );
            false
        }
        Err(e) => {
            eprintln!("repro_all: {e}");
            false
        }
    };
    if args.metrics {
        eprint!("{}", htpb_harness::obs::summary_text());
    }
    if verify {
        match verify_artefacts(outdir) {
            Ok(report) if report.ok() => {
                eprintln!(
                    "[harness] verify: {} artefact(s) match their journalled digests",
                    report.verified
                );
            }
            Ok(report) => {
                for m in &report.mismatches {
                    eprintln!("repro_all: verify: {m}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("repro_all: verify: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if run_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
