//! One-shot reproduction harness: regenerates **every** table and figure of
//! the paper in sequence and writes each artefact's series to
//! `results/<artefact>.tsv`, plus a `results/SUMMARY.txt` with the shape
//! checks. Equivalent to running all the `fig*`/`table_*`/`opt_*`/
//! `regression` binaries, sharing compiled state and a single process.
//!
//! Usage: `cargo run --release -p htpb-bench --bin repro_all [-- --quick]`
//!
//! `--quick` shrinks the platforms (64 nodes, fewer seeds) for a fast
//! smoke-reproduction (~1 min); the default regenerates at paper scale.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use htpb_bench::timed;
use htpb_core::{
    attack_sweep, fig3_series, fig4_series, optimal_vs_random, regression_dataset, AreaReport,
    AttackModel, CampaignConfig, ManagerLocation, Mesh2d, Mix, Placement, PlacementStrategy,
    Series,
};

struct Harness {
    quick: bool,
    outdir: &'static str,
    summary: String,
}

impl Harness {
    fn note(&mut self, line: impl AsRef<str>) {
        println!("{}", line.as_ref());
        self.summary.push_str(line.as_ref());
        self.summary.push('\n');
    }

    fn write_series(&self, name: &str, series: &[Series]) {
        let mut out = String::new();
        for s in series {
            out.push_str(&s.to_table());
        }
        let path = format!("{}/{name}.tsv", self.outdir);
        fs::write(&path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }

    fn fig3(&mut self) {
        let nodes_list: &[u32] = if self.quick { &[64] } else { &[64, 512] };
        let seeds: Vec<u64> = (0..if self.quick { 3 } else { 8 }).collect();
        for &nodes in nodes_list {
            let max = if nodes <= 64 { 30 } else { 60 };
            let counts: Vec<usize> = (0..=max).step_by(5).collect();
            let (center, corner) = timed(&format!("fig3 ({nodes} nodes)"), || {
                (
                    fig3_series(nodes, ManagerLocation::Center, &counts, &seeds),
                    fig3_series(nodes, ManagerLocation::Corner, &counts, &seeds),
                )
            });
            let corner_wins = center
                .points
                .iter()
                .zip(&corner.points)
                .skip(2)
                .all(|((_, c), (_, k))| k >= c);
            self.note(format!(
                "fig3/{nodes}: monotonic={} corner>=center(beyond 10 HTs)={}",
                center.is_monotonic_nondecreasing() && corner.is_monotonic_nondecreasing(),
                corner_wins
            ));
            self.write_series(&format!("fig3_{nodes}"), &[center, corner]);
        }
    }

    fn fig4(&mut self) {
        let sizes: &[u32] = if self.quick {
            &[64, 128]
        } else {
            &[64, 128, 256, 512]
        };
        let seeds: Vec<u64> = (0..if self.quick { 3 } else { 8 }).collect();
        for denom in [16u32, 8] {
            let series = timed(&format!("fig4 (N/{denom})"), || {
                vec![
                    fig4_series(
                        sizes,
                        "HTs around the center",
                        |_| PlacementStrategy::CenterCluster,
                        denom,
                        &seeds,
                    ),
                    fig4_series(
                        sizes,
                        "HTs distributed randomly",
                        |seed| PlacementStrategy::Random { seed },
                        denom,
                        &seeds,
                    ),
                    fig4_series(
                        sizes,
                        "HTs in one corner",
                        |_| PlacementStrategy::CornerCluster,
                        denom,
                        &seeds,
                    ),
                ]
            });
            let ordered = series[0]
                .points
                .iter()
                .zip(&series[1].points)
                .zip(&series[2].points)
                .all(|(((_, c), (_, r)), (_, k))| c >= r && r >= k);
            self.note(format!("fig4/N_{denom}: center>=random>=corner={ordered}"));
            self.write_series(&format!("fig4_n{denom}"), &series);
        }
    }

    fn fig5_fig6(&mut self) {
        let duties: Vec<f64> = (0..=9).map(|i| f64::from(i) / 10.0).collect();
        let mut peak = (0.0f64, "");
        for mix in Mix::ALL {
            let cfg = if self.quick {
                CampaignConfig::small(mix)
            } else {
                CampaignConfig::new(mix)
            };
            let points = timed(&format!("fig5/6 {}", mix.name()), || {
                attack_sweep(&cfg, &duties)
            });
            let mut q_series = Series::new(mix.name());
            let napps = points[0].outcome.changes.len();
            let mut theta_series: Vec<Series> = (0..napps)
                .map(|i| Series::new(format!("{} app{i}", mix.name())))
                .collect();
            for p in &points {
                q_series.push(p.infection, p.q_value);
                for (i, (_, _, c)) in p.outcome.changes.iter().enumerate() {
                    theta_series[i].push(p.infection, *c);
                }
            }
            if let Some(&(_, q)) = q_series.points.last() {
                if q > peak.0 {
                    peak = (q, mix.name());
                }
            }
            self.note(format!(
                "fig5 {}: Q(0.9)={:.2} monotonic={}",
                mix.name(),
                q_series.last_y().unwrap_or(0.0),
                q_series.is_monotonic_nondecreasing()
            ));
            self.write_series(&format!("fig5_{}", mix.name()), &[q_series]);
            self.write_series(&format!("fig6_{}", mix.name()), &theta_series);
        }
        self.note(format!(
            "fig5 peak Q={:.2} on {} (paper: 6.89 on mix-4)",
            peak.0, peak.1
        ));
    }

    fn table_area(&mut self) {
        let one = AreaReport::new(1, 1);
        let chip = AreaReport::new(60, 512);
        self.note(format!(
            "III-D: 1 HT = {:.4} um^2 ({:.4}% of router); 60 HTs = {:.3} um^2 / {:.4} uW",
            one.trojan_area_um2(),
            one.area_fraction() * 100.0,
            chip.trojan_area_um2(),
            chip.trojan_power_uw()
        ));
        fs::write(
            format!("{}/table_area.tsv", self.outdir),
            format!("{one}\n{chip}\n"),
        )
        .expect("write table_area");
    }

    fn opt(&mut self) {
        let seeds: Vec<u64> = (100..if self.quick { 102 } else { 105 }).collect();
        let mut rows = String::new();
        for mix in Mix::ALL {
            let cfg = if self.quick {
                CampaignConfig::small(mix)
            } else {
                CampaignConfig::new(mix)
            };
            let m = if self.quick { 8 } else { 16 };
            let cmp = timed(&format!("opt {}", mix.name()), || {
                optimal_vs_random(&cfg, m, &seeds)
            });
            self.note(format!(
                "V-C {}: Q_opt={:.2} Q_rand={:.2} improvement={:+.0}% (beats random: {})",
                mix.name(),
                cmp.q_optimal,
                cmp.q_random,
                cmp.improvement * 100.0,
                cmp.improvement > 0.0
            ));
            let _ = writeln!(
                rows,
                "{}\t{:.4}\t{:.4}\t{:.4}",
                mix.name(),
                cmp.q_optimal,
                cmp.q_random,
                cmp.improvement
            );
        }
        fs::write(format!("{}/opt_placement.tsv", self.outdir), rows).expect("write opt");
    }

    fn regression(&mut self) {
        let mut base = CampaignConfig::new(Mix::Mix1);
        base.nodes = if self.quick { 64 } else { 128 };
        let mesh = Mesh2d::with_nodes(base.nodes).expect("mesh");
        let manager = ManagerLocation::Center.resolve(mesh);
        let mut placements = Vec::new();
        let anchors = [manager, htpb_core::NodeId(mesh.nodes() as u16 / 5), htpb_core::NodeId(0)];
        for m in [4usize, 8, 16] {
            for anchor in anchors {
                placements.push(Placement::generate(
                    mesh,
                    m,
                    &PlacementStrategy::ClusterAround { anchor },
                    &[manager],
                ));
            }
            placements.push(Placement::generate(
                mesh,
                m,
                &PlacementStrategy::Random { seed: m as u64 },
                &[manager],
            ));
        }
        let mixes: &[Mix] = if self.quick {
            &[Mix::Mix1, Mix::Mix3]
        } else {
            &Mix::ALL
        };
        let samples = timed("regression dataset", || {
            regression_dataset(&base, mixes, &placements)
        });
        let model = AttackModel::fit(&samples).expect("well-conditioned dataset");
        self.note(format!(
            "Eq.9: a1(rho)={:+.3} a2(eta)={:+.3} a3(m)={:+.3} R2={:.3} (signs ok: {})",
            model.a1_rho(),
            model.a2_eta(),
            model.a3_m(),
            model.r2(),
            model.a1_rho() < 0.0 && model.a3_m() > 0.0
        ));
        let mut rows = String::from("# rho\teta\tm\tphiV\tphiA\tQ\n");
        for s in &samples {
            let _ = writeln!(
                rows,
                "{:.3}\t{:.3}\t{:.0}\t{:.3}\t{:.3}\t{:.4}",
                s.rho, s.eta, s.m, s.phi_victims, s.phi_attackers, s.q
            );
        }
        fs::write(format!("{}/regression.tsv", self.outdir), rows).expect("write regression");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let outdir = "results";
    fs::create_dir_all(outdir).expect("create results dir");
    let mut h = Harness {
        quick,
        outdir,
        summary: String::new(),
    };
    h.note(format!(
        "== full reproduction run ({}) ==",
        if quick { "quick" } else { "paper scale" }
    ));
    h.fig3();
    h.fig4();
    h.fig5_fig6();
    h.table_area();
    h.opt();
    h.regression();
    write_gnuplot(outdir);
    h.note("== done; series written to results/*.tsv (plot with gnuplot results/plot.gp) ==");
    fs::write(Path::new(outdir).join("SUMMARY.txt"), &h.summary).expect("write summary");
}

/// Emits a gnuplot script that renders every regenerated figure from the
/// TSV series into `results/figures.png`.
fn write_gnuplot(outdir: &str) {
    let script = r#"# Render the reproduced figures: gnuplot results/plot.gp
set terminal pngcairo size 1400,1000
set output 'results/figures.png'
set multiplot layout 2,3 title 'SOCC 2018 HT power-budget attack - reproduction'
set key left top
set style data linespoints

set title 'Fig. 3: infection vs #HTs (64 nodes)'
set xlabel '# hardware Trojans'
set ylabel 'infection rate'
plot 'results/fig3_64.tsv' index 0 title 'manager center',      'results/fig3_64.tsv' index 1 title 'manager corner'

set title 'Fig. 3: infection vs #HTs (512 nodes)'
plot 'results/fig3_512.tsv' index 0 title 'manager center',      'results/fig3_512.tsv' index 1 title 'manager corner'

set title 'Fig. 4: infection vs size (#HT = N/8)'
set xlabel 'system size (nodes)'
plot 'results/fig4_n8.tsv' index 0 title 'center cluster',      'results/fig4_n8.tsv' index 1 title 'random',      'results/fig4_n8.tsv' index 2 title 'corner cluster'

set title 'Fig. 5: attack effect Q vs infection'
set xlabel 'infection rate'
set ylabel 'Q'
plot 'results/fig5_mix-1.tsv' title 'mix-1',      'results/fig5_mix-2.tsv' title 'mix-2',      'results/fig5_mix-3.tsv' title 'mix-3',      'results/fig5_mix-4.tsv' title 'mix-4'

set title 'Fig. 6: per-app change (mix-1)'
set ylabel 'theta change'
plot 'results/fig6_mix-1.tsv' index 0 title 'attacker 0',      'results/fig6_mix-1.tsv' index 1 title 'attacker 1',      'results/fig6_mix-1.tsv' index 2 title 'victim 0',      'results/fig6_mix-1.tsv' index 3 title 'victim 1'

set title 'Fig. 6: per-app change (mix-4)'
plot 'results/fig6_mix-4.tsv' index 0 title 'attacker 0',      'results/fig6_mix-4.tsv' index 1 title 'attacker 1',      'results/fig6_mix-4.tsv' index 2 title 'attacker 2',      'results/fig6_mix-4.tsv' index 3 title 'victim 0'

unset multiplot
"#;
    fs::write(Path::new(outdir).join("plot.gp"), script).expect("write plot.gp");
}
