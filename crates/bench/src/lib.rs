//! Shared helpers for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion microbenches (`benches/`).
//!
//! Every binary regenerates one table or figure of the SOCC 2018 paper and
//! prints the series in a `# label` / `x<TAB>y` format plus a human-readable
//! summary of the shape checks (who wins, by what factor). Absolute numbers
//! differ from the paper — the substrate is a simulator, not the authors'
//! testbed — but the shapes are asserted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use htpb_harness::Journal;

/// Prints a standard header for a figure binary.
pub fn banner(figure: &str, what: &str) {
    println!("==========================================================");
    println!("  {figure} — {what}");
    println!("  (reproduction; expect paper-like shapes, not numbers)");
    println!("==========================================================");
}

/// Runs `f`, printing how long the regeneration took.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    timed_stage(None, label, f)
}

/// Like [`timed`], but the stage's wall time also lands in the
/// machine-readable run journal (as a `stage` event), so per-stage
/// timings can be tracked across runs.
pub fn timed_stage<T>(journal: Option<&Journal>, label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    println!("[{label}: {secs:.1}s]");
    if let Some(journal) = journal {
        journal.stage(label, secs);
    }
    out
}

/// Formats a ratio as a `+NN%` / `-NN%` string.
#[must_use]
pub fn pct(ratio: f64) -> String {
    format!("{:+.0}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(0.3), "+30%");
        assert_eq!(pct(-0.25), "-25%");
        assert_eq!(pct(1.1), "+110%");
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 42), 42);
    }

    #[test]
    fn timed_stage_lands_in_journal() {
        let path =
            std::env::temp_dir().join(format!("htpb-bench-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        assert_eq!(timed_stage(Some(&journal), "stage-x", || 7), 7);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"stage\""), "{text}");
        assert!(text.contains("\"stage-x\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
