//! Lock-free runtime metrics for the HTPB simulator stack.
//!
//! The paper's attack succeeds because the power-budgeting loop cannot *see*
//! what a Trojan does to per-tile requests and NoC occupancy; runtime
//! monitoring defenses (MacLeR-style power telemetry, Prasad et al.'s
//! packet-drop mitigation) all hinge on cheap, always-on instrumentation.
//! This crate is that instrumentation layer: a static registry of sharded
//! atomic [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, plus
//! lightweight [`span`](crate::span) timers — designed so that *observing
//! the system never changes it*.
//!
//! # The non-perturbation contract
//!
//! Three properties, each locked by tests elsewhere in the workspace:
//!
//! 1. **Bit-identical simulation.** Metric values are write-only from the
//!    simulator's point of view: nothing in any hot loop ever branches on a
//!    metric. Golden digests and the conformance oracle run with the full
//!    metric set enabled and must produce fingerprints identical to
//!    metrics-off runs.
//! 2. **Zero steady-state allocation.** All allocation happens at
//!    registration/enable time; `inc`/`add`/`observe`/`set` are plain
//!    relaxed atomic operations (`tests/alloc_regression.rs`).
//! 3. **Within the existing performance gate.** Metrics-on `noc_perf
//!    --check` must pass the same 0.75x ratio gate as metrics-off.
//!
//! # Determinism classes
//!
//! Every metric carries a [`Class`]:
//!
//! * [`Class::Sim`] — derived purely from simulation state (flits, epochs,
//!   grants). Sums of such counters commute, so aggregates are identical
//!   however many worker threads executed the jobs. **Only this class is
//!   included in the Prometheus exposition**, which is therefore
//!   byte-deterministic across `--jobs 1` vs `--jobs N`.
//! * [`Class::Timing`] — derived from wall-clock time or scheduling (job
//!   latency, queue depth, retries). Exposed in the JSON snapshot and the
//!   stderr summary, never in `metrics.prom`.
//!
//! # Exposition
//!
//! [`Snapshot::to_prom`] renders the Prometheus text format (see
//! `docs/OBSERVABILITY.md` for the grammar, locked by
//! `tests/fixtures/metrics.prom.golden`); [`Snapshot::to_json`] renders a
//! JSON object embedded in the journal's `run_end` record;
//! [`Snapshot::to_summary`] renders the human `--metrics` stderr block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod registry;
mod snapshot;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{pow2_bounds, Histogram, HistogramSnapshot};
pub use registry::{Class, Registry};
pub use snapshot::{Series, SeriesValue, Snapshot};

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether metric *collection* is globally enabled (the `--metrics` flag).
///
/// Instrumented layers consult this once at setup time (e.g. when a system
/// is built) — never per cycle — so a disabled run costs at most one
/// `Option` branch per hot-loop iteration, identical to the pre-existing
/// fault-hook discipline.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables metric collection. Flipped once at process
/// start by the `--metrics` flag; layers built afterwards pick it up.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric collection is globally enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry that `--metrics` runs collect into.
#[must_use]
pub fn global() -> &'static Registry {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
