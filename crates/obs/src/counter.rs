//! Sharded atomic counters and gauges.
//!
//! A single shared `AtomicU64` serializes every incrementing core on one
//! cache line; under the harness worker pool that contention would make the
//! cost of observability proportional to parallelism. [`Counter`] instead
//! spreads increments over a small fixed set of cache-line-padded shards,
//! picked per thread, and sums them on read. Reads are rare (exposition
//! time), writes are hot — the classic LongAdder trade.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter. A small power of two: enough to keep the
/// harness worker pool (capped well below 64 threads) off each other's
/// cache lines, small enough that read-time summation stays trivial.
const SHARDS: usize = 8;

/// One cache line worth of counter shard, padded so neighbouring shards
/// never share a line (the whole point of sharding).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// Round-robin assignment of threads to shards: each thread latches a shard
/// index on first use and keeps it for life. Deterministic *values* do not
/// require deterministic shard assignment — `get()` sums all shards, and
/// addition commutes.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// A monotonically increasing counter, sharded across cache lines.
///
/// `inc`/`add` are wait-free relaxed atomic adds with no allocation;
/// [`Counter::get`] sums the shards (exact once writers quiesce — the
/// conservation property pinned by `tests/proptest_obs.rs`).
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// A fresh zero counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // htpb-lint: hot
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }
    // htpb-lint: end-hot

    /// The current total across all shards.
    ///
    /// Concurrent readers see a value between the total before and after
    /// any in-flight increments — never a torn or decreasing one (each
    /// shard is read atomically and shards only grow).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets the counter to zero (exposition tooling only — never called
    /// from instrumented code).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-value-wins signed gauge (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    // htpb-lint: hot
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }
    // htpb-lint: end-hot

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero (exposition tooling only).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counter_reset_zeroes_all_shards() {
        let c = Counter::new();
        c.add(41);
        c.inc();
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }
}
