//! Fixed-bucket histograms.
//!
//! Buckets are fixed at registration time (allocation happens once, before
//! steady state); [`Histogram::observe`] is a short bound scan plus two
//! relaxed atomic adds. Values are integers in a caller-chosen unit —
//! cycles, nanoseconds, milli-fractions — never floats, so sums commute
//! bit-exactly and the Prometheus exposition stays byte-deterministic
//! however many threads observed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper-inclusive bucket bounds `[1, 2, 4, ..., 2^(n-2)]` — the same
/// power-of-two layout as the NoC latency histogram, for absorbing it
/// bucket-for-bucket. `n` is the *total* bucket count including `+Inf`,
/// so `n - 1` finite bounds are produced.
#[must_use]
pub fn pow2_bounds(n: usize) -> Vec<u64> {
    (0..n.saturating_sub(1)).map(|i| 1u64 << i).collect()
}

/// A histogram over `u64` values with fixed upper-inclusive bucket bounds
/// plus an implicit `+Inf` bucket, and a running sum for mean computation.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending upper-inclusive bounds; values `> bounds.last()` land in
    /// the `+Inf` bucket.
    bounds: Box<[u64]>,
    /// One count per bound, plus the `+Inf` bucket at the end. Non-
    /// cumulative here; the Prometheus renderer accumulates at exposition.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper-inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index `value` falls into.
    // htpb-lint: hot
    #[inline]
    fn bucket(&self, value: u64) -> usize {
        // Linear scan: bucket counts are small (<= 32) and the common case
        // (latencies, occupancies) exits early.
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` observations of `value` in one shot (bulk absorption of
    /// per-run simulator counters).
    #[inline]
    pub fn observe_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[self.bucket(value)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }
    // htpb-lint: end-hot

    /// Merges pre-bucketed counts (e.g. the NoC latency histogram) into
    /// this histogram, bucket for bucket, adding `sum` to the running sum.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from this histogram's bucket count.
    pub fn merge_counts(&self, counts: &[u64], sum: u64) {
        assert_eq!(
            counts.len(),
            self.counts.len(),
            "bucket layout mismatch in histogram merge"
        );
        for (slot, &n) in self.counts.iter().zip(counts) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// The bucket bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// A coherent point-in-time copy. The total count is *derived* from the
    /// bucket counts (never tracked separately), so a snapshot taken during
    /// concurrent observation can lag but can never tear: `count()` always
    /// equals the bucket sum, by construction.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Resets all buckets and the sum to zero (exposition tooling only).
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable with snapshots that
/// share the same bucket layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending upper-inclusive bounds (no `+Inf` entry).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observation count — always the bucket sum, so it cannot
    /// disagree with the buckets.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges two snapshots bucket-wise. Associative and commutative with
    /// bucket counts conserved (pinned by `tests/proptest_obs.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, other.bounds, "bucket layout mismatch");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_upper_inclusive() {
        let h = Histogram::new(&[1, 2, 4]);
        for v in [0, 1, 1, 2, 3, 4, 5, 1_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        // <=1: {0,1,1}; <=2: {2}; <=4: {3,4}; +Inf: {5,1000}.
        assert_eq!(s.counts, vec![3, 1, 2, 2]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum, 1_016);
    }

    #[test]
    fn pow2_layout_matches_noc_latency_histogram() {
        let b = pow2_bounds(32);
        assert_eq!(b.len(), 31);
        assert_eq!(b[0], 1);
        assert_eq!(b[30], 1 << 30);
        let h = Histogram::new(&b);
        assert_eq!(h.snapshot().counts.len(), 32);
    }

    #[test]
    fn merge_counts_bucket_for_bucket() {
        let h = Histogram::new(&[1, 2]);
        h.merge_counts(&[5, 0, 7], 40);
        h.merge_counts(&[1, 1, 1], 2);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![6, 1, 8]);
        assert_eq!(s.sum, 42);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2, 1]);
    }
}
