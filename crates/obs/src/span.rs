//! Lightweight span timers: scope-guard wall-clock timing into a
//! [`Histogram`](crate::Histogram).
//!
//! A [`SpanTimer`] reads the monotonic clock twice and performs one
//! histogram observation — no allocation, no locks. Spans measure wall
//! clock, so the histograms they feed must be registered as
//! [`Class::Timing`](crate::Class::Timing): their values are real but
//! scheduling-dependent, and never enter the Prometheus exposition.

use std::time::Instant;

use crate::histogram::Histogram;

/// Default bucket bounds for span histograms, in microseconds: 100us to
/// ~100s in powers of four — wide enough for a cache probe and a paper-
/// scale job alike.
pub const SPAN_BOUNDS_US: [u64; 11] = [
    100,
    400,
    1_600,
    6_400,
    25_600,
    102_400,
    409_600,
    1_638_400,
    6_553_600,
    26_214_400,
    104_857_600,
];

/// Times the enclosing scope into a histogram of **microseconds**.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing; the observation happens on drop.
    #[must_use]
    pub fn start(hist: &'a Histogram) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros();
        self.hist.observe(u64::try_from(us).unwrap_or(u64::MAX));
    }
}

/// Runs `f`, recording its wall-clock duration (microseconds) into `hist`.
pub fn timed<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let _span = SpanTimer::start(hist);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_one_observation() {
        let h = Histogram::new(&SPAN_BOUNDS_US);
        let v = timed(&h, || 7);
        assert_eq!(v, 7);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn nested_spans_record_independently() {
        let h = Histogram::new(&SPAN_BOUNDS_US);
        {
            let _outer = SpanTimer::start(&h);
            let _inner = SpanTimer::start(&h);
        }
        assert_eq!(h.snapshot().count(), 2);
    }
}
