//! The metric registry: named, labelled, class-tagged instrument handles.
//!
//! Registration is get-or-create under a mutex and returns an `Arc` handle;
//! instrumented code registers once at setup time and thereafter touches
//! only the lock-free instrument through its `Arc`. The mutex is never on a
//! hot path.

use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::snapshot::{Series, SeriesValue, Snapshot};

/// Determinism class of a metric — what its value may depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Derived purely from simulation state. Sums commute across worker
    /// threads, so aggregates are identical for `--jobs 1` and `--jobs N`.
    /// The only class admitted into the Prometheus exposition.
    Sim,
    /// Derived from wall-clock time or scheduling (latencies, queue depth,
    /// retries). JSON snapshot and stderr summary only.
    Timing,
}

impl Class {
    /// Stable lowercase name used in the JSON snapshot.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Sim => "sim",
            Class::Timing => "timing",
        }
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) name: String,
    /// `(key, value)` pairs in registration order (rendered as given).
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) help: String,
    pub(crate) class: Class,
    pub(crate) inst: Instrument,
}

/// A collection of named metrics. Most code uses the process-wide
/// [`crate::global`] registry; tests build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        class: Class,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries.iter().find(|e| {
            e.name == name && e.labels.len() == labels.len() && {
                e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
            }
        }) {
            assert_eq!(
                e.class, class,
                "metric {name} re-registered with a different class"
            );
            let inst = e.inst.clone();
            return inst;
        }
        let inst = make();
        if let Some(family) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                family.inst.kind(),
                inst.kind(),
                "metric {name} re-registered with a different kind"
            );
        }
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            class,
            inst: inst.clone(),
        });
        inst
    }

    /// Gets or creates an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different kind or
    /// class.
    pub fn counter(&self, name: &str, help: &str, class: Class) -> Arc<Counter> {
        self.counter_with(name, &[], help, class) // htpb-lint: allow(obs/class-explicit) -- registry-internal delegation; the literal Class lives at the caller's registration site
    }

    /// Gets or creates a counter carrying the given label pairs (one series
    /// of a family; the family shares `name`, kind and class).
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch with an existing registration.
    pub fn counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        class: Class,
    ) -> Arc<Counter> {
        match self.get_or_insert(name, labels, help, class, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Gets or creates an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch with an existing registration.
    pub fn gauge(&self, name: &str, help: &str, class: Class) -> Arc<Gauge> {
        match self.get_or_insert(name, &[], help, class, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Gets or creates an unlabelled histogram with the given bucket
    /// bounds (see [`Histogram::new`]).
    ///
    /// # Panics
    ///
    /// Panics on kind or class mismatch, or (from [`Histogram::new`]) on
    /// invalid bounds.
    pub fn histogram(
        &self,
        name: &str,
        bounds: &[u64],
        help: &str,
        class: Class,
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, &[], help, class, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// A point-in-time snapshot of every registered series, sorted by
    /// metric name then numeric-aware label values — the canonical order
    /// all three expositions share.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut series: Vec<Series> = entries
            .iter()
            .map(|e| Series {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                class: e.class,
                value: match &e.inst {
                    Instrument::Counter(c) => SeriesValue::Counter(c.get()),
                    Instrument::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        drop(entries);
        series.sort_by(|a, b| {
            a.name
                .cmp(&b.name)
                .then_with(|| cmp_labels(&a.labels, &b.labels))
        });
        Snapshot { series }
    }

    /// Zeroes every registered instrument, keeping registrations (and any
    /// `Arc` handles instrumented code holds) valid. Lets one process run
    /// several independent `--metrics` campaigns (tests, tools).
    pub fn reset(&self) {
        let entries = self.entries.lock().expect("registry poisoned");
        for e in entries.iter() {
            match &e.inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Orders label sets key-by-key, comparing values numerically when both
/// parse as integers (`router="2"` before `router="10"`).
fn cmp_labels(a: &[(String, String)], b: &[(String, String)]) -> std::cmp::Ordering {
    for ((ka, va), (kb, vb)) in a.iter().zip(b) {
        let ord = ka
            .cmp(kb)
            .then_with(|| match (va.parse::<u64>(), vb.parse::<u64>()) {
                (Ok(na), Ok(nb)) => na.cmp(&nb),
                _ => va.cmp(vb),
            });
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", Class::Sim);
        let b = r.counter("x_total", "help", Class::Sim);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.snapshot().series.len(), 1);
    }

    #[test]
    fn families_share_a_name_with_distinct_labels() {
        let r = Registry::new();
        r.counter_with("f_total", &[("router", "10")], "h", Class::Sim)
            .add(1);
        r.counter_with("f_total", &[("router", "2")], "h", Class::Sim)
            .add(2);
        let snap = r.snapshot();
        assert_eq!(snap.series.len(), 2);
        // Numeric-aware ordering: 2 before 10.
        assert_eq!(snap.series[0].labels[0].1, "2");
        assert_eq!(snap.series[1].labels[0].1, "10");
    }

    #[test]
    #[should_panic(expected = "different class")]
    fn class_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "h", Class::Sim);
        let _ = r.counter("x_total", "h", Class::Timing);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter_with("x", &[("a", "1")], "h", Class::Sim);
        let _ = r.gauge("x", "h", Class::Sim);
    }

    #[test]
    fn reset_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("x_total", "h", Class::Sim);
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
