//! Point-in-time snapshots and the three expositions.
//!
//! One [`Snapshot`] (sorted by name, then numeric-aware label values) feeds
//! all three output formats, so they can never disagree about what was
//! measured:
//!
//! * [`Snapshot::to_prom`] — Prometheus text format, **[`Class::Sim`]
//!   series only**, byte-deterministic across worker counts;
//! * [`Snapshot::to_json`] — a JSON object (all classes) embedded in the
//!   journal's `run_end` record;
//! * [`Snapshot::to_summary`] — the human `--metrics` stderr block.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::Class;

/// The value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets and sum.
    Histogram(HistogramSnapshot),
}

impl SeriesValue {
    /// Stable kind name used by TYPE lines and the JSON snapshot.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram(_) => "histogram",
        }
    }
}

/// One series: a metric name, its label pairs, and a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Metric (family) name, e.g. `htpb_noc_flits_delivered_total`.
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// One-line help text.
    pub help: String,
    /// Determinism class.
    pub class: Class,
    /// The observed value.
    pub value: SeriesValue,
}

/// A sorted point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All series, sorted by name then numeric-aware label values.
    pub series: Vec<Series>,
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a Prometheus HELP text (`\` and newline).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders a label set as `{k="v",...}`, with `extra` appended last (used
/// for the histogram `le` label); empty sets render as nothing.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Escapes a JSON string.
fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Only the [`Class::Sim`] series, in snapshot order.
    #[must_use]
    pub fn sim_only(&self) -> Snapshot {
        Snapshot {
            series: self
                .series
                .iter()
                .filter(|s| s.class == Class::Sim)
                .cloned()
                .collect(),
        }
    }

    /// Renders the Prometheus text exposition.
    ///
    /// Grammar (locked by `tests/fixtures/metrics.prom.golden` and
    /// documented in `docs/OBSERVABILITY.md`): per family one `# HELP` and
    /// one `# TYPE` line, then one sample line per series; histograms
    /// expand to cumulative `_bucket{le=...}` lines plus `_sum` and
    /// `_count`. **Only [`Class::Sim`] series are included**, which is what
    /// makes the output byte-deterministic across `--jobs` settings.
    #[must_use]
    pub fn to_prom(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in self.series.iter().filter(|s| s.class == Class::Sim) {
            if last_family != Some(s.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.value.kind());
                last_family = Some(s.name.as_str());
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, render_labels(&s.labels, None));
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, render_labels(&s.labels, None));
                }
                SeriesValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cumulative += c;
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            s.name,
                            render_labels(&s.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {cumulative}",
                        s.name,
                        render_labels(&s.labels, None)
                    );
                }
            }
        }
        out
    }

    /// Renders the JSON snapshot embedded in the journal's `run_end`
    /// record: `{"series":[{name, labels, class, kind, value|histogram}]}`,
    /// all classes included, in snapshot order. Integer-valued throughout,
    /// so it round-trips bit-exactly through any JSON parser.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", escape_json(&s.name));
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            let _ = write!(
                out,
                "}},\"class\":\"{}\",\"kind\":\"{}\",",
                s.class.as_str(),
                s.value.kind()
            );
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = write!(out, "\"value\":{v}");
                }
                SeriesValue::Gauge(v) => {
                    let _ = write!(out, "\"value\":{v}");
                }
                SeriesValue::Histogram(h) => {
                    let join =
                        |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                    let _ = write!(
                        out,
                        "\"bounds\":[{}],\"counts\":[{}],\"sum\":{}",
                        join(&h.bounds),
                        join(&h.counts),
                        h.sum
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the human `--metrics` stderr block: one line per series,
    /// zero-valued series elided, histograms summarised as count/mean.
    #[must_use]
    pub fn to_summary(&self) -> String {
        let mut out = String::from("-- metrics --\n");
        for s in &self.series {
            let labels = render_labels(&s.labels, None);
            match &s.value {
                SeriesValue::Counter(0) => {}
                SeriesValue::Counter(v) => {
                    let _ = writeln!(out, "  {}{labels} {v}", s.name);
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "  {}{labels} {v}", s.name);
                }
                SeriesValue::Histogram(h) => {
                    let count = h.count();
                    if count == 0 {
                        continue;
                    }
                    let mean = h.sum as f64 / count as f64;
                    let _ = writeln!(out, "  {}{labels} count={count} mean={mean:.2}", s.name);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("b_total", "second", Class::Sim).add(2);
        r.counter("a_total", "first", Class::Sim).add(1);
        r.gauge("t_depth", "timing-only", Class::Timing).set(5);
        r.histogram("h_cycles", &[1, 4], "hist", Class::Sim)
            .observe_n(3, 2);
        r.snapshot()
    }

    #[test]
    fn prom_excludes_timing_series() {
        let prom = sample().to_prom();
        assert!(prom.contains("a_total 1"));
        assert!(prom.contains("b_total 2"));
        assert!(!prom.contains("t_depth"), "timing series leaked:\n{prom}");
    }

    #[test]
    fn prom_histogram_is_cumulative() {
        let prom = sample().to_prom();
        assert!(prom.contains("h_cycles_bucket{le=\"1\"} 0"));
        assert!(prom.contains("h_cycles_bucket{le=\"4\"} 2"));
        assert!(prom.contains("h_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("h_cycles_sum 6"));
        assert!(prom.contains("h_cycles_count 2"));
    }

    #[test]
    fn json_includes_all_classes() {
        let json = sample().to_json();
        assert!(json.contains("\"name\":\"t_depth\""));
        assert!(json.contains("\"class\":\"timing\""));
        assert!(json.contains("\"counts\":[0,2,0]"));
    }

    #[test]
    fn summary_elides_zero_counters() {
        let r = Registry::new();
        r.counter("quiet_total", "never incremented", Class::Sim);
        r.counter("loud_total", "incremented", Class::Sim).inc();
        let s = r.snapshot().to_summary();
        assert!(s.contains("loud_total 1"));
        assert!(!s.contains("quiet_total"));
    }
}
