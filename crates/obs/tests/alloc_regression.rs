//! Allocation lock on the metric primitives themselves: once registered,
//! `inc`/`add`/`observe`/`set` and span timing perform ZERO heap
//! allocations — the obs half of the workspace-wide zero-allocation
//! steady-state contract (the NoC half lives in
//! `crates/noc/tests/alloc_regression.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use htpb_obs::span::{SpanTimer, SPAN_BOUNDS_US};
use htpb_obs::{Class, Registry};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn hot_path_operations_do_not_allocate() {
    // Registration allocates (names, shards, buckets) — that is the deal:
    // all allocation happens at enable time, before steady state.
    let r = Registry::new();
    let c = r.counter("c_total", "counter", Class::Sim);
    let g = r.gauge("g", "gauge", Class::Timing);
    let h = r.histogram("h_us", &SPAN_BOUNDS_US, "histogram", Class::Timing);

    // Warm the thread-local shard assignment and the monotonic clock.
    c.inc();
    h.observe(1);
    {
        let _s = SpanTimer::start(&h);
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        c.inc();
        c.add(3);
        g.set(i as i64);
        g.add(-1);
        h.observe(i % 1_000);
        h.observe_n(i % 17, 2);
        let _span = SpanTimer::start(&h);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "metric hot-path operations heap-allocated"
    );

    // The work above was real, not optimised away.
    assert_eq!(c.get(), 400_001);
    assert!(h.snapshot().count() > 300_000);
}
