//! Property-based tests of the registry primitives — the algebra the
//! non-perturbation contract leans on:
//!
//! * sharded counter sums are **exact** under concurrent increments
//!   (no lost updates, however threads interleave);
//! * histogram merge is associative and commutative with bucket counts
//!   conserved (absorbing per-job simulator histograms in any order gives
//!   one answer — what makes `metrics.prom` independent of `--jobs`);
//! * a snapshot taken during concurrent updates never tears: the derived
//!   total always equals the bucket sum, and repeated reads are monotone.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use htpb_obs::{Counter, Histogram, HistogramSnapshot};

/// Strictly ascending bucket bounds, 1..=8 of them.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(1u64..1_000_000, 1..=8).prop_map(|s| s.into_iter().collect())
}

/// Raw bucket counts, oversized; tests slice to `bounds.len() + 1` (the
/// vendored proptest has no `prop_flat_map` to size them exactly).
fn arb_counts() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000, 9..=9)
}

fn snap(bounds: &[u64], counts: Vec<u64>, sum: u64) -> HistogramSnapshot {
    HistogramSnapshot {
        bounds: bounds.to_vec(),
        counts,
        sum,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent increments from several threads are never lost: the
    /// counter total equals the arithmetic sum of everything added.
    #[test]
    fn counter_sum_exact_under_concurrency(
        per_thread in proptest::collection::vec((1u64..200, 1u64..50), 1..6),
    ) {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        let mut expected = 0u64;
        for &(reps, delta) in &per_thread {
            expected += reps * delta;
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..reps {
                    c.add(delta);
                }
            }));
        }
        for h in handles {
            h.join().expect("incrementer panicked");
        }
        prop_assert_eq!(c.get(), expected);
    }

    /// Histogram merge is commutative and conserves every bucket count
    /// and the sum.
    #[test]
    fn histogram_merge_commutes_and_conserves(
        bounds in arb_bounds(),
        raw_a in arb_counts(),
        raw_b in arb_counts(),
        sum_a in 0u64..1_000_000,
        sum_b in 0u64..1_000_000,
    ) {
        let n = bounds.len() + 1;
        let a = raw_a[..n].to_vec();
        let b = raw_b[..n].to_vec();
        let sa = snap(&bounds, a.clone(), sum_a);
        let sb = snap(&bounds, b.clone(), sum_b);
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), sa.count() + sb.count());
        prop_assert_eq!(ab.sum, sum_a + sum_b);
        for i in 0..ab.counts.len() {
            prop_assert_eq!(ab.counts[i], a[i] + b[i]);
        }
    }

    /// Histogram merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn histogram_merge_is_associative(
        bounds in arb_bounds(),
        raw_a in arb_counts(),
        raw_b in arb_counts(),
        raw_c in arb_counts(),
    ) {
        let n = bounds.len() + 1;
        let (a, b, c) = (raw_a[..n].to_vec(), raw_b[..n].to_vec(), raw_c[..n].to_vec());
        let sa = snap(&bounds, a, 1);
        let sb = snap(&bounds, b, 10);
        let sc = snap(&bounds, c, 100);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// Observations land in exactly one bucket and the derived count is
    /// always the bucket sum (the no-separate-count design that makes
    /// tearing structurally impossible).
    #[test]
    fn histogram_count_is_bucket_sum(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..2_000_000, 0..200),
    ) {
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
    }
}

/// A snapshot raced against a writer never tears: every intermediate
/// snapshot's derived count equals its bucket sum, counts are monotone
/// non-decreasing, and the final state is exact. Not a proptest (the race
/// itself is nondeterministic); run with a fixed substantial workload.
#[test]
fn snapshot_during_update_never_tears() {
    const OBSERVATIONS: u64 = 200_000;
    let h = Arc::new(Histogram::new(&[1, 2, 4, 8, 16]));
    let c = Arc::new(Counter::new());
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let (h, c, done) = (Arc::clone(&h), Arc::clone(&c), Arc::clone(&done));
        std::thread::spawn(move || {
            for i in 0..OBSERVATIONS {
                h.observe(i % 20);
                c.inc();
            }
            done.store(true, Ordering::Release);
        })
    };

    let mut last_hist_count = 0u64;
    let mut last_counter = 0u64;
    while !done.load(Ordering::Acquire) {
        let s = h.snapshot();
        let count = s.count();
        assert!(
            count >= last_hist_count,
            "histogram count went backwards: {last_hist_count} -> {count}"
        );
        last_hist_count = count;

        let v = c.get();
        assert!(
            v >= last_counter,
            "counter went backwards: {last_counter} -> {v}"
        );
        last_counter = v;
    }
    writer.join().unwrap();

    let s = h.snapshot();
    assert_eq!(s.count(), OBSERVATIONS);
    assert_eq!(c.get(), OBSERVATIONS);
}
