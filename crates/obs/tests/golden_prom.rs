//! Golden-file lock on the Prometheus exposition grammar.
//!
//! A fixed registry is populated with one representative of every shape
//! (counter, labelled counter family, gauge, histogram, plus a
//! [`Class::Timing`] series that must be *excluded*) and the rendered text
//! is compared byte-for-byte against `fixtures/metrics.prom.golden`. Any
//! change to the exposition — ordering, escaping, cumulative buckets,
//! HELP/TYPE placement — shows up as a diff against a reviewed fixture.

use htpb_obs::{Class, Registry};

const GOLDEN: &str = include_str!("fixtures/metrics.prom.golden");

fn sample_registry() -> Registry {
    let r = Registry::new();
    r.counter(
        "htpb_noc_flits_delivered_total",
        "Flits ejected at their destination",
        Class::Sim,
    )
    .add(12_345);
    // Registered out of numeric order on purpose: the exposition must sort
    // label values numerically (2 before 10), not lexicographically.
    for (router, n) in [(10u16, 7u64), (2, 40), (0, 3)] {
        r.counter_with(
            "htpb_noc_router_flits_forwarded_total",
            &[("router", &router.to_string())],
            "Flits crossing each router's switch",
            Class::Sim,
        )
        .add(n);
    }
    r.gauge(
        "htpb_power_budget_mw",
        "Manager power budget in mW",
        Class::Sim,
    )
    .set(4_200);
    let h = r.histogram(
        "htpb_noc_packet_latency_cycles",
        &[1, 2, 4, 8],
        "End-to-end packet latency",
        Class::Sim,
    );
    h.observe_n(3, 2);
    h.observe(100);
    // Timing-class series: present in the registry, absent from the
    // exposition (wall-clock values are not deterministic across workers).
    r.counter("htpb_harness_retries_total", "Job retries", Class::Timing)
        .add(9);
    r
}

#[test]
fn prom_exposition_matches_golden() {
    let prom = sample_registry().snapshot().to_prom();
    assert_eq!(
        prom, GOLDEN,
        "Prometheus exposition drifted from fixtures/metrics.prom.golden.\n\
         If the change is intentional, review and update the fixture.\n\
         --- rendered ---\n{prom}"
    );
}

#[test]
fn json_snapshot_is_stable_and_complete() {
    let snap = sample_registry().snapshot();
    let json = snap.to_json();
    // The JSON side carries *all* classes, including the timing series the
    // prom exposition drops.
    assert!(json.contains("\"name\":\"htpb_harness_retries_total\""));
    assert!(json.contains("\"class\":\"timing\""));
    // Same registry, same snapshot, same bytes: rendering is a pure
    // function of the snapshot.
    assert_eq!(json, sample_registry().snapshot().to_json());
}
