//! Property tests for the lexer/rule boundary: however forbidden names
//! are wrapped in strings, raw strings, char literals or (nested) block
//! comments, the rules must stay silent — and however adversarial the
//! input, the lexer must terminate without panicking and report sane line
//! numbers.

use proptest::prelude::*;

use htpb_lint::lexer::lex;
use htpb_lint::{analyze_source, FileCtx};

/// The forbidden spellings the rules hunt for (none contain quotes, so
/// they embed safely in any literal form below).
const FORBIDDEN: &[&str] = &[
    "std::collections::HashMap",
    "HashSet",
    "Instant::now()",
    "SystemTime",
    "thread_rng()",
    "OsRng",
    "fs::write",
    "File::create",
    "OpenOptions",
    "Class::Sim",
];

fn sim_ctx() -> FileCtx<'static> {
    FileCtx {
        path: "crates/noc/src/prop.rs",
        crate_name: "noc",
        in_test_dir: false,
        is_crate_root: false,
    }
}

fn forbidden() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(FORBIDDEN.to_vec())
}

/// Soup fragments chosen to stress every lexer mode transition.
fn fragment() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec![
        "\"", "r#\"", "\"#", "/*", "*/", "//", "'", "'a", "\\", "\n", " ", "::", "#", "[", "]",
        "(", ")", "{", "}", "!", ".", "b\"", "r\"", "0.5", "1.", "..", "HashMap", "vec", "format",
        "e8", "fs", "write",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A forbidden name inside a plain string, raw string or comment can
    /// never fire a rule, no matter which wrapper is chosen.
    #[test]
    fn wrapped_forbidden_names_never_fire(
        name in forbidden(),
        wrapper in 0usize..4,
        pad in proptest::collection::vec(fragment(), 0..6),
    ) {
        let padding: String = pad.concat();
        let wrapped = match wrapper {
            0 => format!("pub const X: &str = \"{name}\";"),
            1 => format!("pub const X: &str = r#\"{name}\"#;"),
            2 => format!("// says {name}"),
            _ => format!("/* outer /* {name} */ inner */ pub fn f() {{}}"),
        };
        // The padding goes into its own comment line so it cannot open an
        // unterminated literal that swallows the wrapper.
        let src = format!("{wrapped}\n// pad: {}\n", padding.replace('\n', " "));
        let report = analyze_source(&sim_ctx(), &src);
        prop_assert!(
            report.violations.is_empty(),
            "wrapper {wrapper} leaked `{name}`: {:?}",
            report.violations.iter().map(htpb_lint::Violation::render).collect::<Vec<_>>()
        );
    }

    /// The same name written as real code always fires, regardless of
    /// comment/string noise around it.
    #[test]
    fn unwrapped_forbidden_names_always_fire(
        noise in proptest::collection::vec(fragment(), 0..8),
    ) {
        let noise: String = noise.concat();
        let src = format!(
            "// noise: {}\npub fn f() {{ let m = std::collections::HashMap::new(); }}\n",
            noise.replace('\n', " ")
        );
        let report = analyze_source(&sim_ctx(), &src);
        prop_assert!(
            report.violations.iter().any(|v| v.rule == "determinism/std-hash"),
            "code-level HashMap hidden by noise {noise:?}"
        );
    }

    /// The lexer terminates on arbitrary fragment soup (including
    /// unterminated strings and comments) and its line numbers stay
    /// within the file.
    #[test]
    fn lexer_total_and_lines_sane(
        soup in proptest::collection::vec(fragment(), 0..64),
    ) {
        let src: String = soup.concat();
        let lexed = lex(&src);
        let total = src.lines().count().max(1) as u32 + 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= total, "token line {} of {total}", t.line);
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.line <= total);
        }
        // Token lines are non-decreasing (comments interleave separately).
        for w in lexed.tokens.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    /// Waiver grammar round-trip: a generated, justified waiver over a
    /// generated violation always suppresses exactly that finding.
    #[test]
    fn generated_waivers_suppress(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "alias", "definition", "contains", "only", "never", "iterated",
                "fixture", "scratch", "diagnostic",
            ]),
            1..6,
        ),
    ) {
        let why = words.join(" ");
        let src = format!(
            "use std::collections::HashMap; // htpb-lint: allow(determinism/std-hash) -- {why}\n",
        );
        let report = analyze_source(&sim_ctx(), &src);
        prop_assert!(report.violations.is_empty(), "{:?}",
            report.violations.iter().map(htpb_lint::Violation::render).collect::<Vec<_>>());
        prop_assert_eq!(report.waived.len(), 1);
    }
}
