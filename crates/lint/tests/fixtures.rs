//! Drives the fixture corpus under `tests/fixtures/` through the engine:
//! every rule in the catalog must fire on its `_fire` fixture and stay
//! quiet on its `_clean` twin. The same fixture contents back the
//! binary's `--self-check` mode (embedded via `include_str!`), so this
//! suite and the CI self-test can never drift apart.

use htpb_lint::{analyze_source, FileCtx, RULES};

fn ctx(path: &'static str, in_test_dir: bool) -> FileCtx<'static> {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("core");
    FileCtx {
        path,
        crate_name,
        in_test_dir,
        is_crate_root: path.ends_with("src/lib.rs")
            || path.ends_with("src/main.rs")
            || path.contains("/src/bin/"),
    }
}

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// (fire fixture, clean fixture, rule id, context path the rule scopes to).
const CASES: &[(&str, &str, &str, &str)] = &[
    (
        "std_hash_fire.rs",
        "std_hash_clean.rs",
        "determinism/std-hash",
        "crates/noc/src/seeded.rs",
    ),
    (
        "wall_clock_fire.rs",
        "wall_clock_clean.rs",
        "determinism/wall-clock",
        "crates/power/src/seeded.rs",
    ),
    (
        "entropy_fire.rs",
        "entropy_clean.rs",
        "determinism/entropy",
        "crates/manycore/src/seeded.rs",
    ),
    (
        "hot_alloc_fire.rs",
        "hot_alloc_clean.rs",
        "alloc/hot-loop",
        "crates/trojan/src/seeded.rs",
    ),
    (
        "choke_fire.rs",
        "choke_clean.rs",
        "fs/choke-point",
        "crates/bench/src/seeded.rs",
    ),
    (
        "class_explicit_fire.rs",
        "class_explicit_clean.rs",
        "obs/class-explicit",
        "crates/defense/src/seeded.rs",
    ),
    (
        "sim_placement_fire.rs",
        "sim_placement_clean.rs",
        "obs/sim-placement",
        "crates/harness/src/seeded.rs",
    ),
    (
        "panic_fire.rs",
        "panic_clean.rs",
        "panic/recovery-path",
        "crates/harness/src/campaign.rs",
    ),
    (
        "forbid_unsafe_fire.rs",
        "forbid_unsafe_clean.rs",
        "unsafe/forbid-missing",
        "crates/attack/src/lib.rs",
    ),
    (
        "waiver_unjustified_fire.rs",
        "waiver_ok.rs",
        "lint/marker",
        "crates/faults/src/seeded.rs",
    ),
];

#[test]
fn every_fire_fixture_fires_its_rule() {
    for (fire, _, rule, path) in CASES {
        let report = analyze_source(&ctx(path, false), &fixture(fire));
        assert!(
            report.violations.iter().any(|v| v.rule == *rule),
            "{fire}: expected [{rule}] to fire, got {:?}",
            report
                .violations
                .iter()
                .map(htpb_lint::Violation::render)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_clean_fixture_stays_quiet() {
    for (_, clean, rule, path) in CASES {
        let report = analyze_source(&ctx(path, false), &fixture(clean));
        assert!(
            report.violations.is_empty(),
            "{clean}: expected silence for [{rule}], got {:?}",
            report
                .violations
                .iter()
                .map(htpb_lint::Violation::render)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn fixture_corpus_covers_the_whole_catalog() {
    for info in RULES {
        assert!(
            CASES.iter().any(|(_, _, rule, _)| rule == &info.id),
            "rule [{}] has no fixture pair",
            info.id
        );
    }
}

#[test]
fn lexer_tricky_fixture_is_silent_in_the_strictest_context() {
    // core is a sim crate, so every determinism rule is armed; nothing in
    // the fixture is a real token, so nothing may fire.
    let report = analyze_source(
        &ctx("crates/core/src/seeded.rs", false),
        &fixture("lexer_tricky_clean.rs"),
    );
    assert!(
        report.violations.is_empty(),
        "{:?}",
        report
            .violations
            .iter()
            .map(htpb_lint::Violation::render)
            .collect::<Vec<_>>()
    );
}

#[test]
fn justified_waivers_suppress_and_tally() {
    let report = analyze_source(
        &ctx("crates/faults/src/seeded.rs", false),
        &fixture("waiver_ok.rs"),
    );
    assert!(report.violations.is_empty());
    assert_eq!(report.waived.len(), 2, "both HashSet mentions waived");
    assert_eq!(report.waivers.len(), 2);
    for w in &report.waivers {
        assert!(w.justification.contains("contains-only"));
    }
}

#[test]
fn unjustified_waiver_leaves_the_finding_live() {
    let report = analyze_source(
        &ctx("crates/faults/src/seeded.rs", false),
        &fixture("waiver_unjustified_fire.rs"),
    );
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"lint/marker"), "{rules:?}");
    assert!(
        rules.contains(&"fs/choke-point"),
        "the underlying finding must stay live: {rules:?}"
    );
}

#[test]
fn fire_fixtures_are_quiet_in_test_context() {
    // Test directories are exempt from the scoped rules (tests corrupt
    // files and use std maps on purpose); only region/marker rules and
    // the crate-root check stay armed.
    for (fire, _, rule, path) in CASES {
        if matches!(
            *rule,
            "lint/marker" | "alloc/hot-loop" | "unsafe/forbid-missing"
        ) {
            continue;
        }
        let report = analyze_source(&ctx(path, true), &fixture(fire));
        let scoped: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == *rule)
            .collect();
        assert!(
            scoped.is_empty(),
            "{fire}: [{rule}] must not fire in test context"
        );
    }
}
