//! Fixture: a `Class::Sim` registration inside a timing-only crate
//! (harness/bench) — fires `obs/sim-placement`.
pub fn instruments(r: &Registry) -> Arc<Counter> {
    r.counter("htpb_harness_jobs_total", "Jobs completed", Class::Sim)
}
