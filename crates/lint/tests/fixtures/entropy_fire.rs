//! Fixture: entropy-seeded RNG in a sim crate — fires `determinism/entropy`.
pub fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
