//! Fixture: durable write routed through the commit choke point — quiet
//! (the string below mentioning fs::write must not fire either).
pub const DOC: &str = "never call fs::write or File::create directly";

pub fn emit(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    commit_file(&StdFs, path, bytes)
}
