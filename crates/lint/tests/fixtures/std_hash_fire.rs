//! Fixture: SipHash-keyed map in a sim crate — fires `determinism/std-hash`.
use std::collections::HashMap;

pub struct Tracker {
    seen: HashMap<u64, u32>,
}
