//! Fixture: explicitly seeded RNG — quiet (a `thread_rng` that only ever
//! appears in a string stays hidden from the rules).
pub const HELP: &str = "never call thread_rng() in sim code";

pub fn jitter(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next_u64()
}
