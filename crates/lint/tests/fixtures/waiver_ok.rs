//! Fixture: justified waivers suppress findings and land in the tally.
pub fn seen() -> std::collections::HashSet<u64> { // htpb-lint: allow(determinism/std-hash) -- fixture: contains-only set, never iterated
    std::collections::HashSet::default() // htpb-lint: allow(determinism/std-hash) -- fixture: contains-only set, never iterated
}
