//! Fixture: a panic in the recovery state machine — fires
//! `panic/recovery-path` (scoped to campaign.rs / fs.rs).
pub fn resume(path: &std::path::Path) -> Epoch {
    let state = read_state(path).unwrap();
    state.epoch
}
