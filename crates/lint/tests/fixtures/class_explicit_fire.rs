//! Fixture: obs series registered through a variable instead of a literal
//! determinism class — fires `obs/class-explicit`.
pub fn instruments(r: &Registry, class: Class) -> Arc<Counter> {
    r.counter("htpb_defense_flags_total", "Requests flagged", class)
}
