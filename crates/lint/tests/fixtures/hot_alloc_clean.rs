//! Fixture: a clean hot region (index math and scratch reuse only), with
//! allocations confined to cold construction code outside the markers.
pub fn new(ports: usize) -> Self {
    Self {
        scratch: Vec::new(),
        table: vec![0u32; ports],
    }
}

// htpb-lint: hot
pub fn step(&mut self) {
    for slot in 0..self.table.len() {
        self.table[slot] = self.table[slot].wrapping_add(1);
    }
}
// htpb-lint: end-hot

pub fn summary(&self) -> String {
    format!("{} slots", self.table.len())
}
