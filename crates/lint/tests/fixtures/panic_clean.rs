//! Fixture: recovery code that bubbles errors — quiet. `unwrap_or` and
//! `expect_err`-style near-misses must not fire.
pub fn resume(path: &std::path::Path) -> io::Result<Epoch> {
    let state = read_state(path)?;
    Ok(state.epoch_or(Epoch::default()))
}

pub fn budget(limit: Option<u32>) -> u32 {
    limit.unwrap_or(DEFAULT_LIMIT)
}
