//! Fixture: host-clock read in a sim crate — fires `determinism/wall-clock`.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
