//! Fixture: every registration names a literal `Class::...` — quiet, even
//! with a nested call in the argument list.
pub fn instruments(r: &Registry) -> Arc<Histogram> {
    r.counter("htpb_defense_flags_total", "Requests flagged", Class::Sim);
    r.histogram(
        "htpb_defense_score",
        &pow2_bounds(8),
        "Anomaly score",
        Class::Sim,
    )
}
