//! Fixture: heap allocation inside a marked hot region — fires
//! `alloc/hot-loop`.
// htpb-lint: hot
pub fn step(&mut self) {
    let scratch = vec![0u8; self.ports];
    self.consume(&scratch);
}
// htpb-lint: end-hot
