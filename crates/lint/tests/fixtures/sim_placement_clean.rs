//! Fixture: harness instruments labelled `Class::Timing` — quiet. The
//! doc string naming Class::Sim must not fire either.
pub const NOTE: &str = "harness series are never Class::Sim";

pub fn instruments(r: &Registry) -> Arc<Counter> {
    r.counter("htpb_harness_jobs_total", "Jobs completed", Class::Timing)
}
