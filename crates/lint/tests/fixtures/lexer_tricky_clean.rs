//! Fixture: every forbidden name below sits inside a string, raw string,
//! char context or comment — the token-level rules must stay silent.
//! HashMap Instant::now() thread_rng fs::write OpenOptions vec![] says
//! this doc comment, and none of it is a token.

pub const PLAIN: &str = "use std::collections::HashMap; Instant::now(); thread_rng()";
pub const RAW: &str = r#"fs::write("x", "y") and OpenOptions::new() and a " quote"#;
pub const RAW_HASHED: &str = r##"nested r#"File::create"# inside"##;
pub const BYTES: &[u8] = b"SystemTime::now() vec![Box::new(1)]";

/* block comment: format!("{}", String::from("x"))
   /* nested: .collect::<Vec<_>>() to_owned() */
   still inside the outer comment */

pub fn quotes(c: char) -> bool {
    c == '"' || c == '\'' || c == '\\'
}
