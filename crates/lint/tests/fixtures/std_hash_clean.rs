//! Fixture: FNV-keyed map — deterministic iteration; `determinism/std-hash`
//! stays quiet (and so does a `HashMap` mentioned only in this comment).
use crate::fnv::FnvHashMap;

pub struct Tracker {
    seen: FnvHashMap<u64, u32>,
}
