//! Fixture: a waiver with no ` -- justification` — fires `lint/marker`
//! (and the underlying finding stays live: an unjustified waiver waives
//! nothing).
pub fn emit(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes) // htpb-lint: allow(fs/choke-point)
}
