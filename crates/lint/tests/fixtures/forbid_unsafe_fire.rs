//! Fixture: a crate root without `#![forbid(unsafe_code)]` — fires
//! `unsafe/forbid-missing`.

pub mod seeded;
