//! Fixture: simulated time derived from the cycle counter — quiet
//! (`Instant::now` appearing in this comment must not fire).
pub fn stamp(cycle: u64, epoch_len: u64) -> u64 {
    cycle / epoch_len.max(1)
}
