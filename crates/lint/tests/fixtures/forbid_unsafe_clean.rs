//! Fixture: a crate root carrying the attribute — quiet.

#![forbid(unsafe_code)]

pub mod seeded;
