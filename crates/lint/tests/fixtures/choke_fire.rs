//! Fixture: raw durable write outside `crates/harness/src/fs.rs` — fires
//! `fs/choke-point`.
pub fn emit(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
