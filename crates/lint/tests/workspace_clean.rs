//! The acceptance gate as a test: the actual workspace must be lint-clean
//! — zero live violations, every waiver justified — so `cargo test` fails
//! exactly where the CI `htpb-lint --check` step would.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = htpb_lint::analyze_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(htpb_lint::Violation::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Waivers are by construction justified (unjustified ones are
    // violations); surface the tally so `--nocapture` shows the standing
    // exceptions.
    println!("{}", report.waiver_tally());
}
