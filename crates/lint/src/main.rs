//! The `htpb-lint` binary: the CI gate over [`htpb_lint::analyze_workspace`].
//!
//! ```text
//! htpb-lint [--root PATH] [--check] [--self-check]
//! ```
//!
//! * default — scan the workspace, print violations and the waiver tally,
//!   exit 0 (report mode).
//! * `--check` — same scan, but exit 1 on any violation (unjustified or
//!   unused waivers are violations themselves, so they fail too).
//! * `--self-check` — inject the seeded violation fixtures into a scratch
//!   tree and verify every rule in the catalog fires there and stays
//!   quiet on the clean fixtures; exits 1 on any miss. Run in CI before
//!   `--check` so a silently broken rule can never wave a dirty tree
//!   through.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use htpb_lint::{analyze_workspace, Report, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut check = false;
    let mut self_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--self-check" => self_check = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("htpb-lint: --root needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: htpb-lint [--root PATH] [--check] [--self-check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("htpb-lint: unknown flag {other}; see --help");
                return ExitCode::FAILURE;
            }
        }
    }

    if self_check && !run_self_check() {
        return ExitCode::FAILURE;
    }
    if self_check && !check {
        return ExitCode::SUCCESS;
    }

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("htpb-lint: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    print_report(&report);
    if check && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_report(report: &Report) {
    for v in &report.violations {
        println!("{}", v.render());
    }
    print!("{}", report.waiver_tally());
    println!(
        "htpb-lint: {} files, {} violations, {} waived findings ({} waivers)",
        report.files_scanned,
        report.violations.len(),
        report.waived.len(),
        report.waivers.len()
    );
}

/// One seeded firing fixture per rule, placed at a path that puts it in
/// the rule's scope, plus the clean twin that must stay quiet. Embedded at
/// compile time so the binary self-tests without needing the source tree.
const FIRING: &[(&str, &str, &str)] = &[
    (
        "crates/noc/src/seeded.rs",
        "determinism/std-hash",
        include_str!("../tests/fixtures/std_hash_fire.rs"),
    ),
    (
        "crates/power/src/seeded.rs",
        "determinism/wall-clock",
        include_str!("../tests/fixtures/wall_clock_fire.rs"),
    ),
    (
        "crates/manycore/src/seeded.rs",
        "determinism/entropy",
        include_str!("../tests/fixtures/entropy_fire.rs"),
    ),
    (
        "crates/trojan/src/seeded.rs",
        "alloc/hot-loop",
        include_str!("../tests/fixtures/hot_alloc_fire.rs"),
    ),
    (
        "crates/bench/src/seeded.rs",
        "fs/choke-point",
        include_str!("../tests/fixtures/choke_fire.rs"),
    ),
    (
        "crates/defense/src/seeded.rs",
        "obs/class-explicit",
        include_str!("../tests/fixtures/class_explicit_fire.rs"),
    ),
    (
        "crates/harness/src/seeded.rs",
        "obs/sim-placement",
        include_str!("../tests/fixtures/sim_placement_fire.rs"),
    ),
    (
        "crates/harness/src/campaign.rs",
        "panic/recovery-path",
        include_str!("../tests/fixtures/panic_fire.rs"),
    ),
    (
        "crates/attack/src/lib.rs",
        "unsafe/forbid-missing",
        include_str!("../tests/fixtures/forbid_unsafe_fire.rs"),
    ),
    (
        "crates/faults/src/seeded.rs",
        "lint/marker",
        include_str!("../tests/fixtures/waiver_unjustified_fire.rs"),
    ),
];

const CLEAN: &[(&str, &str)] = &[
    (
        "crates/noc/src/a.rs",
        include_str!("../tests/fixtures/std_hash_clean.rs"),
    ),
    (
        "crates/power/src/a.rs",
        include_str!("../tests/fixtures/wall_clock_clean.rs"),
    ),
    (
        "crates/manycore/src/a.rs",
        include_str!("../tests/fixtures/entropy_clean.rs"),
    ),
    (
        "crates/trojan/src/a.rs",
        include_str!("../tests/fixtures/hot_alloc_clean.rs"),
    ),
    (
        "crates/bench/src/a.rs",
        include_str!("../tests/fixtures/choke_clean.rs"),
    ),
    (
        "crates/defense/src/a.rs",
        include_str!("../tests/fixtures/class_explicit_clean.rs"),
    ),
    (
        "crates/harness/src/a.rs",
        include_str!("../tests/fixtures/sim_placement_clean.rs"),
    ),
    (
        "crates/harness/src/campaign.rs",
        include_str!("../tests/fixtures/panic_clean.rs"),
    ),
    (
        "crates/attack/src/lib.rs",
        include_str!("../tests/fixtures/forbid_unsafe_clean.rs"),
    ),
    (
        "crates/faults/src/a.rs",
        include_str!("../tests/fixtures/waiver_ok.rs"),
    ),
    (
        "crates/core/src/a.rs",
        include_str!("../tests/fixtures/lexer_tricky_clean.rs"),
    ),
];

/// Builds the seeded scratch tree, asserts every catalog rule fires on its
/// fixture, then asserts the clean twins produce zero violations. The
/// scratch tree is the self-check's working area, not a durable artefact,
/// hence the waived raw filesystem calls.
fn run_self_check() -> bool {
    let scratch = std::env::temp_dir().join(format!("htpb-lint-selfcheck-{}", std::process::id()));
    let mut ok = true;

    // Phase 1: seeded violations must all fire.
    let dirty = scratch.join("dirty");
    for (path, _, content) in FIRING {
        if let Err(e) = write_fixture(&dirty.join(path), content) {
            eprintln!("self-check: writing {path}: {e}");
            return false;
        }
    }
    match analyze_workspace(&dirty) {
        Ok(report) => {
            for (path, rule, _) in FIRING {
                let hit = report
                    .violations
                    .iter()
                    .any(|v| v.rule == *rule && v.file == *path);
                if !hit {
                    eprintln!("self-check: seeded violation at {path} did not fire [{rule}]");
                    ok = false;
                }
            }
            // Catalog coverage: every rule must have fired somewhere.
            for info in RULES {
                if !report.violations.iter().any(|v| v.rule == info.id) {
                    eprintln!("self-check: rule [{}] has no firing fixture", info.id);
                    ok = false;
                }
            }
        }
        Err(e) => {
            eprintln!("self-check: scanning dirty tree: {e}");
            ok = false;
        }
    }

    // Phase 2: the clean twins must stay quiet.
    let clean = scratch.join("clean");
    for (path, content) in CLEAN {
        if let Err(e) = write_fixture(&clean.join(path), content) {
            eprintln!("self-check: writing {path}: {e}");
            return false;
        }
    }
    match analyze_workspace(&clean) {
        Ok(report) => {
            for v in &report.violations {
                eprintln!("self-check: clean fixture fired: {}", v.render());
                ok = false;
            }
            if report.waivers.is_empty() {
                eprintln!("self-check: waiver fixture was not tallied");
                ok = false;
            }
        }
        Err(e) => {
            eprintln!("self-check: scanning clean tree: {e}");
            ok = false;
        }
    }

    let _ = std::fs::remove_dir_all(&scratch);
    if ok {
        println!(
            "htpb-lint: self-check PASS ({} rules verified)",
            RULES.len()
        );
    }
    ok
}

fn write_fixture(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    // htpb-lint: allow(fs/choke-point) -- self-check scratch fixture, deleted before exit; not a durable artefact
    std::fs::write(path, content)
}
