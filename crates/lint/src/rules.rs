//! The rule table and the per-file analysis pass.
//!
//! Every rule matches *token* sequences produced by [`crate::lexer`], so
//! nothing inside strings or comments can fire a rule, and no amount of
//! creative whitespace can hide a forbidden call. Each rule carries a fix
//! hint shown with every violation; deliberate exceptions are waived
//! inline with
//!
//! ```text
//! // htpb-lint: allow(<rule-id>) -- <justification>
//! ```
//!
//! and the analyzer counts and reports every waiver (see `docs/LINTS.md`
//! for the full catalog and rationale).

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// Crates whose simulation output feeds the paper's quantitative claims.
/// Their sources may not consult wall clocks, entropy, or SipHash-keyed
/// (iteration-order-randomized) collections.
pub const SIM_CRATES: &[&str] = &[
    "noc", "power", "manycore", "trojan", "attack", "defense", "faults", "core",
];

/// Crates that must never register a `Class::Sim` observability series:
/// their instruments measure wall-clock scheduling, and a mislabelled
/// series would leak nondeterminism into `results/metrics.prom`.
pub const TIMING_ONLY_CRATES: &[&str] = &["harness", "bench"];

/// Files holding the crash-recovery state machine and the durable-commit
/// protocol; a panic there turns a recoverable fault into data loss.
pub const RECOVERY_FILES: &[&str] = &["crates/harness/src/campaign.rs", "crates/harness/src/fs.rs"];

/// The single file allowed to call raw filesystem mutation APIs.
pub const FS_CHOKE_FILE: &str = "crates/harness/src/fs.rs";

/// One catalog entry. `id` is `<category>/<name>`; the full rationale per
/// rule lives in `docs/LINTS.md`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// The complete rule catalog, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism/std-hash",
        summary: "std HashMap/HashSet (SipHash, randomized iteration order) in a sim crate",
        hint: "use htpb_noc::FnvHashMap / fnv::FnvHashSet, or a sorted Vec",
    },
    RuleInfo {
        id: "determinism/wall-clock",
        summary: "wall-clock read (Instant/SystemTime) in a sim crate",
        hint: "derive time from the simulated cycle counter instead",
    },
    RuleInfo {
        id: "determinism/entropy",
        summary: "RNG seeded from process entropy in a sim crate",
        hint: "construct RNGs from an explicit u64 seed carried by the config",
    },
    RuleInfo {
        id: "alloc/hot-loop",
        summary: "heap allocation inside an `// htpb-lint: hot` region",
        hint: "reuse a scratch buffer or preallocate at construction time",
    },
    RuleInfo {
        id: "fs/choke-point",
        summary: "raw filesystem mutation outside crates/harness/src/fs.rs",
        hint: "route durable writes through htpb_harness::fs::{commit_file, commit_append}",
    },
    RuleInfo {
        id: "obs/class-explicit",
        summary: "obs series registered without a literal determinism Class",
        hint: "pass Class::Sim or Class::Timing at the registration site",
    },
    RuleInfo {
        id: "obs/sim-placement",
        summary: "Class::Sim series registered from a timing-only crate",
        hint: "harness/bench instruments are scheduling-dependent: use Class::Timing",
    },
    RuleInfo {
        id: "panic/recovery-path",
        summary: "unwrap/expect/panic in the recovery state machine or commit protocol",
        hint: "bubble the error as io::Result so recovery can degrade gracefully",
    },
    RuleInfo {
        id: "unsafe/forbid-missing",
        summary: "crate root missing #![forbid(unsafe_code)]",
        hint: "add the attribute, or waive with a justification if unsafe is load-bearing",
    },
    RuleInfo {
        id: "lint/marker",
        summary: "malformed htpb-lint directive, unknown rule id, or unused waiver",
        hint: "see the waiver grammar in docs/LINTS.md",
    },
];

/// Looks a rule up by id.
#[must_use]
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes
    /// (e.g. `crates/noc/src/network.rs`).
    pub path: &'a str,
    /// The crate directory name under `crates/` (`noc`, `harness`, ...).
    pub crate_name: &'a str,
    /// True for files under a `tests/`, `benches/` or `examples/`
    /// directory: test code may allocate, corrupt files and use std maps.
    pub in_test_dir: bool,
    /// True for `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` — the
    /// compilation roots where `#![forbid(unsafe_code)]` must appear.
    pub is_crate_root: bool,
}

/// One firing: where, which rule, and what matched.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Violation {
    /// `file:line: [rule] message (fix: hint)` — the one-line form the bin
    /// prints and tests assert on.
    #[must_use]
    pub fn render(&self) -> String {
        let hint = rule(self.rule).map_or("", |r| r.hint);
        format!(
            "{}:{}: [{}] {} (fix: {hint})",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One parsed `allow(...)` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub file: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// Line whose violations it covers (same line for trailing comments,
    /// next token-bearing line for standalone ones).
    pub target_line: u32,
    pub rules: Vec<String>,
    pub justification: String,
}

/// Everything the pass found in one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Live violations (not covered by any waiver).
    pub violations: Vec<Violation>,
    /// Violations suppressed by a justified waiver (kept for the tally).
    pub waived: Vec<Violation>,
    /// Every justified waiver, used or not (unused ones also produce a
    /// `lint/marker` violation so stale annotations cannot accumulate).
    pub waivers: Vec<Waiver>,
}

/// Runs every applicable rule over one file's source. Pure: all context
/// comes from `ctx`, so fixtures can exercise any rule in isolation.
#[must_use]
pub fn analyze_source(ctx: &FileCtx, src: &str) -> FileReport {
    let lexed = lex(src);
    let mut report = FileReport::default();

    let directives = parse_directives(ctx, &lexed, &mut report);
    let exempt = if ctx.in_test_dir {
        vec![(1, lexed.lines.max(1))]
    } else {
        test_exempt_ranges(&lexed)
    };
    let in_exempt = |line: u32| exempt.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<Violation> = Vec::new();
    let mut fire = |line: u32, rule_id: &'static str, message: String| {
        raw.push(Violation {
            file: ctx.path.to_string(),
            line,
            rule: rule_id,
            message,
        });
    };

    let toks = &lexed.tokens;
    let is_sim = SIM_CRATES.contains(&ctx.crate_name);
    let is_choke = ctx.path == FS_CHOKE_FILE;
    let is_recovery = RECOVERY_FILES.contains(&ctx.path);
    let timing_only = TIMING_ONLY_CRATES.contains(&ctx.crate_name);

    for (i, t) in toks.iter().enumerate() {
        if in_exempt(t.line) {
            continue;
        }
        if is_sim {
            if t.kind == TokKind::Ident && matches!(t.text, "HashMap" | "HashSet") {
                fire(
                    t.line,
                    "determinism/std-hash",
                    format!("std::collections::{} is SipHash-keyed", t.text),
                );
            }
            if t.kind == TokKind::Ident && matches!(t.text, "Instant" | "SystemTime") {
                fire(
                    t.line,
                    "determinism/wall-clock",
                    format!("`{}` reads the host clock", t.text),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text,
                    "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
                )
            {
                fire(
                    t.line,
                    "determinism/entropy",
                    format!("`{}` draws from process entropy", t.text),
                );
            }
        }
        if !is_choke {
            if seq(toks, i, &["File", ":", ":", "create"])
                || seq(toks, i, &["fs", ":", ":", "write"])
                || seq(toks, i, &["fs", ":", ":", "rename"])
            {
                fire(
                    t.line,
                    "fs/choke-point",
                    format!("raw `{}::{}`", t.text, toks[i + 3].text),
                );
            }
            if t.is_ident("OpenOptions") {
                fire(t.line, "fs/choke-point", "raw `OpenOptions`".to_string());
            }
        }
        if timing_only && seq(toks, i, &["Class", ":", ":", "Sim"]) {
            fire(
                t.line,
                "obs/sim-placement",
                "`Class::Sim` registration in a timing-only crate".to_string(),
            );
        }
        if is_recovery
            && (seq(toks, i, &[".", "unwrap", "("])
                || seq(toks, i, &[".", "expect", "("])
                || seq(toks, i, &["panic", "!"])
                || seq(toks, i, &["unreachable", "!"])
                || seq(toks, i, &["todo", "!"])
                || seq(toks, i, &["unimplemented", "!"]))
        {
            let what = if t.is_punct('.') {
                toks[i + 1].text
            } else {
                t.text
            };
            fire(
                t.line,
                "panic/recovery-path",
                format!("`{what}` can abort mid-recovery"),
            );
        }
        // Registration discipline applies in every crate: a mislabelled
        // series is wrong wherever it is registered.
        for method in ["counter", "gauge", "histogram", "counter_with"] {
            if seq(toks, i, &[".", method, "("]) && !call_names_class(toks, i + 2) {
                fire(
                    t.line,
                    "obs/class-explicit",
                    format!("`.{method}(...)` without a literal `Class::...` argument"),
                );
            }
        }
    }

    // Hot-region allocation scan (regions come from directives; rule
    // applies inside marked regions regardless of crate).
    for &(start, end) in &directives.hot_regions {
        for (i, t) in toks.iter().enumerate() {
            if t.line < start || t.line > end {
                continue;
            }
            let alloc: Option<String> = if seq(toks, i, &["Vec", ":", ":", "new"]) {
                Some("Vec::new".into())
            } else if seq(toks, i, &["Box", ":", ":", "new"]) {
                Some("Box::new".into())
            } else if seq(toks, i, &["String", ":", ":", "from"])
                || seq(toks, i, &["String", ":", ":", "new"])
            {
                Some(format!("String::{}", toks[i + 3].text))
            } else if seq(toks, i, &["vec", "!"]) || seq(toks, i, &["format", "!"]) {
                Some(format!("{}!", t.text))
            } else if seq(toks, i, &[".", "collect"])
                || seq(toks, i, &[".", "to_string"])
                || seq(toks, i, &[".", "to_owned"])
                || seq(toks, i, &[".", "to_vec"])
            {
                Some(format!(".{}()", toks[i + 1].text))
            } else {
                None
            };
            if let Some(what) = alloc {
                fire(
                    t.line,
                    "alloc/hot-loop",
                    format!("`{what}` allocates inside a hot region"),
                );
            }
        }
    }

    // Crate roots must forbid unsafe code (rule fires at line 1; a waiver
    // anywhere in the file covers it, since the "site" is the whole crate).
    if ctx.is_crate_root && !has_forbid_unsafe(toks) {
        fire(
            1,
            "unsafe/forbid-missing",
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        );
    }

    // Resolve waivers against the raw findings.
    let mut used = vec![false; directives.waivers.len()];
    for v in raw {
        let file_scope = v.rule == "unsafe/forbid-missing";
        let w = directives.waivers.iter().enumerate().find(|(_, w)| {
            w.rules.iter().any(|r| r == v.rule) && (file_scope || w.target_line == v.line)
        });
        match w {
            Some((wi, _)) => {
                used[wi] = true;
                report.waived.push(v);
            }
            None => report.violations.push(v),
        }
    }
    for (wi, w) in directives.waivers.iter().enumerate() {
        if !used[wi] {
            report.violations.push(Violation {
                file: ctx.path.to_string(),
                line: w.line,
                rule: "lint/marker",
                message: format!(
                    "unused waiver for {} — nothing on line {} fires it",
                    w.rules.join(", "),
                    w.target_line
                ),
            });
        }
    }
    report.waivers = directives.waivers;
    report
}

/// True when `toks[i..]` begins with `pattern`, where each element matches
/// an identifier by text or a single punctuation character.
fn seq(toks: &[Tok<'_>], i: usize, pattern: &[&str]) -> bool {
    if i + pattern.len() > toks.len() {
        return false;
    }
    pattern.iter().enumerate().all(|(k, p)| {
        let t = &toks[i + k];
        if p.len() == 1 && !p.chars().next().is_some_and(char::is_alphabetic) {
            t.is_punct(p.chars().next().expect("single-char pattern"))
        } else {
            t.is_ident(p)
        }
    })
}

/// For a registration call whose `(` sits at `toks[open]`: does the
/// argument list contain a literal `Class` path before the matching `)`?
fn call_names_class(toks: &[Tok<'_>], open: usize) -> bool {
    let mut depth = 0i32;
    for t in &toks[open..] {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == "Class" => return true,
            _ => {}
        }
    }
    false
}

/// Token-level check for `#![forbid(unsafe_code)]` anywhere in the file
/// (inner attributes must be at the top for rustc; we only need presence).
fn has_forbid_unsafe(toks: &[Tok<'_>]) -> bool {
    (0..toks.len()).any(|i| {
        seq(
            toks,
            i,
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
        )
    })
}

/// Line ranges covered by `#[cfg(test)]` items (test modules and helper
/// items). Attributes containing `not` are conservatively ignored so
/// `#[cfg(not(test))]` never exempts production code.
fn test_exempt_ranges(lexed: &Lexed<'_>) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Parse the attribute: find its matching `]`.
        let (attr_end, mut is_test) = (attr_close(toks, i + 1), false);
        let Some(attr_end) = attr_end else {
            i += 1;
            continue;
        };
        let body = &toks[i + 2..attr_end];
        if body.first().is_some_and(|t| t.is_ident("cfg"))
            && body.iter().any(|t| t.is_ident("test"))
            && !body.iter().any(|t| t.is_ident("not"))
        {
            is_test = true;
        }
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end + 1;
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match attr_close(toks, j + 1) {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The item extends to the first `;` at depth 0, or through the
        // matching brace of its first `{`.
        let start_line = toks[i].line;
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                _ => {}
            }
            end_line = toks[j].line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

/// Index of the `]` closing the attribute whose `[` sits at `open`.
fn attr_close(toks: &[Tok<'_>], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parsed directives of one file.
#[derive(Debug, Default)]
struct Directives {
    waivers: Vec<Waiver>,
    /// Inclusive line ranges between `hot` and `end-hot` markers.
    hot_regions: Vec<(u32, u32)>,
}

/// Parses every `htpb-lint:` comment. Malformed directives, unknown rule
/// ids, missing justifications, unterminated hot regions and directives in
/// block comments all produce `lint/marker` violations (not waivable —
/// `lint/marker` findings are never matched against waivers for
/// themselves, which keeps the marker layer trustworthy).
fn parse_directives(ctx: &FileCtx, lexed: &Lexed<'_>, report: &mut FileReport) -> Directives {
    let mut out = Directives::default();
    let mut open_hot: Option<u32> = None;
    let mut marker = |line: u32, message: String| {
        report.violations.push(Violation {
            file: ctx.path.to_string(),
            line,
            rule: "lint/marker",
            message,
        });
    };
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("htpb-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if c.block {
            marker(c.line, "htpb-lint directives must be line comments".into());
            continue;
        }
        if rest == "hot" {
            if open_hot.is_some() {
                marker(
                    c.line,
                    "nested `hot` region (previous one not closed)".into(),
                );
            } else {
                open_hot = Some(c.line);
            }
        } else if rest == "end-hot" {
            match open_hot.take() {
                Some(start) => out.hot_regions.push((start, c.line)),
                None => marker(c.line, "`end-hot` without an open `hot` region".into()),
            }
        } else if let Some(tail) = rest.strip_prefix("allow(") {
            match parse_allow(tail) {
                Ok((rules, justification)) => {
                    let unknown: Vec<&String> =
                        rules.iter().filter(|r| rule(r).is_none()).collect();
                    if !unknown.is_empty() {
                        marker(
                            c.line,
                            format!(
                                "unknown rule id {} in waiver",
                                unknown
                                    .iter()
                                    .map(|r| format!("`{r}`"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        );
                    } else if rules.iter().any(|r| r == "lint/marker") {
                        marker(c.line, "`lint/marker` findings cannot be waived".into());
                    } else {
                        let target_line = if lexed.has_token_on(c.line) {
                            c.line
                        } else {
                            lexed.next_token_line(c.line).unwrap_or(c.line)
                        };
                        out.waivers.push(Waiver {
                            file: ctx.path.to_string(),
                            line: c.line,
                            target_line,
                            rules,
                            justification,
                        });
                    }
                }
                Err(why) => marker(c.line, format!("malformed waiver: {why}")),
            }
        } else {
            marker(c.line, format!("unrecognized directive `{rest}`"));
        }
    }
    if let Some(start) = open_hot {
        marker(start, "`hot` region never closed with `end-hot`".into());
    }
    out
}

/// Parses `rule[, rule]*) -- justification` (the part after `allow(`).
fn parse_allow(tail: &str) -> Result<(Vec<String>, String), String> {
    let close = tail.find(')').ok_or("missing `)` after rule list")?;
    let rules: Vec<String> = tail[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list".into());
    }
    let after = tail[close + 1..].trim_start();
    let justification = after
        .strip_prefix("--")
        .map(str::trim)
        .ok_or("missing ` -- <justification>`")?;
    if justification.is_empty() {
        return Err("empty justification".into());
    }
    Ok((rules, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_ctx() -> FileCtx<'static> {
        FileCtx {
            path: "crates/noc/src/x.rs",
            crate_name: "noc",
            in_test_dir: false,
            is_crate_root: false,
        }
    }

    fn rules_fired(report: &FileReport) -> Vec<&'static str> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn std_hash_fires_and_fnv_does_not() {
        let r = analyze_source(&sim_ctx(), "use std::collections::HashMap;\n");
        assert_eq!(rules_fired(&r), vec!["determinism/std-hash"]);
        let r = analyze_source(&sim_ctx(), "use crate::fnv::FnvHashMap;\n");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\n";
        assert!(analyze_source(&sim_ctx(), src).violations.is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod prod {\n  use std::collections::HashMap;\n}\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), src)),
            vec!["determinism/std-hash"]
        );
    }

    #[test]
    fn trailing_waiver_covers_same_line_and_is_tallied() {
        let src = "use std::collections::HashMap; // htpb-lint: allow(determinism/std-hash) -- alias definition\n";
        let r = analyze_source(&sim_ctx(), src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waived.len(), 1);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].justification, "alias definition");
    }

    #[test]
    fn standalone_waiver_covers_next_token_line() {
        let src = "// htpb-lint: allow(determinism/std-hash) -- alias definition\n\nuse std::collections::HashMap;\n";
        let r = analyze_source(&sim_ctx(), src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waived.len(), 1);
    }

    #[test]
    fn waiver_without_justification_is_a_marker_violation() {
        let src = "use std::collections::HashMap; // htpb-lint: allow(determinism/std-hash)\n";
        let fired = rules_fired(&analyze_source(&sim_ctx(), src));
        assert!(fired.contains(&"lint/marker"), "{fired:?}");
        assert!(fired.contains(&"determinism/std-hash"), "{fired:?}");
    }

    #[test]
    fn unknown_rule_id_is_a_marker_violation() {
        let src = "// htpb-lint: allow(determinism/typo) -- whoops\nfn f() {}\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), src)),
            vec!["lint/marker"]
        );
    }

    #[test]
    fn unused_waiver_is_a_marker_violation() {
        let src = "// htpb-lint: allow(determinism/std-hash) -- stale\nfn f() {}\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), src)),
            vec!["lint/marker"]
        );
    }

    #[test]
    fn marker_findings_cannot_be_waived() {
        let src = "// htpb-lint: allow(lint/marker) -- nope\nfn f() {}\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), src)),
            vec!["lint/marker"]
        );
    }

    #[test]
    fn hot_region_flags_allocations_only_inside() {
        let src = "fn cold() { let v = Vec::new(); }\n\
                   // htpb-lint: hot\n\
                   fn hot() { let x = idx + 1; }\n\
                   // htpb-lint: end-hot\n\
                   fn cold2() -> String { format!(\"x\") }\n";
        assert!(analyze_source(&sim_ctx(), src).violations.is_empty());
        let bad = "// htpb-lint: hot\nfn hot() { let v = vec![1]; }\n// htpb-lint: end-hot\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), bad)),
            vec!["alloc/hot-loop"]
        );
    }

    #[test]
    fn unclosed_hot_region_is_a_marker_violation() {
        let src = "// htpb-lint: hot\nfn f() {}\n";
        assert_eq!(
            rules_fired(&analyze_source(&sim_ctx(), src)),
            vec!["lint/marker"]
        );
    }

    #[test]
    fn forbid_unsafe_rule_checks_crate_roots_only() {
        let root = FileCtx {
            path: "crates/noc/src/lib.rs",
            crate_name: "noc",
            in_test_dir: false,
            is_crate_root: true,
        };
        let r = analyze_source(&root, "pub mod x;\n");
        assert_eq!(rules_fired(&r), vec!["unsafe/forbid-missing"]);
        let r = analyze_source(&root, "#![forbid(unsafe_code)]\npub mod x;\n");
        assert!(r.violations.is_empty());
        // Waiver anywhere in the file covers the crate-scoped finding.
        let r = analyze_source(
            &root,
            "//! docs\n// htpb-lint: allow(unsafe/forbid-missing) -- atomics layer\npub mod x;\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn obs_registration_without_class_fires() {
        let ctx = FileCtx {
            path: "crates/manycore/src/x.rs",
            crate_name: "manycore",
            in_test_dir: false,
            is_crate_root: false,
        };
        let bad = "fn f(r: &Registry) { r.counter(\"n\", \"h\", class_var); }\n";
        assert_eq!(
            rules_fired(&analyze_source(&ctx, bad)),
            vec!["obs/class-explicit"]
        );
        let good = "fn f(r: &Registry) { r.counter(\"n\", \"h\", Class::Sim); }\n";
        assert!(analyze_source(&ctx, good).violations.is_empty());
        // Nested call arguments still count as inside the registration.
        let nested = "fn f(r: &Registry) { r.histogram(\"n\", &bounds(3), \"h\", Class::Sim); }\n";
        assert!(analyze_source(&ctx, nested).violations.is_empty());
    }

    #[test]
    fn sim_placement_fires_in_harness_but_not_manycore() {
        let harness = FileCtx {
            path: "crates/harness/src/x.rs",
            crate_name: "harness",
            in_test_dir: false,
            is_crate_root: false,
        };
        let src = "fn f(r: &Registry) { r.counter(\"n\", \"h\", Class::Sim); }\n";
        assert_eq!(
            rules_fired(&analyze_source(&harness, src)),
            vec!["obs/sim-placement"]
        );
        let manycore = FileCtx {
            crate_name: "manycore",
            path: "crates/manycore/src/x.rs",
            ..harness
        };
        assert!(analyze_source(&manycore, src).violations.is_empty());
    }

    #[test]
    fn recovery_path_panic_fires_only_in_listed_files() {
        let fs = FileCtx {
            path: "crates/harness/src/fs.rs",
            crate_name: "harness",
            in_test_dir: false,
            is_crate_root: false,
        };
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_fired(&analyze_source(&fs, src)),
            vec!["panic/recovery-path"]
        );
        let other = FileCtx {
            path: "crates/harness/src/job.rs",
            ..fs
        };
        assert!(analyze_source(&other, src).violations.is_empty());
        // unwrap_or / expect_err must not fire.
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3) }\n";
        assert!(analyze_source(&fs, ok).violations.is_empty());
    }

    #[test]
    fn choke_point_exempts_fs_rs_and_tests() {
        let bench = FileCtx {
            path: "crates/bench/src/bin/x.rs",
            crate_name: "bench",
            in_test_dir: false,
            is_crate_root: true,
        };
        let src = "#![forbid(unsafe_code)]\nfn f() { std::fs::write(\"a\", b\"x\").ok(); }\n";
        assert_eq!(
            rules_fired(&analyze_source(&bench, src)),
            vec!["fs/choke-point"]
        );
        let fs = FileCtx {
            path: "crates/harness/src/fs.rs",
            crate_name: "harness",
            in_test_dir: false,
            is_crate_root: false,
        };
        assert!(
            analyze_source(&fs, "fn f() { std::fs::write(\"a\", b\"x\").ok(); }\n")
                .violations
                .is_empty()
        );
        let test = FileCtx {
            path: "crates/harness/tests/x.rs",
            crate_name: "harness",
            in_test_dir: true,
            is_crate_root: false,
        };
        assert!(
            analyze_source(&test, "fn f() { std::fs::write(\"a\", b\"x\").ok(); }\n")
                .violations
                .is_empty()
        );
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// std::collections::HashMap\n/* Instant::now() */\nlet s = \"thread_rng OpenOptions\";\nlet r = r#\"fs::write\"#;\n";
        assert!(analyze_source(&sim_ctx(), src).violations.is_empty());
    }
}
