//! `htpb-lint` — a workspace-wide static invariant analyzer.
//!
//! Every quantitative claim in this reproduction rests on source-level
//! invariants: sim crates must be deterministic (no SipHash maps, wall
//! clocks or entropy), the NoC hot loop must not allocate, every durable
//! write must go through the `crates/harness/src/fs.rs` choke point,
//! observability series must carry an explicit determinism class, and the
//! crash-recovery paths must not panic. This crate enforces all of them
//! mechanically on every PR — see `docs/LINTS.md` for the rule catalog,
//! rationale and waiver grammar.
//!
//! The analyzer is fully self-contained (hand-rolled lexer, no
//! dependencies; the workspace builds offline) and exposes a library API
//! so tests elsewhere — e.g. the harness crash-safety suite — can call
//! the *same* engine instead of keeping a private grep:
//!
//! ```no_run
//! let report = htpb_lint::analyze_workspace(std::path::Path::new(".")).unwrap();
//! assert!(report.violations.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

pub use rules::{analyze_source, rule, FileCtx, FileReport, RuleInfo, Violation, Waiver, RULES};

/// The aggregate result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Live violations across all files, in path order.
    pub violations: Vec<Violation>,
    /// Violations suppressed by justified waivers (the tally).
    pub waived: Vec<Violation>,
    /// Every justified waiver found.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean: no live violations (waived findings
    /// and their justified waivers are fine — that is what waivers are
    /// for; *unjustified* waivers surface as `lint/marker` violations and
    /// therefore fail this predicate).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Live violations for one rule (used by focused tests such as the
    /// harness choke-point gate).
    #[must_use]
    pub fn violations_for(&self, rule_id: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.rule == rule_id)
            .collect()
    }

    /// The waiver tally, one line per waiver, grouped by rule — printed by
    /// the CI gate so every standing exception stays visible in the log.
    #[must_use]
    pub fn waiver_tally(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("waivers: {}\n", self.waivers.len()));
        for info in RULES {
            let of_rule: Vec<&Waiver> = self
                .waivers
                .iter()
                .filter(|w| w.rules.iter().any(|r| r == info.id))
                .collect();
            if of_rule.is_empty() {
                continue;
            }
            out.push_str(&format!("  {} ({}):\n", info.id, of_rule.len()));
            for w in of_rule {
                out.push_str(&format!(
                    "    {}:{} -- {}\n",
                    w.file, w.line, w.justification
                ));
            }
        }
        out
    }
}

/// Analyzes every Rust source in the workspace rooted at `root`: all of
/// `crates/*/`, plus the top-level `tests/` and `examples/` trees (which
/// belong to `htpb-core` targets). `vendor/` is out of scope — it holds
/// API stand-ins for external crates, not this project's invariants — and
/// so is the lint fixture corpus (`crates/lint/tests/fixtures/`), which
/// exists precisely to contain violations.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&crates_dir, &mut files)?;
    for top in ["tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let ctx = classify(&rel);
        let file_report = analyze_source(&ctx, &src);
        report.violations.extend(file_report.violations);
        report.waived.extend(file_report.waived);
        report.waivers.extend(file_report.waivers);
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Derives the analysis context from a workspace-relative path.
#[must_use]
pub fn classify(rel: &str) -> FileCtx<'_> {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1]
    } else {
        // Top-level tests/ and examples/ compile as htpb-core targets.
        "core"
    };
    let in_test_dir = parts.first() == Some(&"tests")
        || parts.first() == Some(&"examples")
        || parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
    let is_crate_root = rel.ends_with("src/lib.rs")
        || rel.ends_with("src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"));
    FileCtx {
        path: rel_leak(rel),
        crate_name: rel_leak(crate_name),
        in_test_dir,
        is_crate_root,
    }
}

/// `FileCtx` borrows `&str`s; when classifying owned paths from the
/// walker the tiny per-file strings are simply leaked (the process is a
/// short-lived analyzer — bounded by the number of files it scans).
fn rel_leak(s: &str) -> &'static str {
    Box::leak(s.to_string().into_boxed_str())
}

/// Recursively collects `.rs` files, skipping fixture corpora and build
/// output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_paths_to_contexts() {
        let c = classify("crates/noc/src/network.rs");
        assert_eq!(c.crate_name, "noc");
        assert!(!c.in_test_dir);
        assert!(!c.is_crate_root);

        let c = classify("crates/harness/tests/crash_safety.rs");
        assert!(c.in_test_dir);

        let c = classify("crates/bench/src/bin/repro_all.rs");
        assert_eq!(c.crate_name, "bench");
        assert!(c.is_crate_root);
        assert!(!c.in_test_dir);

        let c = classify("tests/integration_noc.rs");
        assert_eq!(c.crate_name, "core");
        assert!(c.in_test_dir);

        let c = classify("crates/lint/src/lib.rs");
        assert!(c.is_crate_root);
    }

    #[test]
    fn waiver_tally_groups_by_rule() {
        let mut report = Report::default();
        report.waivers.push(Waiver {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            target_line: 3,
            rules: vec!["fs/choke-point".into()],
            justification: "child stdio log".into(),
        });
        let tally = report.waiver_tally();
        assert!(tally.contains("waivers: 1"));
        assert!(tally.contains("fs/choke-point (1):"));
        assert!(tally.contains("crates/x/src/a.rs:3 -- child stdio log"));
    }
}
