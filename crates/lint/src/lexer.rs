//! A hand-rolled, dependency-free token-level lexer for Rust source.
//!
//! The analyzer's rules match *token* sequences, never raw text, so a
//! forbidden name inside a string literal, a raw string, a char literal or
//! a (possibly nested) block comment can never trip a rule. The lexer is
//! deliberately lossy — it does not distinguish keywords from identifiers
//! and folds every literal into one kind — because the rules only need
//! identifier text, punctuation and accurate line numbers.
//!
//! Comments are not discarded: they are returned as a parallel stream so
//! the waiver grammar (`// htpb-lint: allow(<rule>) -- <why>`) and the
//! hot-region markers (`// htpb-lint: hot` / `// htpb-lint: end-hot`) can
//! be resolved against the token stream (see [`crate::waiver`]).

/// What a significant token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unsafe_code`, ...).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct(char),
    /// String / raw string / byte-string / char / numeric literal.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One significant token: kind, source text and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// True when the token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// One comment: its text (delimiters stripped) and the line it starts on.
/// `block` distinguishes `/* ... */` from `// ...` (waivers and region
/// markers are only honoured in line comments, where their extent is
/// unambiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment<'a> {
    pub text: &'a str,
    pub line: u32,
    pub block: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub tokens: Vec<Tok<'a>>,
    pub comments: Vec<Comment<'a>>,
    /// Total number of lines in the file (1-based count).
    pub lines: u32,
}

impl Lexed<'_> {
    /// The smallest token line strictly greater than `line`, if any.
    /// Used to resolve which line a standalone waiver comment covers.
    #[must_use]
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }

    /// True when any significant token sits on `line`.
    #[must_use]
    pub fn has_token_on(&self, line: u32) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Lexes `src` into significant tokens plus comments. Never panics on any
/// input: unterminated strings/comments simply run to end of file (the
/// compiler will reject such a file anyway; the lexer's job is only to
/// never mis-classify what follows).
#[must_use]
pub fn lex(src: &str) -> Lexed<'_> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed<'a>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed<'a> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let start = self.pos;
                    self.string_literal_from(start);
                }
                b'\'' => self.char_or_lifetime(),
                b'#' | b'!' | b'[' | b']' | b'(' | b')' | b'{' | b'}' | b':' | b';' | b','
                | b'.' | b'<' | b'>' | b'=' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|'
                | b'^' | b'?' | b'@' | b'$' | b'~' => {
                    self.push_tok(TokKind::Punct(b as char), self.pos, self.pos + 1);
                    self.pos += 1;
                }
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident_or_prefixed_string(),
                _ => self.pos += 1, // whitespace, or mid-UTF-8 byte
            }
        }
        self.out.lines = self.line;
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push_tok(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.tokens.push(Tok {
            kind,
            text: &self.src[start..end],
            line: self.line,
        });
    }

    /// `// ...` to end of line. The delimiting slashes (and any further
    /// leading `/` from doc comments) are stripped from the text.
    fn line_comment(&mut self) {
        let start_line = self.line;
        let mut body = self.pos + 2;
        // `///` and `//!` are still comments; strip the extra marker.
        while self.bytes.get(body) == Some(&b'/') || self.bytes.get(body) == Some(&b'!') {
            body += 1;
        }
        let mut end = body;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            text: self.src[body..end].trim(),
            line: start_line,
            block: false,
        });
        self.pos = end; // leave the newline for the main loop
    }

    /// `/* ... */` with arbitrary nesting, possibly spanning lines.
    fn block_comment(&mut self) {
        let start_line = self.line;
        let body = self.pos + 2;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        let end = if depth == 0 { self.pos - 2 } else { self.pos };
        self.out.comments.push(Comment {
            text: self.src[body..end].trim(),
            line: start_line,
            block: true,
        });
    }

    /// `r"..."`, `r#"..."#` (any number of hashes), closed only by a quote
    /// followed by the same number of hashes. No escapes inside.
    fn raw_string(&mut self, start: usize) {
        // self.pos sits on the `r`'s successor: count hashes, expect `"`.
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#foo` raw identifier, not a string: emit the ident lexed so
            // far and let the main loop continue after the hashes.
            self.push_tok(TokKind::Ident, start, self.pos);
            return;
        }
        let open_line = self.line;
        self.pos += 1;
        loop {
            if self.pos >= self.bytes.len() {
                break;
            }
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let mut seen = 0usize;
                    while seen < hashes && self.bytes.get(self.pos + 1 + seen) == Some(&b'#') {
                        seen += 1;
                    }
                    if seen == hashes {
                        self.pos += 1 + hashes;
                        let end = self.pos.min(self.bytes.len());
                        self.out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: &self.src[start..end],
                            line: open_line,
                        });
                        return;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Literal,
            text: &self.src[start..],
            line: open_line,
        });
    }

    /// `'a` lifetime vs `'x'` / `'\n'` char literal.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = matches!(next, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z'))
            && after != Some(b'\'')
            && next != Some(b'\\');
        if is_lifetime {
            self.pos += 1;
            let id_start = self.pos;
            while matches!(
                self.peek(0),
                Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            self.push_tok(TokKind::Lifetime, id_start, self.pos);
            return;
        }
        // Char literal: consume until the closing quote, honouring escapes.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    self.push_tok(TokKind::Literal, start, self.pos.min(self.bytes.len()));
                    return;
                }
                b'\n' => {
                    // `'` used as something else (macros); treat as punct.
                    self.out.tokens.push(Tok {
                        kind: TokKind::Punct('\''),
                        text: &self.src[start..start + 1],
                        line: self.line,
                    });
                    self.pos = start + 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
        self.push_tok(TokKind::Literal, start, self.bytes.len());
    }

    /// `123`, `0xff`, `1.5e-3`, `1_000u64` — one Literal token. Careful
    /// around `0..10` (range) and `1.max(2)` (method call on an integer):
    /// a `.` is only part of the number when followed by a digit.
    fn number(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_')
        ) {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            self.pos += 1;
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                self.pos += 1;
            }
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
                if matches!(self.peek(1 + sign), Some(b'0'..=b'9')) {
                    self.pos += 1 + sign;
                    while matches!(self.peek(0), Some(b'0'..=b'9' | b'_')) {
                        self.pos += 1;
                    }
                }
            }
            // Type suffix (`1.5f64`).
            while matches!(self.peek(0), Some(b'a'..=b'z' | b'0'..=b'9' | b'_')) {
                self.pos += 1;
            }
        }
        self.push_tok(TokKind::Literal, start, self.pos);
    }

    /// An identifier — unless it is one of the string prefixes `r`, `b`,
    /// `br`, `rb` immediately followed by a string opener, in which case
    /// the whole thing lexes as one literal.
    fn ident_or_prefixed_string(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match (text, self.peek(0)) {
            ("r" | "br" | "rb", Some(b'"' | b'#')) => self.raw_string(start),
            ("b", Some(b'"')) => self.string_literal_from(start),
            ("b", Some(b'\'')) => {
                // Byte char `b'x'`: skip prefix, lex as char literal.
                self.char_or_lifetime_from(start);
            }
            _ => self.push_tok(TokKind::Ident, start, self.pos),
        }
    }

    /// Plain string lexing where the token starts at `start` (used for the
    /// `b"..."` prefix). `self.pos` sits on the opening quote.
    fn string_literal_from(&mut self, start: usize) {
        self.pos += 1; // opening quote
        let open_line = self.line;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        self.out.tokens.push(Tok {
            kind: TokKind::Literal,
            text: &self.src[start..end],
            line: open_line,
        });
    }

    /// Char-literal lexing where the token starts at `start` (for `b'x'`).
    /// `self.pos` sits on the opening quote.
    fn char_or_lifetime_from(&mut self, start: usize) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break,
                _ => self.pos += 1,
            }
        }
        self.push_tok(TokKind::Literal, start, self.pos.min(self.bytes.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(idents(r#"let x = "HashMap::new()";"#), vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_hide_identifiers_and_quotes() {
        let src = "let x = r#\"a \" quote and HashMap\"#; let y = 1;";
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn nested_block_comments_hide_identifiers() {
        let src = "/* outer /* HashMap */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn line_comments_are_collected_with_lines() {
        let src = "fn f() {}\n// htpb-lint: hot\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "htpb-lint: hot");
        assert_eq!(lexed.comments[0].line, 2);
        assert!(!lexed.comments[0].block);
    }

    #[test]
    fn char_literal_with_quote_escape_does_not_derail() {
        assert_eq!(
            idents(r"let c = '\''; let d = 'x';"),
            vec!["let", "c", "let", "d"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        // Everything after the lifetimes still lexes (no swallowed tail).
        assert!(idents(src).contains(&"str"));
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let src = "let a = 1.max(2); for i in 0..10 { } let f = 1.5e-3f64;";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3, "1.max dot plus the two range dots");
    }

    #[test]
    fn multiline_strings_keep_line_numbers_accurate() {
        let src = "let s = \"line one\nline two\";\nlet HashMap = 3;\n";
        let lexed = lex(src);
        let hm = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("HashMap"))
            .expect("ident after the string");
        assert_eq!(hm.line, 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"HashMap\"; let b2 = b'x'; fn g() {}";
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "fn", "g"]);
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in ["\"abc", "r#\"abc", "/* open /* deeper", "'", "b\"x", "1.5e"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// says HashMap\n//! also HashMap\nstruct S;";
        assert_eq!(idents(src), vec!["struct", "S"]);
        assert_eq!(lex(src).comments.len(), 2);
    }
}
