//! Property-based tests of the Trojan circuit: the triggering module's
//! match conditions are exact — no packet outside the specified trigger set
//! is ever modified, and every packet inside it is.

use proptest::prelude::*;

use htpb_noc::{ActivationSignal, InspectOutcome, NodeId, Packet, PacketInspector, PacketKind};
use htpb_trojan::{ActivationSchedule, BoostRule, HardwareTrojan, TamperRule, TrojanFleet};

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::PowerReq),
        Just(PacketKind::PowerGrant),
        Just(PacketKind::Data),
        Just(PacketKind::Meta),
    ]
}

fn arb_rule() -> impl Strategy<Value = TamperRule> {
    prop_oneof![
        Just(TamperRule::Zero),
        (0u8..=100).prop_map(TamperRule::ScalePercent),
        any::<u32>().prop_map(TamperRule::ClampTo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The triggering condition is exact: a configured, armed Trojan
    /// modifies a packet iff it is a POWER_REQ, addressed to the stored
    /// manager, from a non-attacker — and the rewrite only ever shrinks the
    /// payload.
    #[test]
    fn trigger_condition_is_exact(
        rule in arb_rule(),
        kind in arb_kind(),
        src in 0u16..64,
        dst in 0u16..64,
        payload in any::<u32>(),
        manager in 0u16..64,
        attacker in 0u16..64,
    ) {
        let node = NodeId(7);
        let mut ht = HardwareTrojan::new(node, rule);
        let mut cfg = Packet::config_command(
            NodeId(attacker), node, NodeId(manager), ActivationSignal::On);
        ht.inspect(node, 0, &mut cfg);

        let mut packet = Packet::new(NodeId(src), NodeId(dst), kind, payload);
        let before = packet;
        let out: InspectOutcome = ht.inspect(node, 1, &mut packet);

        let should_match = kind == PacketKind::PowerReq
            && dst == manager
            && src != attacker;
        if should_match {
            // Modified iff the rule actually changes the value.
            let expected = rule.apply(payload);
            prop_assert_eq!(packet.payload(), expected);
            prop_assert_eq!(out.modified, expected != payload);
            prop_assert!(packet.payload() <= payload, "suppression only shrinks");
            // Headers never touched.
            prop_assert_eq!(packet.src(), before.src());
            prop_assert_eq!(packet.dst(), before.dst());
            prop_assert_eq!(packet.kind(), before.kind());
        } else {
            prop_assert!(!out.modified);
            prop_assert_eq!(packet, before);
        }
    }

    /// An unconfigured or disarmed Trojan never touches anything.
    #[test]
    fn inert_states_never_modify(
        rule in arb_rule(),
        kind in arb_kind(),
        src in 0u16..64,
        dst in 0u16..64,
        payload in any::<u32>(),
        disarm in any::<bool>(),
    ) {
        let node = NodeId(3);
        let mut ht = HardwareTrojan::new(node, rule);
        if disarm {
            let mut cfg = Packet::config_command(
                NodeId(9), node, NodeId(0), ActivationSignal::Off);
            ht.inspect(node, 0, &mut cfg);
        }
        let mut packet = Packet::new(NodeId(src), NodeId(dst), kind, payload);
        let before = packet;
        prop_assert!(!ht.inspect(node, 1, &mut packet).modified);
        prop_assert_eq!(packet, before);
    }

    /// Boost only grows attacker payloads and never touches anyone else's
    /// beyond the suppression rule.
    #[test]
    fn boost_monotonicity(
        percent in 100u16..1000,
        payload in any::<u32>(),
        src in 0u16..64,
        manager in 0u16..64,
        attacker in 0u16..64,
    ) {
        prop_assume!(src != manager);
        let node = NodeId(1);
        let mut ht = HardwareTrojan::new(node, TamperRule::Zero)
            .with_boost(BoostRule::new(percent));
        let mut cfg = Packet::config_command(
            NodeId(attacker), node, NodeId(manager), ActivationSignal::On);
        ht.inspect(node, 0, &mut cfg);
        let mut packet = Packet::power_request(NodeId(src), NodeId(manager), payload);
        ht.inspect(node, 1, &mut packet);
        if src == attacker {
            prop_assert!(packet.payload() >= payload, "boost never shrinks");
        } else {
            prop_assert_eq!(packet.payload(), 0, "victims still zeroed");
        }
    }

    /// Fleet-level schedule gating: with any duty-cycle schedule, packets
    /// scanned in OFF windows pass unmodified and ON windows behave like
    /// an always-on fleet.
    #[test]
    fn schedule_gating_is_cycle_accurate(
        on in 0u64..50,
        period in 1u64..50,
        cycle in 0u64..1000,
        payload in 1u32..u32::MAX,
    ) {
        let schedule = ActivationSchedule::DutyCycle { on, period };
        let mut fleet = TrojanFleet::new(&[NodeId(2)], TamperRule::Zero)
            .with_schedule(schedule);
        fleet.configure_all(&[NodeId(9)], NodeId(0), true);
        let mut packet = Packet::power_request(NodeId(5), NodeId(0), payload);
        let out = fleet.inspect(NodeId(2), cycle, &mut packet);
        prop_assert_eq!(out.modified, schedule.active_at(cycle));
        if !schedule.active_at(cycle) {
            prop_assert_eq!(packet.payload(), payload);
        } else {
            prop_assert_eq!(packet.payload(), 0);
        }
    }
}
