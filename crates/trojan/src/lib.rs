//! Behavioural model of the power-budget hardware Trojan of the SOCC 2018
//! paper (Section III).
//!
//! The Trojan is a tiny circuit — three comparators and two registers —
//! implanted between a router's input buffer and its routing-computation
//! stage (Fig. 2). It is configured in-band by `CONFIG_CMD` packets
//! broadcast by the attacker (Fig. 1b), which load the global manager's id
//! and the attacker's id into the Trojan's registers and set its activation
//! state. Once armed, the Trojan rewrites the payload of every `POWER_REQ`
//! packet that (a) is addressed to the global manager and (b) does not
//! originate from the attacker — starving every other application of power.
//!
//! The crate provides:
//! - [`HardwareTrojan`]: one register/comparator-accurate Trojan instance,
//!   with optional extensions — the intro's attacker-request [`BoostRule`]
//!   and a [`TrojanMode::PacketDrop`] baseline for the Section II-B
//!   attack-class comparison;
//! - [`TrojanFleet`]: a set of Trojans implanted across the mesh, usable as
//!   a [`htpb_noc::PacketInspector`];
//! - [`ActivationSchedule`]: duty-cycled activation, equivalent to the
//!   paper's stream of alternating ON/OFF configuration packets
//!   (Section III-B);
//! - [`area`]: the silicon area / power accounting of Section III-D.
//!
//! ```
//! use htpb_noc::{ActivationSignal, NodeId, Packet, PacketInspector};
//! use htpb_trojan::{HardwareTrojan, TamperRule};
//!
//! let mut ht = HardwareTrojan::new(NodeId(5), TamperRule::Zero);
//! // The attacker (node 9) broadcasts a CONFIG_CMD naming manager node 0.
//! let mut cfg = Packet::config_command(NodeId(9), NodeId(5), NodeId(0), ActivationSignal::On);
//! ht.inspect(NodeId(5), 0, &mut cfg);
//! // A victim's power request through node 5 is zeroed.
//! let mut req = Packet::power_request(NodeId(3), NodeId(0), 2_500);
//! let out = ht.inspect(NodeId(5), 1, &mut req);
//! assert!(out.modified);
//! assert_eq!(req.payload(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod circuit;
mod fleet;
mod schedule;

pub use area::{AreaReport, HT_AREA_UM2, HT_POWER_UW, ROUTER_AREA_UM2, ROUTER_POWER_UW};
pub use circuit::{BoostRule, HardwareTrojan, TamperRule, TrojanMode, TrojanState};
pub use fleet::{FleetStats, TrojanFleet};
pub use schedule::ActivationSchedule;
