//! Silicon area and power accounting of the Trojan (Section III-D).
//!
//! The paper reports synthesis results from Synopsys Design Compiler under
//! a 45 nm TSMC library for the Trojan, and DSENT numbers for a baseline
//! router with 4 virtual channels and 5-flit FIFOs. We record those
//! constants and reproduce the paper's derived ratios exactly — this is the
//! paper's stealth argument: the Trojan is ~0.017 % of one router's area
//! and ~0.0017 % of its power, far below the detection floor of area- and
//! power-based offline Trojan detection.

/// Area of one hardware Trojan in µm² (Synopsys DC, 45 nm TSMC).
pub const HT_AREA_UM2: f64 = 12.1716;

/// Power of one hardware Trojan in µW (Synopsys DC, 45 nm TSMC).
pub const HT_POWER_UW: f64 = 0.55018;

/// Area of one router (4 VCs, 5-flit FIFOs) in µm², from DSENT.
pub const ROUTER_AREA_UM2: f64 = 71_814.0;

/// Power of one router in µW, from DSENT.
pub const ROUTER_POWER_UW: f64 = 31_881.0;

/// Area/power overhead report for a set of Trojans implanted in a chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Number of implanted Trojans.
    pub num_trojans: usize,
    /// Number of routers in the chip (one per node).
    pub num_routers: usize,
}

impl AreaReport {
    /// Creates a report for `num_trojans` Trojans in a `num_routers`-router
    /// chip.
    #[must_use]
    pub fn new(num_trojans: usize, num_routers: usize) -> Self {
        AreaReport {
            num_trojans,
            num_routers,
        }
    }

    /// Total Trojan area in µm².
    #[must_use]
    pub fn trojan_area_um2(&self) -> f64 {
        self.num_trojans as f64 * HT_AREA_UM2
    }

    /// Total Trojan power in µW.
    #[must_use]
    pub fn trojan_power_uw(&self) -> f64 {
        self.num_trojans as f64 * HT_POWER_UW
    }

    /// Total router area in µm².
    #[must_use]
    pub fn router_area_um2(&self) -> f64 {
        self.num_routers as f64 * ROUTER_AREA_UM2
    }

    /// Total router power in µW.
    #[must_use]
    pub fn router_power_uw(&self) -> f64 {
        self.num_routers as f64 * ROUTER_POWER_UW
    }

    /// Trojan area as a fraction of total router area.
    #[must_use]
    pub fn area_fraction(&self) -> f64 {
        self.trojan_area_um2() / self.router_area_um2()
    }

    /// Trojan power as a fraction of total router power.
    #[must_use]
    pub fn power_fraction(&self) -> f64 {
        self.trojan_power_uw() / self.router_power_uw()
    }
}

impl std::fmt::Display for AreaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} HT(s) in {} routers: area {:.4} um^2 ({:.4}% of routers), power {:.4} uW ({:.5}% of routers)",
            self.num_trojans,
            self.num_routers,
            self.trojan_area_um2(),
            self.area_fraction() * 100.0,
            self.trojan_power_uw(),
            self.power_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ht_ratios_match_paper() {
        // "an HT's area and power is about 0.017% and 0.0017% of a single
        // router" (Section III-D).
        let r = AreaReport::new(1, 1);
        assert!((r.area_fraction() * 100.0 - 0.017).abs() < 0.001);
        assert!((r.power_fraction() * 100.0 - 0.0017).abs() < 0.0002);
    }

    #[test]
    fn sixty_ht_chip_matches_paper() {
        // "60 HTs ... area is about 730.296 um2 and consume 33.0108 uW;
        // ... about 0.002% and 0.0002% of all routers in a 512-node chip."
        let r = AreaReport::new(60, 512);
        assert!((r.trojan_area_um2() - 730.296).abs() < 0.001);
        assert!((r.trojan_power_uw() - 33.0108).abs() < 0.0001);
        assert!((r.area_fraction() * 100.0 - 0.002).abs() < 0.0005);
        assert!((r.power_fraction() * 100.0 - 0.0002).abs() < 0.00005);
    }

    #[test]
    fn display_is_humane() {
        let s = AreaReport::new(60, 512).to_string();
        assert!(s.contains("60 HT(s)"));
        assert!(s.contains("512 routers"));
    }
}
