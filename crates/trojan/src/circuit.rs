use htpb_noc::{InspectOutcome, NodeId, Packet, PacketInspector, PacketKind};

/// What the Trojan's functional module writes into a matched `POWER_REQ`
/// payload (Section III-C: "the power request is changed to a smaller
/// value"; Fig. 2a shows the modified payload as `0…0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TamperRule {
    /// Overwrite the payload with zero — the all-zeros value of Fig. 2a and
    /// the most damaging rule.
    Zero,
    /// Scale the payload down to `percent`% of its value (values above 100
    /// are clamped to 100 at construction sites; the functional module only
    /// shrinks requests).
    ScalePercent(u8),
    /// Clamp the payload to at most `max` milliwatts.
    ClampTo(u32),
}

impl TamperRule {
    /// Applies the rule to a payload value.
    #[must_use]
    pub fn apply(self, payload: u32) -> u32 {
        match self {
            TamperRule::Zero => 0,
            TamperRule::ScalePercent(pct) => {
                let pct = u64::from(pct.min(100));
                (u64::from(payload) * pct / 100) as u32
            }
            TamperRule::ClampTo(max) => payload.min(max),
        }
    }
}

/// The optional attacker-side rule of the functional module: the paper's
/// introduction notes that "power requests from the malicious applications
/// … will be increased … to higher value than what were actually
/// requested". This is the dual of [`TamperRule`]: it applies to packets
/// whose source *is* a registered attacker agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoostRule {
    /// Payload multiplier in percent (≥ 100; values below are clamped to
    /// 100 at application time — the boost module only grows requests).
    pub percent: u16,
}

impl BoostRule {
    /// Creates a boost rule.
    #[must_use]
    pub fn new(percent: u16) -> Self {
        BoostRule { percent }
    }

    /// Applies the boost to a payload value (saturating).
    #[must_use]
    pub fn apply(self, payload: u32) -> u32 {
        let pct = u64::from(self.percent.max(100));
        (u64::from(payload) * pct / 100).min(u64::from(u32::MAX)) as u32
    }
}

/// Which DoS class the Trojan's functional module implements.
///
/// The paper's Section II-B taxonomy lists false-data *and* packet-drop
/// attacks; its contribution is the false-data variant (stealthier: the
/// manager still sees a plausible request stream). The drop variant is
/// provided as the comparison baseline — it is strictly easier to detect,
/// since the manager notices requesters going silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrojanMode {
    /// Rewrite matched payloads (the paper's attack).
    #[default]
    FalseData,
    /// Silently sink matched packets (Section II-B class 2 baseline).
    PacketDrop,
}

/// The configuration registers plus activation latch of one Trojan
/// (Fig. 2a). All start empty: an unconfigured Trojan is electrically inert.
///
/// Deviation from the figure, documented in DESIGN.md §4: Fig. 2a draws a
/// single attacker-agent id register, but the paper's evaluation runs
/// attacker *applications* with 64 threads whose requests must all pass
/// untampered (Fig. 6 shows attacker performance improving). We therefore
/// model the agent register as a small content-addressable set, filled by
/// one `CONFIG_CMD` broadcast per agent core — in silicon, a k-entry CAM of
/// 16-bit ids, still negligibly small next to a router.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrojanState {
    /// Global-manager id register (first `CONFIG_CMD` wins, per
    /// Section III-B "the HT stores [the ids] … if it has not done so").
    pub manager: Option<NodeId>,
    /// Attacker-agent id CAM, loaded from `CONFIG_CMD` source fields.
    pub attackers: std::collections::BTreeSet<NodeId>,
    /// Activation latch, rewritten by every `CONFIG_CMD`'s activation signal.
    pub active: bool,
}

impl TrojanState {
    /// Whether `node` is registered as an attacker agent.
    #[must_use]
    pub fn is_attacker(&self, node: NodeId) -> bool {
        self.attackers.contains(&node)
    }
}

/// One hardware Trojan implanted in one router.
///
/// The triggering module is three comparators (Fig. 2a):
/// 1. packet type == `CONFIG_CMD` → (re)configure;
/// 2. destination == stored global-manager id;
/// 3. source != stored attacker id;
///
/// and the functional module rewrites the payload when 2 ∧ 3 hold while the
/// activation latch is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareTrojan {
    node: NodeId,
    state: TrojanState,
    rule: TamperRule,
    boost: Option<BoostRule>,
    mode: TrojanMode,
    packets_seen: u64,
    packets_modified: u64,
    configs_received: u64,
}

impl HardwareTrojan {
    /// Creates an unconfigured Trojan implanted at `node`.
    #[must_use]
    pub fn new(node: NodeId, rule: TamperRule) -> Self {
        HardwareTrojan {
            node,
            state: TrojanState::default(),
            rule,
            boost: None,
            mode: TrojanMode::FalseData,
            packets_seen: 0,
            packets_modified: 0,
            configs_received: 0,
        }
    }

    /// Adds the attacker-side boost extension (see [`BoostRule`]).
    #[must_use]
    pub fn with_boost(mut self, boost: BoostRule) -> Self {
        self.boost = Some(boost);
        self
    }

    /// Selects the DoS class (see [`TrojanMode`]).
    #[must_use]
    pub fn with_mode(mut self, mode: TrojanMode) -> Self {
        self.mode = mode;
        self
    }

    /// The Trojan's DoS class.
    #[must_use]
    pub fn mode(&self) -> TrojanMode {
        self.mode
    }

    /// The router this Trojan is implanted in.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current register/latch contents.
    #[must_use]
    pub fn state(&self) -> &TrojanState {
        &self.state
    }

    /// The functional module's tamper rule.
    #[must_use]
    pub fn rule(&self) -> TamperRule {
        self.rule
    }

    /// Packet headers scanned by the triggering module.
    #[must_use]
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Payloads rewritten by the functional module.
    #[must_use]
    pub fn packets_modified(&self) -> u64 {
        self.packets_modified
    }

    /// `CONFIG_CMD` packets absorbed into the registers.
    #[must_use]
    pub fn configs_received(&self) -> u64 {
        self.configs_received
    }

    /// Processes one packet header, optionally rewriting it; `gated_active`
    /// lets a fleet-level [`crate::ActivationSchedule`] overlay duty-cycled
    /// operation (equivalent to the attacker alternating ON/OFF config
    /// packets, Section III-B).
    pub fn scan(&mut self, packet: &mut Packet, gated_active: bool) -> InspectOutcome {
        self.packets_seen += 1;
        match packet.kind() {
            PacketKind::ConfigCmd(cmd) => {
                // Comparator 1 matched: latch configuration. Ids are
                // first-write-wins; the activation latch follows every
                // command.
                self.configs_received += 1;
                if self.state.manager.is_none() {
                    self.state.manager = Some(cmd.manager);
                }
                self.state.attackers.insert(packet.src());
                self.state.active = cmd.activation == htpb_noc::ActivationSignal::On;
                InspectOutcome::untouched()
            }
            PacketKind::PowerReq => {
                if !self.state.active || !gated_active {
                    return InspectOutcome::untouched();
                }
                let Some(manager) = self.state.manager else {
                    return InspectOutcome::untouched();
                };
                if packet.dst() != manager {
                    return InspectOutcome::untouched();
                }
                // Comparator 3 splits the functional module: suppression
                // (or dropping) for everyone else, optional boost for the
                // attacker's own requests.
                if self.state.is_attacker(packet.src()) {
                    let new = match self.boost {
                        Some(b) => b.apply(packet.payload()),
                        None => packet.payload(),
                    };
                    if new != packet.payload() {
                        packet.set_payload(new);
                        self.packets_modified += 1;
                        return InspectOutcome::tampered();
                    }
                    return InspectOutcome::untouched();
                }
                match self.mode {
                    TrojanMode::FalseData => {
                        let new = self.rule.apply(packet.payload());
                        if new != packet.payload() {
                            packet.set_payload(new);
                            self.packets_modified += 1;
                            return InspectOutcome::tampered();
                        }
                        InspectOutcome::untouched()
                    }
                    TrojanMode::PacketDrop => {
                        self.packets_modified += 1;
                        InspectOutcome::dropped()
                    }
                }
            }
            _ => InspectOutcome::untouched(),
        }
    }
}

impl PacketInspector for HardwareTrojan {
    fn inspect(&mut self, router: NodeId, _cycle: u64, packet: &mut Packet) -> InspectOutcome {
        if router != self.node {
            return InspectOutcome::untouched();
        }
        self.scan(packet, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_noc::ActivationSignal;

    const MANAGER: NodeId = NodeId(0);
    const ATTACKER: NodeId = NodeId(9);
    const VICTIM: NodeId = NodeId(3);
    const HT_NODE: NodeId = NodeId(5);

    fn configured(rule: TamperRule) -> HardwareTrojan {
        let mut ht = HardwareTrojan::new(HT_NODE, rule);
        let mut cfg = Packet::config_command(ATTACKER, HT_NODE, MANAGER, ActivationSignal::On);
        ht.inspect(HT_NODE, 0, &mut cfg);
        ht
    }

    #[test]
    fn unconfigured_trojan_is_inert() {
        let mut ht = HardwareTrojan::new(HT_NODE, TamperRule::Zero);
        let mut req = Packet::power_request(VICTIM, MANAGER, 1_000);
        let out = ht.inspect(HT_NODE, 0, &mut req);
        assert!(!out.modified);
        assert_eq!(req.payload(), 1_000);
        assert_eq!(ht.state(), &TrojanState::default());
    }

    #[test]
    fn config_packet_loads_registers() {
        let ht = configured(TamperRule::Zero);
        assert_eq!(ht.state().manager, Some(MANAGER));
        assert!(ht.state().is_attacker(ATTACKER));
        assert!(ht.state().active);
        assert_eq!(ht.configs_received(), 1);
    }

    #[test]
    fn victim_request_to_manager_is_zeroed() {
        let mut ht = configured(TamperRule::Zero);
        let mut req = Packet::power_request(VICTIM, MANAGER, 2_345);
        let out = ht.inspect(HT_NODE, 1, &mut req);
        assert!(out.modified);
        assert_eq!(req.payload(), 0);
        assert_eq!(ht.packets_modified(), 1);
    }

    #[test]
    fn attacker_request_passes_untouched() {
        let mut ht = configured(TamperRule::Zero);
        let mut req = Packet::power_request(ATTACKER, MANAGER, 2_345);
        let out = ht.inspect(HT_NODE, 1, &mut req);
        assert!(!out.modified);
        assert_eq!(req.payload(), 2_345);
    }

    #[test]
    fn request_to_non_manager_passes_untouched() {
        let mut ht = configured(TamperRule::Zero);
        let mut req = Packet::power_request(VICTIM, NodeId(12), 2_345);
        assert!(!ht.inspect(HT_NODE, 1, &mut req).modified);
        assert_eq!(req.payload(), 2_345);
    }

    #[test]
    fn other_routers_packets_not_scanned() {
        let mut ht = configured(TamperRule::Zero);
        let mut req = Packet::power_request(VICTIM, MANAGER, 2_345);
        assert!(!ht.inspect(NodeId(6), 1, &mut req).modified);
        assert_eq!(req.payload(), 2_345);
    }

    #[test]
    fn off_signal_deactivates() {
        let mut ht = configured(TamperRule::Zero);
        let mut off = Packet::config_command(ATTACKER, HT_NODE, MANAGER, ActivationSignal::Off);
        ht.inspect(HT_NODE, 2, &mut off);
        assert!(!ht.state().active);
        let mut req = Packet::power_request(VICTIM, MANAGER, 777);
        assert!(!ht.inspect(HT_NODE, 3, &mut req).modified);
        // Re-activating resumes the attack.
        let mut on = Packet::config_command(ATTACKER, HT_NODE, MANAGER, ActivationSignal::On);
        ht.inspect(HT_NODE, 4, &mut on);
        assert!(ht.inspect(HT_NODE, 5, &mut req).modified);
    }

    #[test]
    fn manager_register_is_first_write_wins_agents_accumulate() {
        let mut ht = configured(TamperRule::Zero);
        let mut second =
            Packet::config_command(NodeId(50), HT_NODE, NodeId(60), ActivationSignal::On);
        ht.inspect(HT_NODE, 2, &mut second);
        assert_eq!(
            ht.state().manager,
            Some(MANAGER),
            "manager first-write-wins"
        );
        assert!(ht.state().is_attacker(ATTACKER));
        assert!(
            ht.state().is_attacker(NodeId(50)),
            "second agent registered"
        );
        // Both agents' requests now pass untouched.
        let mut req = Packet::power_request(NodeId(50), MANAGER, 100);
        assert!(!ht.inspect(HT_NODE, 3, &mut req).modified);
    }

    #[test]
    fn scale_rule_shrinks_payload() {
        let mut ht = configured(TamperRule::ScalePercent(25));
        let mut req = Packet::power_request(VICTIM, MANAGER, 2_000);
        assert!(ht.inspect(HT_NODE, 1, &mut req).modified);
        assert_eq!(req.payload(), 500);
    }

    #[test]
    fn clamp_rule_only_modifies_above_threshold() {
        let mut ht = configured(TamperRule::ClampTo(1_000));
        let mut small = Packet::power_request(VICTIM, MANAGER, 800);
        assert!(!ht.inspect(HT_NODE, 1, &mut small).modified);
        assert_eq!(small.payload(), 800);
        let mut big = Packet::power_request(VICTIM, MANAGER, 3_000);
        assert!(ht.inspect(HT_NODE, 2, &mut big).modified);
        assert_eq!(big.payload(), 1_000);
    }

    #[test]
    fn tamper_rule_arithmetic() {
        assert_eq!(TamperRule::Zero.apply(u32::MAX), 0);
        assert_eq!(TamperRule::ScalePercent(50).apply(u32::MAX), u32::MAX / 2);
        assert_eq!(TamperRule::ScalePercent(100).apply(123), 123);
        assert_eq!(TamperRule::ScalePercent(200).apply(123), 123, "clamped");
        assert_eq!(TamperRule::ClampTo(10).apply(5), 5);
        assert_eq!(TamperRule::ClampTo(10).apply(15), 10);
    }

    #[test]
    fn gated_inactive_suppresses_tampering() {
        let mut ht = configured(TamperRule::Zero);
        let mut req = Packet::power_request(VICTIM, MANAGER, 999);
        let out = ht.scan(&mut req, false);
        assert!(!out.modified);
        assert_eq!(req.payload(), 999);
    }

    #[test]
    fn boost_rule_arithmetic() {
        assert_eq!(BoostRule::new(150).apply(1_000), 1_500);
        assert_eq!(BoostRule::new(100).apply(1_000), 1_000);
        assert_eq!(BoostRule::new(50).apply(1_000), 1_000, "clamped up to 100%");
        assert_eq!(BoostRule::new(200).apply(u32::MAX), u32::MAX, "saturates");
    }

    #[test]
    fn boost_inflates_attacker_requests_only() {
        let mut ht = HardwareTrojan::new(HT_NODE, TamperRule::Zero).with_boost(BoostRule::new(200));
        let mut cfg = Packet::config_command(ATTACKER, HT_NODE, MANAGER, ActivationSignal::On);
        ht.inspect(HT_NODE, 0, &mut cfg);
        // Attacker's request doubled.
        let mut mine = Packet::power_request(ATTACKER, MANAGER, 1_000);
        assert!(ht.inspect(HT_NODE, 1, &mut mine).modified);
        assert_eq!(mine.payload(), 2_000);
        // Victim's request still zeroed.
        let mut theirs = Packet::power_request(VICTIM, MANAGER, 1_000);
        assert!(ht.inspect(HT_NODE, 2, &mut theirs).modified);
        assert_eq!(theirs.payload(), 0);
    }

    #[test]
    fn without_boost_attacker_requests_untouched() {
        let mut ht = configured(TamperRule::Zero);
        let mut mine = Packet::power_request(ATTACKER, MANAGER, 1_000);
        assert!(!ht.inspect(HT_NODE, 1, &mut mine).modified);
        assert_eq!(mine.payload(), 1_000);
    }

    #[test]
    fn drop_mode_sinks_victim_requests_only() {
        let mut ht =
            HardwareTrojan::new(HT_NODE, TamperRule::Zero).with_mode(TrojanMode::PacketDrop);
        let mut cfg = Packet::config_command(ATTACKER, HT_NODE, MANAGER, ActivationSignal::On);
        ht.inspect(HT_NODE, 0, &mut cfg);
        let mut victim = Packet::power_request(VICTIM, MANAGER, 1_000);
        let out = ht.inspect(HT_NODE, 1, &mut victim);
        assert!(out.dropped);
        assert_eq!(victim.payload(), 1_000, "drop does not rewrite");
        // Attacker requests pass.
        let mut own = Packet::power_request(ATTACKER, MANAGER, 1_000);
        let out = ht.inspect(HT_NODE, 2, &mut own);
        assert!(!out.dropped && !out.modified);
        // Grants are never dropped.
        let mut grant = Packet::power_grant(MANAGER, VICTIM, 500);
        assert!(!ht.inspect(HT_NODE, 3, &mut grant).dropped);
    }

    #[test]
    fn data_and_grant_packets_ignored() {
        let mut ht = configured(TamperRule::Zero);
        let mut grant = Packet::power_grant(MANAGER, VICTIM, 555);
        assert!(!ht.inspect(HT_NODE, 1, &mut grant).modified);
        assert_eq!(grant.payload(), 555);
        let mut data = Packet::new(VICTIM, MANAGER, PacketKind::Data, 555);
        assert!(!ht.inspect(HT_NODE, 1, &mut data).modified);
        assert_eq!(data.payload(), 555);
    }
}
