/// When the implanted Trojans are operating, as a function of the cycle.
///
/// Section III-B: "if the attacker agents want the HTs to be active in a
/// specific cycle time, a series of configuration packets can be sent with
/// activation signals alternated to be ON and OFF". This type models the
/// *effect* of such a config-packet stream without simulating each packet —
/// the fleet gates its Trojans by `active_at(cycle)` on top of each
/// Trojan's own activation latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivationSchedule {
    /// Armed continuously.
    #[default]
    AlwaysOn,
    /// Armed for the first `on` cycles of every `period`-cycle window.
    ///
    /// Duty-cycling is the attacker's main knob for trading attack strength
    /// against stealth: a lower duty cycle yields a lower infection rate.
    DutyCycle {
        /// Cycles armed per window.
        on: u64,
        /// Window length in cycles (must be ≥ `on`; a zero period behaves
        /// as always-on).
        period: u64,
    },
    /// Armed only inside `[start, end)` — a one-shot attack window.
    Window {
        /// First armed cycle.
        start: u64,
        /// First cycle past the window.
        end: u64,
    },
}

impl ActivationSchedule {
    /// A duty cycle hitting approximately `fraction` (clamped to `[0, 1]`)
    /// of cycles, over windows of `period` cycles.
    #[must_use]
    pub fn duty(fraction: f64, period: u64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let period = period.max(1);
        ActivationSchedule::DutyCycle {
            on: (fraction * period as f64).round() as u64,
            period,
        }
    }

    /// Whether the schedule arms the Trojans at `cycle`.
    #[must_use]
    pub fn active_at(self, cycle: u64) -> bool {
        match self {
            ActivationSchedule::AlwaysOn => true,
            ActivationSchedule::DutyCycle { on, period } => {
                if period == 0 {
                    true
                } else {
                    cycle % period < on
                }
            }
            ActivationSchedule::Window { start, end } => cycle >= start && cycle < end,
        }
    }

    /// Long-run fraction of armed cycles.
    #[must_use]
    pub fn duty_fraction(self) -> f64 {
        match self {
            ActivationSchedule::AlwaysOn => 1.0,
            ActivationSchedule::DutyCycle { on, period } => {
                if period == 0 {
                    1.0
                } else {
                    (on.min(period)) as f64 / period as f64
                }
            }
            ActivationSchedule::Window { .. } => 0.0, // transient, not steady-state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_always_on() {
        for c in [0u64, 1, 1000, u64::MAX] {
            assert!(ActivationSchedule::AlwaysOn.active_at(c));
        }
        assert_eq!(ActivationSchedule::AlwaysOn.duty_fraction(), 1.0);
    }

    #[test]
    fn duty_cycle_pattern() {
        let s = ActivationSchedule::DutyCycle { on: 3, period: 10 };
        let pattern: Vec<bool> = (0..20).map(|c| s.active_at(c)).collect();
        for (c, active) in pattern.iter().enumerate() {
            assert_eq!(*active, c % 10 < 3, "cycle {c}");
        }
        assert!((s.duty_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn duty_constructor_rounds() {
        let s = ActivationSchedule::duty(0.5, 100);
        assert_eq!(
            s,
            ActivationSchedule::DutyCycle {
                on: 50,
                period: 100
            }
        );
        assert_eq!(
            ActivationSchedule::duty(2.0, 10),
            ActivationSchedule::DutyCycle { on: 10, period: 10 }
        );
        assert_eq!(
            ActivationSchedule::duty(-1.0, 10),
            ActivationSchedule::DutyCycle { on: 0, period: 10 }
        );
    }

    #[test]
    fn window_bounds_are_half_open() {
        let s = ActivationSchedule::Window { start: 10, end: 20 };
        assert!(!s.active_at(9));
        assert!(s.active_at(10));
        assert!(s.active_at(19));
        assert!(!s.active_at(20));
    }

    #[test]
    fn zero_period_degrades_to_always_on() {
        let s = ActivationSchedule::DutyCycle { on: 0, period: 0 };
        assert!(s.active_at(7));
        assert_eq!(s.duty_fraction(), 1.0);
    }
}
