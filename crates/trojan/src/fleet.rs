use htpb_noc::{
    ActivationSignal, FnvHashMap, InspectOutcome, Mesh2d, NodeId, Packet, PacketInspector,
};

use crate::circuit::{BoostRule, HardwareTrojan, TamperRule, TrojanMode};
use crate::schedule::ActivationSchedule;

/// Aggregate counters over a whole fleet of implanted Trojans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Packet headers scanned across all Trojans (one per packet per
    /// infected hop).
    pub packets_seen: u64,
    /// Payload rewrites across all Trojans.
    pub packets_modified: u64,
    /// Configuration packets absorbed across all Trojans.
    pub configs_received: u64,
}

/// A set of hardware Trojans implanted at chosen routers, driving them as a
/// single [`PacketInspector`] for [`htpb_noc::Network::with_inspector`].
///
/// The fleet also carries an [`ActivationSchedule`] gating all its Trojans,
/// modelling the attacker's ON/OFF configuration-packet stream
/// (Section III-B) without simulating each packet.
#[derive(Debug, Clone)]
pub struct TrojanFleet {
    trojans: FnvHashMap<NodeId, HardwareTrojan>,
    schedule: ActivationSchedule,
}

impl TrojanFleet {
    /// Implants one Trojan (all sharing `rule`) at each node in `nodes`.
    /// Duplicate nodes collapse to a single Trojan.
    #[must_use]
    pub fn new(nodes: &[NodeId], rule: TamperRule) -> Self {
        TrojanFleet {
            trojans: nodes
                .iter()
                .map(|&n| (n, HardwareTrojan::new(n, rule)))
                .collect(),
            schedule: ActivationSchedule::AlwaysOn,
        }
    }

    /// An empty fleet — a clean chip.
    #[must_use]
    pub fn clean() -> Self {
        TrojanFleet::new(&[], TamperRule::Zero)
    }

    /// Replaces the activation schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: ActivationSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Adds the attacker-side boost extension to every Trojan in the fleet
    /// (see [`BoostRule`]).
    #[must_use]
    pub fn with_boost(mut self, boost: BoostRule) -> Self {
        for ht in self.trojans.values_mut() {
            *ht = ht.clone().with_boost(boost);
        }
        self
    }

    /// Selects the DoS class for every Trojan in the fleet (see
    /// [`TrojanMode`]).
    #[must_use]
    pub fn with_mode(mut self, mode: TrojanMode) -> Self {
        for ht in self.trojans.values_mut() {
            *ht = ht.clone().with_mode(mode);
        }
        self
    }

    /// The active schedule.
    #[must_use]
    pub fn schedule(&self) -> ActivationSchedule {
        self.schedule
    }

    /// Number of implanted Trojans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trojans.len()
    }

    /// Whether the fleet is empty (clean chip).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trojans.is_empty()
    }

    /// The infected router ids, in ascending order.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.trojans.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether `node` hosts a Trojan.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.trojans.contains_key(&node)
    }

    /// Read access to one Trojan.
    #[must_use]
    pub fn trojan(&self, node: NodeId) -> Option<&HardwareTrojan> {
        self.trojans.get(&node)
    }

    /// Directly configures every Trojan's registers, bypassing the in-band
    /// `CONFIG_CMD` broadcast: each agent in `attackers` is registered with
    /// every Trojan. Convenient for experiments that do not need to simulate
    /// the configuration phase; the in-band path is exercised by
    /// [`TrojanFleet::config_broadcast`] + network delivery.
    pub fn configure_all(&mut self, attackers: &[NodeId], manager: NodeId, active: bool) {
        let signal = if active {
            ActivationSignal::On
        } else {
            ActivationSignal::Off
        };
        for (node, ht) in self.trojans.iter_mut() {
            for attacker in attackers {
                let mut cfg = Packet::config_command(*attacker, *node, manager, signal);
                ht.scan(&mut cfg, true);
            }
            if attackers.is_empty() {
                // Manager-as-agent placeholder keeps the Trojan armable even
                // with no spared sources (pure infection-rate experiments).
                let mut cfg = Packet::config_command(manager, *node, manager, signal);
                ht.scan(&mut cfg, true);
            }
        }
    }

    /// Builds the broadcast of `CONFIG_CMD` packets the attacker sends to
    /// set up the attack (Section III-B: "it broadcasts the configuration
    /// packet"): one unicast copy per node of `mesh`.
    #[must_use]
    pub fn config_broadcast(
        mesh: Mesh2d,
        attacker: NodeId,
        manager: NodeId,
        signal: ActivationSignal,
    ) -> Vec<Packet> {
        mesh.iter_nodes()
            .filter(|n| *n != attacker)
            .map(|n| Packet::config_command(attacker, n, manager, signal))
            .collect()
    }

    /// Aggregate counters over the fleet.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats::default();
        for ht in self.trojans.values() {
            s.packets_seen += ht.packets_seen();
            s.packets_modified += ht.packets_modified();
            s.configs_received += ht.configs_received();
        }
        s
    }
}

impl PacketInspector for TrojanFleet {
    fn inspect(&mut self, router: NodeId, cycle: u64, packet: &mut Packet) -> InspectOutcome {
        let Some(ht) = self.trojans.get_mut(&router) else {
            return InspectOutcome::untouched();
        };
        ht.scan(packet, self.schedule.active_at(cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_noc::{Network, NetworkConfig, PacketKind};

    const MANAGER: NodeId = NodeId(0);
    const ATTACKER: NodeId = NodeId(15);

    #[test]
    fn fleet_builds_and_dedups() {
        let fleet = TrojanFleet::new(&[NodeId(1), NodeId(2), NodeId(1)], TamperRule::Zero);
        assert_eq!(fleet.len(), 2);
        assert!(fleet.contains(NodeId(1)));
        assert!(!fleet.contains(NodeId(3)));
        assert_eq!(fleet.nodes(), vec![NodeId(1), NodeId(2)]);
        assert!(TrojanFleet::clean().is_empty());
    }

    #[test]
    fn in_band_configuration_then_attack() {
        // End-to-end through a real network: the attacker broadcasts
        // CONFIG_CMD packets, then a victim's POWER_REQ through an infected
        // router gets zeroed.
        let mesh = Mesh2d::new(4, 4).unwrap();
        let fleet = TrojanFleet::new(&[NodeId(1), NodeId(2)], TamperRule::Zero);
        let mut net = Network::with_inspector(NetworkConfig::new(mesh), fleet);

        for cfg in TrojanFleet::config_broadcast(mesh, ATTACKER, MANAGER, ActivationSignal::On) {
            net.inject(cfg).unwrap();
        }
        assert!(net.run_until_idle(10_000));
        net.drain_ejected();
        for node in [NodeId(1), NodeId(2)] {
            let ht = net.inspector().trojan(node).unwrap();
            assert_eq!(ht.state().manager, Some(MANAGER));
            assert!(ht.state().is_attacker(ATTACKER));
            assert!(ht.state().active);
        }

        // Victim at node 3 routes 3 -> 2 -> 1 -> 0 under XY: infected.
        net.inject(Packet::power_request(NodeId(3), MANAGER, 4_000))
            .unwrap();
        // Attacker's own request passes through node 14..12? XY from 15 to 0
        // passes row 3 then column 0; pick a clean-path victim check via the
        // delivered flags instead.
        net.inject(Packet::power_request(ATTACKER, MANAGER, 4_000))
            .unwrap();
        assert!(net.run_until_idle(10_000));
        let out = net.drain_ejected();
        let victim = out
            .iter()
            .find(|d| d.packet.src() == NodeId(3))
            .expect("victim packet delivered");
        assert!(victim.modified);
        assert_eq!(victim.packet.payload(), 0);
        let attacker = out
            .iter()
            .find(|d| d.packet.src() == ATTACKER)
            .expect("attacker packet delivered");
        assert!(!attacker.modified);
        assert_eq!(attacker.packet.payload(), 4_000);
    }

    #[test]
    fn schedule_gates_the_whole_fleet() {
        let mut fleet = TrojanFleet::new(&[NodeId(1)], TamperRule::Zero).with_schedule(
            ActivationSchedule::Window {
                start: 100,
                end: 200,
            },
        );
        fleet.configure_all(&[ATTACKER], MANAGER, true);
        let mut req = Packet::power_request(NodeId(3), MANAGER, 1_000);
        assert!(!fleet.inspect(NodeId(1), 50, &mut req).modified);
        assert!(fleet.inspect(NodeId(1), 150, &mut req).modified);
        assert_eq!(req.payload(), 0);
    }

    #[test]
    fn configure_all_bypasses_network() {
        let mut fleet = TrojanFleet::new(&[NodeId(4), NodeId(5)], TamperRule::ScalePercent(10));
        fleet.configure_all(&[ATTACKER], MANAGER, true);
        for node in fleet.nodes() {
            let st = fleet.trojan(node).unwrap().state();
            assert_eq!(st.manager, Some(MANAGER));
            assert!(st.is_attacker(ATTACKER));
            assert!(st.active);
        }
        assert_eq!(fleet.stats().configs_received, 2);
    }

    #[test]
    fn stats_aggregate_across_trojans() {
        let mut fleet = TrojanFleet::new(&[NodeId(1), NodeId(2)], TamperRule::Zero);
        fleet.configure_all(&[ATTACKER], MANAGER, true);
        let mut req = Packet::power_request(NodeId(3), MANAGER, 1_000);
        fleet.inspect(NodeId(1), 0, &mut req);
        let mut req2 = Packet::power_request(NodeId(3), MANAGER, 1_000);
        fleet.inspect(NodeId(2), 0, &mut req2);
        let s = fleet.stats();
        assert_eq!(s.packets_modified, 2);
        // 2 configs + 2 power requests scanned.
        assert_eq!(s.packets_seen, 4);
    }

    #[test]
    fn broadcast_covers_all_other_nodes() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let pkts = TrojanFleet::config_broadcast(mesh, ATTACKER, MANAGER, ActivationSignal::On);
        assert_eq!(pkts.len() as u32, mesh.nodes() - 1);
        assert!(pkts.iter().all(|p| p.src() == ATTACKER));
        assert!(pkts
            .iter()
            .all(|p| matches!(p.kind(), PacketKind::ConfigCmd(_))));
    }

    #[test]
    fn fleet_boost_applies_at_every_trojan() {
        let mut fleet =
            TrojanFleet::new(&[NodeId(1)], TamperRule::Zero).with_boost(BoostRule::new(150));
        fleet.configure_all(&[ATTACKER], MANAGER, true);
        let mut req = Packet::power_request(ATTACKER, MANAGER, 1_000);
        assert!(fleet.inspect(NodeId(1), 0, &mut req).modified);
        assert_eq!(req.payload(), 1_500);
    }

    #[test]
    fn uninfected_router_inspection_is_noop() {
        let mut fleet = TrojanFleet::new(&[NodeId(1)], TamperRule::Zero);
        fleet.configure_all(&[ATTACKER], MANAGER, true);
        let mut req = Packet::power_request(NodeId(3), MANAGER, 1_000);
        assert!(!fleet.inspect(NodeId(7), 0, &mut req).modified);
        assert_eq!(req.payload(), 1_000);
    }
}
