use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::{Packet, PacketKind};
use crate::topology::{Mesh2d, NodeId};

/// A synthetic traffic generator used by NoC-only tests and throughput
/// benchmarks.
///
/// Implementations are cycle-driven: [`TrafficPattern::generate`] is called
/// once per cycle and returns the packets to inject this cycle.
pub trait TrafficPattern {
    /// Packets to inject at `cycle`.
    fn generate(&mut self, cycle: u64) -> Vec<Packet>;
}

/// Uniform-random traffic: every cycle each node independently injects a
/// packet with probability `rate`, addressed to a uniformly random other
/// node.
#[derive(Debug)]
pub struct UniformTraffic {
    mesh: Mesh2d,
    rate: f64,
    kind: PacketKind,
    rng: StdRng,
}

impl UniformTraffic {
    /// Creates a generator with per-node-per-cycle injection probability
    /// `rate` (flits of kind `kind`), seeded deterministically.
    #[must_use]
    pub fn new(mesh: Mesh2d, rate: f64, kind: PacketKind, seed: u64) -> Self {
        UniformTraffic {
            mesh,
            rate,
            kind,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TrafficPattern for UniformTraffic {
    fn generate(&mut self, _cycle: u64) -> Vec<Packet> {
        let nodes = self.mesh.nodes();
        let mut out = Vec::new();
        for src in 0..nodes {
            if self.rng.gen_bool(self.rate) {
                let mut dst = self.rng.gen_range(0..nodes);
                if dst == src {
                    dst = (dst + 1) % nodes;
                }
                out.push(Packet::new(
                    NodeId(src as u16),
                    NodeId(dst as u16),
                    self.kind,
                    src,
                ));
            }
        }
        out
    }
}

/// Hotspot traffic: every node periodically sends a `POWER_REQ` packet to a
/// fixed hotspot (the global manager). This is the traffic shape that the
/// paper's power-budgeting protocol produces each budgeting epoch.
#[derive(Debug)]
pub struct HotspotTraffic {
    mesh: Mesh2d,
    hotspot: NodeId,
    period: u64,
    rng: StdRng,
    jitter: u64,
    offsets: Vec<u64>,
}

impl HotspotTraffic {
    /// Creates a generator where each node sends one power request to
    /// `hotspot` every `period` cycles, with per-node phase jitter of up to
    /// `jitter` cycles to avoid a synchronized burst.
    #[must_use]
    pub fn new(mesh: Mesh2d, hotspot: NodeId, period: u64, jitter: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let offsets = (0..mesh.nodes())
            .map(|_| {
                if jitter == 0 {
                    0
                } else {
                    rng.gen_range(0..jitter)
                }
            })
            .collect();
        HotspotTraffic {
            mesh,
            hotspot,
            period,
            rng,
            jitter,
            offsets,
        }
    }
}

impl TrafficPattern for HotspotTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for src in self.mesh.iter_nodes() {
            if src == self.hotspot {
                continue;
            }
            let phase = self.offsets[src.0 as usize];
            if cycle >= phase && (cycle - phase).is_multiple_of(self.period) {
                let watts = self.rng.gen_range(500..5_000);
                out.push(Packet::power_request(src, self.hotspot, watts));
            }
        }
        let _ = self.jitter;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_is_deterministic_per_seed() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut a = UniformTraffic::new(mesh, 0.5, PacketKind::Meta, 7);
        let mut b = UniformTraffic::new(mesh, 0.5, PacketKind::Meta, 7);
        for c in 0..20 {
            assert_eq!(a.generate(c), b.generate(c));
        }
    }

    #[test]
    fn uniform_traffic_never_self_addresses() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut t = UniformTraffic::new(mesh, 1.0, PacketKind::Meta, 3);
        for c in 0..50 {
            for p in t.generate(c) {
                assert_ne!(p.src(), p.dst());
            }
        }
    }

    #[test]
    fn hotspot_period_respected() {
        let mesh = Mesh2d::new(4, 4).unwrap();
        let hs = mesh.center();
        let mut t = HotspotTraffic::new(mesh, hs, 10, 0, 1);
        let burst = t.generate(0);
        assert_eq!(burst.len() as u32, mesh.nodes() - 1);
        assert!(burst.iter().all(|p| p.dst() == hs));
        for c in 1..10 {
            assert!(t.generate(c).is_empty());
        }
        assert_eq!(t.generate(10).len() as u32, mesh.nodes() - 1);
    }

    #[test]
    fn hotspot_jitter_spreads_bursts() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let mut t = HotspotTraffic::new(mesh, mesh.center(), 100, 50, 2);
        let first_burst = t.generate(0).len();
        assert!((first_burst as u32) < mesh.nodes() - 1);
    }
}
