//! Slab arena for in-flight packet bookkeeping.
//!
//! The network used to track packet metadata (injection cycle, hop count,
//! tamper flag) and partially ejected head frames in two hash maps keyed by
//! packet id, probed on every switch traversal and ejection. A
//! [`PacketStore`] replaces both: each in-flight packet owns one slot in a
//! contiguous slab, every flit carries its slot index ([`crate::Flit::slot`]),
//! and slots recycle through an intrusive free list. Metadata touches on the
//! hot path become a single array index, and steady-state traffic performs
//! zero heap allocations — [`PacketStore::alloc`] only grows the slab when no
//! freed slot is available, which after warm-up never happens.

use crate::packet::Packet;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    packet_id: u64,
    injected_at: u64,
    hops: u32,
    modified: bool,
    /// Head frame of a partially ejected multi-flit packet, parked between
    /// head and tail ejection.
    pending_head: Option<Packet>,
    /// Next slot in the free list (meaningful only while not live).
    next_free: u32,
    live: bool,
}

/// Recycling arena of per-packet metadata slots.
///
/// Invariant, locked by a property test: [`PacketStore::alloc`] never hands
/// out a slot that is still live, so a slot index uniquely identifies one
/// in-flight packet for its whole lifetime.
#[derive(Debug, Clone)]
pub struct PacketStore {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
}

impl Default for PacketStore {
    fn default() -> Self {
        PacketStore::new()
    }
}

impl PacketStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PacketStore {
            slots: Vec::new(),
            free_head: NIL,
            live: 0,
        }
    }

    /// Claims a slot for a newly injected packet and returns its index.
    ///
    /// The only operation that may heap-allocate (when the free list is
    /// empty and the slab must grow); once the slab has reached the
    /// campaign's peak in-flight population it never grows again.
    pub fn alloc(&mut self, packet_id: u64, injected_at: u64) -> u32 {
        self.live += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            debug_assert!(!s.live, "free list points at a live slot");
            self.free_head = s.next_free;
            s.packet_id = packet_id;
            s.injected_at = injected_at;
            s.hops = 0;
            s.modified = false;
            s.pending_head = None;
            s.live = true;
            return slot;
        }
        let slot = self.slots.len() as u32;
        assert!(slot != NIL, "packet store exhausted");
        self.slots.push(Slot {
            packet_id,
            injected_at,
            hops: 0,
            modified: false,
            pending_head: None,
            next_free: NIL,
            live: true,
        });
        slot
    }

    /// Returns a slot to the free list (packet dropped or fully ejected).
    /// Never allocates.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live — freeing twice would alias two
    /// packets onto one slot.
    pub fn free(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        assert!(s.live, "double free of packet slot {slot}");
        s.live = false;
        s.pending_head = None;
        s.next_free = self.free_head;
        self.free_head = slot;
        self.live -= 1;
    }

    /// Number of live (in-flight) packets.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether `slot` currently holds a live packet.
    #[must_use]
    pub fn is_live(&self, slot: u32) -> bool {
        self.slots.get(slot as usize).is_some_and(|s| s.live)
    }

    /// Packet id of the live packet in `slot`.
    #[must_use]
    pub fn packet_id(&self, slot: u32) -> u64 {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].packet_id
    }

    /// Injection cycle of the live packet in `slot`.
    #[must_use]
    pub fn injected_at(&self, slot: u32) -> u64 {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].injected_at
    }

    /// Router-to-router hops recorded so far for the packet in `slot`.
    #[must_use]
    pub fn hops(&self, slot: u32) -> u32 {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].hops
    }

    /// Records one more hop for the packet in `slot`.
    pub fn bump_hops(&mut self, slot: u32) {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].hops += 1;
    }

    /// Whether an inspector reported modifying the packet in `slot`.
    #[must_use]
    pub fn modified(&self, slot: u32) -> bool {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].modified
    }

    /// Marks the packet in `slot` as tampered with.
    pub fn set_modified(&mut self, slot: u32) {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].modified = true;
    }

    /// Parks the ejected head frame of a multi-flit packet until its tail
    /// arrives.
    pub fn set_pending_head(&mut self, slot: u32, packet: Packet) {
        debug_assert!(self.slots[slot as usize].live);
        self.slots[slot as usize].pending_head = Some(packet);
    }

    /// Completes delivery of the packet in `slot`: takes the parked head
    /// frame and the accumulated metadata, and frees the slot. Returns
    /// `(packet, injected_at, hops, modified)`.
    ///
    /// # Panics
    ///
    /// Panics if no head frame was parked (tail ejected before head).
    pub fn finish(&mut self, slot: u32) -> (Packet, u64, u32, bool) {
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.live);
        let packet = s.pending_head.take().expect("tail after head");
        let out = (packet, s.injected_at, s.hops, s.modified);
        self.free(slot);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::topology::NodeId;

    #[test]
    fn alloc_free_recycles_lifo() {
        let mut st = PacketStore::new();
        let a = st.alloc(1, 10);
        let b = st.alloc(2, 11);
        assert_ne!(a, b);
        assert_eq!(st.live(), 2);
        st.free(a);
        assert_eq!(st.live(), 1);
        let c = st.alloc(3, 12);
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(st.packet_id(c), 3);
        assert_eq!(st.injected_at(c), 12);
        assert_eq!(st.hops(c), 0);
        assert!(!st.modified(c));
    }

    #[test]
    fn finish_returns_meta_and_frees() {
        let mut st = PacketStore::new();
        let s = st.alloc(7, 100);
        st.bump_hops(s);
        st.bump_hops(s);
        st.set_modified(s);
        let p = Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 42);
        st.set_pending_head(s, p);
        let (packet, injected_at, hops, modified) = st.finish(s);
        assert_eq!(packet, p);
        assert_eq!(injected_at, 100);
        assert_eq!(hops, 2);
        assert!(modified);
        assert_eq!(st.live(), 0);
        assert!(!st.is_live(s));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut st = PacketStore::new();
        let s = st.alloc(1, 0);
        st.free(s);
        st.free(s);
    }
}
