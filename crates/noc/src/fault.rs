use crate::packet::Packet;
use crate::topology::{Direction, NodeId};

/// What a fault hook ordered done to one routed packet.
///
/// Returned by [`FaultHook::packet_fault`] once per packet per router, at
/// the same pipeline point where a [`crate::PacketInspector`] runs (between
/// the input buffer and routing computation). Unlike an inspector, a fault
/// hook models *physical* corruption — bit flips on the payload wires, or a
/// faulty buffer silently losing the whole packet — rather than an
/// adversarial rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultAction {
    /// Bits of the payload word to invert. Zero leaves the payload intact.
    pub flip_mask: u32,
    /// Sink the whole packet at this router (all flits drained, credits
    /// returned upstream, counted in
    /// [`crate::NetworkStats::dropped_packets`]).
    pub drop: bool,
}

impl FaultAction {
    /// No fault: the packet passes untouched.
    #[must_use]
    pub fn none() -> Self {
        FaultAction::default()
    }

    /// Invert the payload bits selected by `mask`.
    #[must_use]
    pub fn flip(mask: u32) -> Self {
        FaultAction {
            flip_mask: mask,
            drop: false,
        }
    }

    /// Drop the whole packet at this router.
    #[must_use]
    pub fn drop_packet() -> Self {
        FaultAction {
            flip_mask: 0,
            drop: true,
        }
    }

    /// Whether this action changes anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.flip_mask == 0 && !self.drop
    }
}

/// Deterministic fault-injection hook for the network pipeline.
///
/// A hook is installed with [`crate::Network::set_fault_hook`] and consulted
/// from three pipeline points, chosen so that every fault mode composes with
/// the active-set invariants of [`crate::Network::step`] without touching
/// them:
///
/// * [`FaultHook::router_stalled`] — once per active router per cycle at the
///   head of switch traversal. A stalled router forwards nothing that cycle;
///   its flits stay buffered, so it simply remains in the active set.
/// * [`FaultHook::link_down`] — once per (router, output direction) arbitration
///   attempt in switch traversal. A downed link behaves exactly like a busy
///   one: the output port skips arbitration this cycle.
/// * [`FaultHook::packet_fault`] — once per packet per router, immediately
///   after the [`crate::PacketInspector`] hook. Payload bit flips reuse the
///   tamper bookkeeping (the delivered packet reports `modified`); whole-packet
///   drops reuse the inspector drop-sink machinery.
///
/// [`FaultHook::any_faults_at`] gates all three: when it returns `false` for
/// a cycle the pipeline makes **zero** per-entity hook calls, which is what
/// keeps an empty fault plan bit-identical to a build with no hook installed
/// (locked by the golden digests and the `htpb-faults` equivalence proptest).
///
/// Implementations must be deterministic functions of their own state and
/// the arguments — the simulator calls them in a fixed order and replays
/// must reproduce bit-identical traffic.
pub trait FaultHook: Send {
    /// Cheap per-cycle gate: when `false`, no other hook method is called
    /// this cycle.
    fn any_faults_at(&mut self, cycle: u64) -> bool;

    /// Whether the link leaving `node` towards `dir` is down this cycle.
    fn link_down(&mut self, node: NodeId, dir: Direction, cycle: u64) -> bool;

    /// Whether router `node` is stalled (forwards nothing) this cycle.
    fn router_stalled(&mut self, node: NodeId, cycle: u64) -> bool;

    /// Fault to apply to `packet` as it is routed at `node`. Called once per
    /// packet per router, like packet inspection.
    fn packet_fault(&mut self, node: NodeId, cycle: u64, packet: &Packet) -> FaultAction;
}

impl<T: FaultHook + ?Sized> FaultHook for Box<T> {
    fn any_faults_at(&mut self, cycle: u64) -> bool {
        (**self).any_faults_at(cycle)
    }

    fn link_down(&mut self, node: NodeId, dir: Direction, cycle: u64) -> bool {
        (**self).link_down(node, dir, cycle)
    }

    fn router_stalled(&mut self, node: NodeId, cycle: u64) -> bool {
        (**self).router_stalled(node, cycle)
    }

    fn packet_fault(&mut self, node: NodeId, cycle: u64, packet: &Packet) -> FaultAction {
        (**self).packet_fault(node, cycle, packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn action_constructors() {
        assert!(FaultAction::none().is_none());
        let f = FaultAction::flip(0b101);
        assert_eq!(f.flip_mask, 0b101);
        assert!(!f.drop);
        assert!(!f.is_none());
        let d = FaultAction::drop_packet();
        assert!(d.drop);
        assert!(!d.is_none());
    }

    #[test]
    fn boxed_hook_dispatches() {
        #[derive(Debug)]
        struct DropEverything;
        impl FaultHook for DropEverything {
            fn any_faults_at(&mut self, _cycle: u64) -> bool {
                true
            }
            fn link_down(&mut self, _node: NodeId, _dir: Direction, _cycle: u64) -> bool {
                false
            }
            fn router_stalled(&mut self, _node: NodeId, _cycle: u64) -> bool {
                false
            }
            fn packet_fault(&mut self, _node: NodeId, _cycle: u64, _p: &Packet) -> FaultAction {
                FaultAction::drop_packet()
            }
        }
        let mut hook: Box<dyn FaultHook> = Box::new(DropEverything);
        let p = Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 9);
        assert!(hook.any_faults_at(0));
        assert!(hook.packet_fault(NodeId(0), 0, &p).drop);
    }
}
