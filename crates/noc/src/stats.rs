use crate::fnv::Digest;

/// A coarse latency histogram with power-of-two buckets.
///
/// Bucket `i` counts packets whose end-to-end latency `l` satisfies
/// `2^i <= l < 2^(i+1)` (bucket 0 additionally holds latency 0 and 1).
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (in cycles).
    pub fn record(&mut self, latency: u64) {
        let idx = (64 - latency.max(1).leading_zeros() as usize - 1).min(31);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded latency.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded latencies, in cycles.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw bucket counts (power-of-two buckets).
    #[must_use]
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }
}

/// Aggregate statistics of a [`crate::Network`] run.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    injected_packets: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    total_hops: u64,
    modified_packets: u64,
    dropped_packets: u64,
    delivered_power_requests: u64,
    modified_power_requests: u64,
    latency: LatencyHistogram,
}

impl NetworkStats {
    pub(crate) fn on_inject(&mut self) {
        self.injected_packets += 1;
    }

    pub(crate) fn on_flit_delivered(&mut self) {
        self.delivered_flits += 1;
    }

    pub(crate) fn on_packet_dropped(&mut self) {
        self.dropped_packets += 1;
    }

    pub(crate) fn on_packet_delivered(
        &mut self,
        latency: u64,
        hops: u64,
        modified: bool,
        is_power_request: bool,
    ) {
        self.delivered_packets += 1;
        self.total_hops += hops;
        self.latency.record(latency);
        if modified {
            self.modified_packets += 1;
        }
        if is_power_request {
            self.delivered_power_requests += 1;
            if modified {
                self.modified_power_requests += 1;
            }
        }
    }

    /// Packets injected so far.
    #[must_use]
    pub fn injected_packets(&self) -> u64 {
        self.injected_packets
    }

    /// Packets fully delivered so far.
    #[must_use]
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Flits delivered so far.
    #[must_use]
    pub fn delivered_flits(&self) -> u64 {
        self.delivered_flits
    }

    /// Total hop count over all delivered packets.
    #[must_use]
    pub fn total_hops(&self) -> u64 {
        self.total_hops
    }

    /// Packets delivered after being modified by an inspector at least once.
    #[must_use]
    pub fn modified_packets(&self) -> u64 {
        self.modified_packets
    }

    /// Packets silently sunk by an inspector's drop order.
    #[must_use]
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Delivered `POWER_REQ` packets.
    #[must_use]
    pub fn delivered_power_requests(&self) -> u64 {
        self.delivered_power_requests
    }

    /// Delivered `POWER_REQ` packets that were tampered with en route.
    #[must_use]
    pub fn modified_power_requests(&self) -> u64 {
        self.modified_power_requests
    }

    /// The infection rate of Section V-B: the fraction of delivered power
    /// requests that were modified by a Trojan. Returns 0.0 before any power
    /// request is delivered.
    #[must_use]
    pub fn infection_rate(&self) -> f64 {
        if self.delivered_power_requests == 0 {
            0.0
        } else {
            self.modified_power_requests as f64 / self.delivered_power_requests as f64
        }
    }

    /// End-to-end latency histogram of delivered packets.
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Mean hop count of delivered packets.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.delivered_packets as f64
        }
    }

    /// A platform-stable FNV-1a fingerprint over every counter and the full
    /// latency histogram. Two stats objects fingerprint equal iff every
    /// observable field is equal — the determinism tests fold this per
    /// cycle to certify that a rewritten pipeline behaves identically.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.u64(self.injected_packets)
            .u64(self.delivered_packets)
            .u64(self.delivered_flits)
            .u64(self.total_hops)
            .u64(self.modified_packets)
            .u64(self.dropped_packets)
            .u64(self.delivered_power_requests)
            .u64(self.modified_power_requests)
            .u64(self.latency.count)
            .u64(self.latency.sum)
            .u64(self.latency.max);
        for &bucket in &self.latency.buckets {
            d.u64(bucket);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(100);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 2); // 2 and 3
        assert_eq!(h.buckets()[6], 1); // 100 in [64,128)
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn infection_rate_counts_only_power_requests() {
        let mut s = NetworkStats::default();
        s.on_packet_delivered(10, 3, true, false); // tampered data packet
        assert_eq!(s.infection_rate(), 0.0);
        s.on_packet_delivered(10, 3, true, true);
        s.on_packet_delivered(10, 3, false, true);
        assert!((s.infection_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.modified_packets(), 2);
        assert_eq!(s.delivered_power_requests(), 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = NetworkStats::default();
        assert_eq!(s.infection_rate(), 0.0);
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.latency().mean(), 0.0);
    }
}
