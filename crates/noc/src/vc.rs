use std::collections::VecDeque;

use crate::flit::Flit;
use crate::topology::Direction;

/// Per-virtual-channel input state of a router port.
///
/// Table I configures 4 virtual channels per port with 5-flit buffers.
#[derive(Debug, Clone)]
pub(crate) struct VirtualChannel {
    /// Buffered flits, each stamped with the cycle it entered this buffer;
    /// a flit may not traverse the switch in its arrival cycle, which gives
    /// every flit at least one full cycle inside the router.
    buffer: VecDeque<(Flit, u64)>,
    capacity: usize,
    /// Output port chosen by routing computation for the packet currently
    /// occupying this VC (`None` until RC runs on the head flit).
    pub route: Option<Direction>,
    /// Downstream VC granted by VC allocation (`None` until VA succeeds).
    pub out_vc: Option<usize>,
    /// Whether the packet's head flit has been inspected at this router
    /// (the Trojan hook fires once per hop).
    pub inspected: bool,
    /// Set when an inspector ordered the current packet dropped: arriving
    /// and buffered flits are sunk instead of forwarded, until the tail.
    pub dropping: bool,
}

impl VirtualChannel {
    pub(crate) fn new(capacity: usize) -> Self {
        VirtualChannel {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            route: None,
            out_vc: None,
            inspected: false,
            dropping: false,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.buffer.len()
    }

    pub(crate) fn has_space(&self) -> bool {
        self.buffer.len() < self.capacity
    }

    /// Cycle at which the front flit entered this buffer.
    pub(crate) fn front_arrived_at(&self) -> Option<u64> {
        self.buffer.front().map(|(_, at)| *at)
    }

    /// The flit at the head of the buffer, if any.
    pub(crate) fn front(&self) -> Option<&Flit> {
        self.buffer.front().map(|(f, _)| f)
    }

    pub(crate) fn front_mut(&mut self) -> Option<&mut Flit> {
        self.buffer.front_mut().map(|(f, _)| f)
    }

    /// Pushes an arriving flit. Callers must check [`Self::has_space`]; the
    /// credit protocol guarantees upstream never overruns the buffer.
    pub(crate) fn push(&mut self, flit: Flit, now: u64) {
        debug_assert!(self.has_space(), "credit protocol violated: VC overrun");
        self.buffer.push_back((flit, now));
    }

    /// Pops the flit at the head of the buffer. When the popped flit is the
    /// packet's tail, the VC's routing state is cleared so the next packet
    /// re-runs RC/VA.
    pub(crate) fn pop(&mut self) -> Option<Flit> {
        let (flit, _) = self.buffer.pop_front()?;
        if flit.kind.is_tail() {
            self.route = None;
            self.out_vc = None;
            self.inspected = false;
            self.dropping = false;
        }
        Some(flit)
    }
}

/// Credit and allocation state a router keeps for one downstream input port.
#[derive(Debug, Clone)]
pub(crate) struct OutputPort {
    /// Flit credits per downstream VC (starts at the buffer depth).
    pub credits: Vec<usize>,
    /// Whether each downstream VC is currently allocated to some packet.
    pub allocated: Vec<bool>,
}

impl OutputPort {
    pub(crate) fn new(vcs: usize, buffer_depth: usize) -> Self {
        OutputPort {
            credits: vec![buffer_depth; vcs],
            allocated: vec![false; vcs],
        }
    }

    /// Finds a free downstream VC, preferring lower indices.
    pub(crate) fn free_vc(&self) -> Option<usize> {
        self.allocated.iter().position(|a| !a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::packet::{Packet, PacketKind};
    use crate::topology::NodeId;

    fn data_flits() -> Vec<Flit> {
        Flit::packetize(Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 0), 1, 0)
    }

    #[test]
    fn vc_capacity_respected() {
        let mut vc = VirtualChannel::new(5);
        for f in data_flits() {
            assert!(vc.has_space());
            vc.push(f, 0);
        }
        assert!(!vc.has_space());
        assert_eq!(vc.len(), 5);
    }

    #[test]
    fn front_arrival_stamp_preserved() {
        let mut vc = VirtualChannel::new(5);
        for (i, f) in data_flits().into_iter().enumerate() {
            vc.push(f, 10 + i as u64);
        }
        assert_eq!(vc.front_arrived_at(), Some(10));
        vc.pop();
        assert_eq!(vc.front_arrived_at(), Some(11));
    }

    #[test]
    fn tail_pop_clears_route_state() {
        let mut vc = VirtualChannel::new(5);
        for f in data_flits() {
            vc.push(f, 0);
        }
        vc.route = Some(Direction::East);
        vc.out_vc = Some(2);
        vc.inspected = true;
        for _ in 0..4 {
            vc.pop();
            assert_eq!(vc.route, Some(Direction::East));
        }
        let tail = vc.pop().unwrap();
        assert_eq!(tail.kind, FlitKind::Tail);
        assert_eq!(vc.route, None);
        assert_eq!(vc.out_vc, None);
        assert!(!vc.inspected);
    }

    #[test]
    fn output_port_free_vc() {
        let mut port = OutputPort::new(4, 5);
        assert_eq!(port.free_vc(), Some(0));
        port.allocated[0] = true;
        port.allocated[1] = true;
        assert_eq!(port.free_vc(), Some(2));
        port.allocated = vec![true; 4];
        assert_eq!(port.free_vc(), None);
    }
}
