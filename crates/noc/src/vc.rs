use crate::topology::Direction;

/// Control state of one input virtual channel.
///
/// Table I configures 4 virtual channels per port with 5-flit buffers. The
/// buffered flits themselves live in the router's single flat ring-buffer
/// array ([`crate::Router`] owns one contiguous slab for all 5 × VCs
/// buffers); this struct holds the per-VC pipeline decisions plus the ring
/// cursor into that slab.
#[derive(Debug, Clone)]
pub(crate) struct VcState {
    /// Output port chosen by routing computation for the packet currently
    /// occupying this VC (`None` until RC runs on the head flit).
    pub route: Option<Direction>,
    /// Downstream VC granted by VC allocation (`None` until VA succeeds).
    pub out_vc: Option<usize>,
    /// Whether the packet's head flit has been inspected at this router
    /// (the Trojan hook fires once per hop).
    pub inspected: bool,
    /// Set when an inspector ordered the current packet dropped: arriving
    /// and buffered flits are sunk instead of forwarded, until the tail.
    pub dropping: bool,
    /// Ring offset (within this VC's fixed-capacity slice of the router's
    /// flit slab) of the front flit.
    pub head: u32,
    /// Buffered flit count.
    pub len: u32,
}

impl VcState {
    pub(crate) fn new() -> Self {
        VcState {
            route: None,
            out_vc: None,
            inspected: false,
            dropping: false,
            head: 0,
            len: 0,
        }
    }

    /// Clears the per-packet pipeline decisions; called when the packet's
    /// tail flit leaves the buffer so the next resident packet re-runs
    /// inspection, RC and VA. The ring cursor is deliberately left where it
    /// is — the buffer keeps rotating.
    pub(crate) fn clear_packet_state(&mut self) {
        self.route = None;
        self.out_vc = None;
        self.inspected = false;
        self.dropping = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_resets_decisions_but_not_cursor() {
        let mut st = VcState::new();
        st.route = Some(Direction::East);
        st.out_vc = Some(2);
        st.inspected = true;
        st.dropping = true;
        st.head = 3;
        st.len = 1;
        st.clear_packet_state();
        assert_eq!(st.route, None);
        assert_eq!(st.out_vc, None);
        assert!(!st.inspected);
        assert!(!st.dropping);
        assert_eq!(st.head, 3, "ring cursor must survive packet turnover");
        assert_eq!(st.len, 1);
    }
}
