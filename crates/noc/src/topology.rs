use std::fmt;

use crate::error::NocError;

/// Identifier of a node (tile) in the mesh.
///
/// Node ids are row-major: `id = y * width + x`. The packet header reserves
/// 16 bits for each address (Fig. 1 of the paper), so at most `u16::MAX + 1`
/// nodes are addressable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the raw 16-bit address used in the packet header.
    #[must_use]
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Cartesian coordinate of a node inside the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other` — the hop count of any minimal route.
    #[must_use]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One of the five router ports of a 2D-mesh router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
    /// The local network-interface port of the tile.
    Local,
}

impl Direction {
    /// All five port directions, `Local` last.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// The four mesh directions (no `Local`), in [`Direction::index`]
    /// order — the order link slots are laid out and scanned in.
    pub const MESH: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// `OPPOSITE_INDEX[d.index()]` is `d.opposite().index()` for the four
    /// mesh directions (N↔S, E↔W) — a table-lookup form of
    /// [`Direction::opposite`] for the per-flit hot path.
    pub const OPPOSITE_INDEX: [usize; 4] = [1, 0, 3, 2];

    /// Index of the direction in `0..5`, usable as an array index.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The port on the neighbouring router that a link from `self` lands on.
    ///
    /// Returns `None` for [`Direction::Local`], which has no peer router.
    #[must_use]
    pub fn opposite(self) -> Option<Direction> {
        match self {
            Direction::North => Some(Direction::South),
            Direction::South => Some(Direction::North),
            Direction::East => Some(Direction::West),
            Direction::West => Some(Direction::East),
            Direction::Local => None,
        }
    }
}

/// A rectangular 2D mesh topology.
///
/// The experiments in the paper use meshes of 64, 128, 256 and 512 nodes;
/// the default evaluation platform is a 16×16 mesh (Table I / Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2d {
    width: u16,
    height: u16,
}

impl Mesh2d {
    /// Creates a `width x height` mesh.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidMesh`] if either dimension is zero or the
    /// node count would not fit the 16-bit address fields of Fig. 1.
    pub fn new(width: u16, height: u16) -> Result<Self, NocError> {
        let nodes = width as u32 * height as u32;
        if width == 0 || height == 0 || nodes > u16::MAX as u32 + 1 {
            return Err(NocError::InvalidMesh { width, height });
        }
        Ok(Mesh2d { width, height })
    }

    /// Creates the most-square mesh holding exactly `nodes` nodes.
    ///
    /// Used by the system-size sweeps of Fig. 3 and Fig. 4: 64 → 8×8,
    /// 128 → 16×8, 256 → 16×16, 512 → 32×16.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidMesh`] if `nodes` is zero or has no
    /// factorisation into two 16-bit dimensions.
    pub fn with_nodes(nodes: u32) -> Result<Self, NocError> {
        if nodes == 0 || nodes > u16::MAX as u32 + 1 {
            return Err(NocError::InvalidMesh {
                width: nodes as u16,
                height: 0,
            });
        }
        let mut best: Option<(u16, u16)> = None;
        let mut h = 1u32;
        while h * h <= nodes {
            if nodes.is_multiple_of(h) {
                let w = nodes / h;
                if w <= u16::MAX as u32 {
                    best = Some((w as u16, h as u16));
                }
            }
            h += 1;
        }
        match best {
            Some((w, h)) => Mesh2d::new(w, h),
            None => Err(NocError::InvalidMesh {
                width: nodes as u16,
                height: 1,
            }),
        }
    }

    /// Mesh width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[must_use]
    pub fn nodes(self) -> u32 {
        self.width as u32 * self.height as u32
    }

    /// Converts a node id to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh; use [`Mesh2d::contains`] to
    /// check first when the id comes from untrusted input.
    #[must_use]
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(self.contains(node), "node {node} outside {self:?}");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Converts a coordinate to its node id.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    #[must_use]
    pub fn node(self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coord {coord} outside {self:?}"
        );
        NodeId(coord.y * self.width + coord.x)
    }

    /// Whether `node` is a valid id for this mesh.
    #[must_use]
    pub fn contains(self, node: NodeId) -> bool {
        (node.0 as u32) < self.nodes()
    }

    /// The neighbour of `node` in `dir`, if the mesh has one there.
    #[must_use]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::North => {
                if c.y == 0 {
                    return None;
                }
                Coord::new(c.x, c.y - 1)
            }
            Direction::South => {
                if c.y + 1 >= self.height {
                    return None;
                }
                Coord::new(c.x, c.y + 1)
            }
            Direction::East => {
                if c.x + 1 >= self.width {
                    return None;
                }
                Coord::new(c.x + 1, c.y)
            }
            Direction::West => {
                if c.x == 0 {
                    return None;
                }
                Coord::new(c.x - 1, c.y)
            }
            Direction::Local => return None,
        };
        Some(self.node(n))
    }

    /// The full neighbour relation as a flat table: entry `node * 4 +
    /// dir.index()` is [`Mesh2d::neighbor`] of `node` in `dir`, for the
    /// four mesh directions. Built once at network construction so the
    /// per-flit hot path replaces coordinate arithmetic (and its bounds
    /// asserts) with one indexed load.
    #[must_use]
    pub fn neighbor_table(self) -> Vec<Option<NodeId>> {
        let mut table = Vec::with_capacity(self.nodes() as usize * 4);
        for node in self.iter_nodes() {
            for dir in Direction::MESH {
                table.push(self.neighbor(node, dir));
            }
        }
        table
    }

    /// Manhattan distance between two nodes.
    #[must_use]
    pub fn distance(self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// The node closest to the geometric center of the mesh.
    ///
    /// The paper places the global manager either "at the center" or "at one
    /// corner" of the chip (Fig. 3); this returns the canonical center.
    #[must_use]
    pub fn center(self) -> NodeId {
        self.node(Coord::new(self.width / 2, self.height / 2))
    }

    /// The node at the (0, 0) corner of the mesh.
    #[must_use]
    pub fn corner(self) -> NodeId {
        NodeId(0)
    }

    /// Iterator over all node ids in row-major order.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(|i| NodeId(i as u16))
    }

    /// Nodes on the minimal XY route from `src` to `dst`, inclusive of both
    /// endpoints. Used by analytic infection-rate computations.
    #[must_use]
    pub fn xy_path(self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let s = self.coord(src);
        let d = self.coord(dst);
        let mut path = Vec::with_capacity(s.manhattan(d) as usize + 1);
        let mut cur = s;
        path.push(self.node(cur));
        while cur.x != d.x {
            cur.x = if d.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(self.node(cur));
        }
        while cur.y != d.y {
            cur.y = if d.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(self.node(cur));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_rejects_zero_dims() {
        assert!(Mesh2d::new(0, 4).is_err());
        assert!(Mesh2d::new(4, 0).is_err());
    }

    #[test]
    fn mesh_accepts_paper_sizes() {
        for n in [64, 128, 256, 512] {
            let m = Mesh2d::with_nodes(n).unwrap();
            assert_eq!(m.nodes(), n);
            // Most-square: aspect ratio at most 2:1 for powers of two.
            assert!(m.width() / m.height() <= 2);
        }
    }

    #[test]
    fn with_nodes_prefers_square() {
        let m = Mesh2d::with_nodes(256).unwrap();
        assert_eq!((m.width(), m.height()), (16, 16));
        let m = Mesh2d::with_nodes(64).unwrap();
        assert_eq!((m.width(), m.height()), (8, 8));
    }

    #[test]
    fn coord_roundtrip() {
        let m = Mesh2d::new(16, 16).unwrap();
        for n in m.iter_nodes() {
            assert_eq!(m.node(m.coord(n)), n);
        }
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh2d::new(4, 4).unwrap();
        assert_eq!(m.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::East), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(0), Direction::South), Some(NodeId(4)));
        assert_eq!(m.neighbor(NodeId(15), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::East), None);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh2d::new(8, 8).unwrap();
        assert_eq!(m.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.distance(NodeId(0), NodeId(7)), 7);
    }

    #[test]
    fn xy_path_endpoints_and_length() {
        let m = Mesh2d::new(8, 8).unwrap();
        let p = m.xy_path(NodeId(0), NodeId(63));
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(63)));
        assert_eq!(p.len() as u32, m.distance(NodeId(0), NodeId(63)) + 1);
        // X-first: second hop moves along x.
        assert_eq!(p[1], NodeId(1));
    }

    #[test]
    fn center_and_corner() {
        let m = Mesh2d::new(16, 16).unwrap();
        assert_eq!(m.coord(m.center()), Coord::new(8, 8));
        assert_eq!(m.corner(), NodeId(0));
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::North.opposite(), Some(Direction::South));
        assert_eq!(Direction::East.opposite(), Some(Direction::West));
        assert_eq!(Direction::Local.opposite(), None);
    }

    #[test]
    fn opposite_index_table_matches_opposite() {
        for dir in Direction::MESH {
            assert_eq!(
                Direction::OPPOSITE_INDEX[dir.index()],
                dir.opposite().unwrap().index(),
                "{dir:?}"
            );
        }
    }

    #[test]
    fn neighbor_table_matches_neighbor() {
        for m in [Mesh2d::new(1, 1).unwrap(), Mesh2d::new(5, 3).unwrap()] {
            let table = m.neighbor_table();
            assert_eq!(table.len(), m.nodes() as usize * 4);
            for node in m.iter_nodes() {
                for dir in Direction::MESH {
                    assert_eq!(
                        table[node.0 as usize * 4 + dir.index()],
                        m.neighbor(node, dir),
                        "{node} {dir:?}"
                    );
                }
            }
        }
    }
}
