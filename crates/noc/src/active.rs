//! Dirty-tracking worklists for the active-set stepping of
//! [`crate::Network`].
//!
//! Each per-cycle pipeline stage used to scan every router (× 5 ports × 4
//! VCs), every link slot or every injection queue, making `step()` cost
//! O(mesh size) even on a completely quiet chip. The stages now walk an
//! [`ActiveSet`] — a fixed-size bitset over router/link/node indices kept
//! up to date *incrementally* as flits move — so the work per cycle is
//! proportional to activity.
//!
//! Determinism is the design constraint: the dense loops visited indices in
//! ascending order, and everything order-sensitive (ejection order, trace
//! events, round-robin pointers) depends on that. A bitset iterated
//! word-by-word, lowest set bit first, reproduces exactly that ascending
//! order, unlike an insertion-ordered worklist which would need re-sorting
//! every cycle.

/// A fixed-capacity bitset over `0..len` with O(1) insert/remove/contains,
/// an O(1) emptiness check, and ascending-order snapshot iteration.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    words: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    count: usize,
}

impl ActiveSet {
    /// An empty set with capacity for indices `0..len`.
    pub(crate) fn new(len: usize) -> Self {
        ActiveSet {
            words: vec![0; len.div_ceil(64)],
            count: 0,
        }
    }

    /// Marks `index` active. Idempotent.
    #[inline]
    pub(crate) fn insert(&mut self, index: usize) {
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        self.count += usize::from(*word & bit == 0);
        *word |= bit;
    }

    /// Marks `index` inactive. Idempotent.
    #[inline]
    pub(crate) fn remove(&mut self, index: usize) {
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        self.count -= usize::from(*word & bit != 0);
        *word &= !bit;
    }

    /// Whether no index is active.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of active indices. O(1) — maintained incrementally.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// Snapshots the active indices into `out` (cleared first) in ascending
    /// order — the same order the dense scans visited them. The caller may
    /// then mutate the set freely while walking the snapshot.
    pub(crate) fn snapshot_into(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.count == 0 {
            return;
        }
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(wi as u32 * 64 + b);
                bits &= bits - 1;
            }
        }
        debug_assert_eq!(out.len(), self.count, "active-set count drifted");
    }
}

/// Iterates the set bits of one word, lowest index first.
#[derive(Debug, Clone)]
pub(crate) struct BitsIter(pub(crate) u64);

impl Iterator for BitsIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_idempotent() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        s.insert(7);
        s.insert(7);
        s.insert(199);
        assert!(!s.is_empty());
        s.remove(7);
        s.remove(7);
        assert!(!s.is_empty());
        s.remove(199);
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_is_ascending() {
        let mut s = ActiveSet::new(300);
        for i in [250usize, 0, 63, 64, 65, 128, 1] {
            s.insert(i);
        }
        let mut out = Vec::new();
        s.snapshot_into(&mut out);
        assert_eq!(out, vec![0, 1, 63, 64, 65, 128, 250]);
    }

    #[test]
    fn snapshot_clears_previous_contents() {
        let mut s = ActiveSet::new(10);
        s.insert(3);
        let mut out = vec![9, 9, 9];
        s.snapshot_into(&mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn bits_iter_ascending() {
        let got: Vec<usize> = BitsIter(0b1010_0101).collect();
        assert_eq!(got, vec![0, 2, 5, 7]);
        assert_eq!(BitsIter(0).next(), None);
        assert_eq!(BitsIter(1 << 63).collect::<Vec<_>>(), vec![63]);
    }
}
