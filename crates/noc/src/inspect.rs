use crate::packet::Packet;
use crate::topology::NodeId;

/// What an inspector did to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InspectOutcome {
    /// The inspector rewrote some field of the packet (the Trojan's
    /// functional module fired). Modified packets are counted towards the
    /// network's infection statistics.
    pub modified: bool,
    /// The inspector ordered the packet dropped: the router silently sinks
    /// all its flits instead of forwarding them (the "packet drop attack"
    /// class of the paper's Section II-B). Dropped packets are never
    /// delivered and are counted in
    /// [`crate::NetworkStats::dropped_packets`].
    pub dropped: bool,
}

impl InspectOutcome {
    /// Outcome of an inspector that left the packet untouched.
    #[must_use]
    pub fn untouched() -> Self {
        InspectOutcome {
            modified: false,
            dropped: false,
        }
    }

    /// Outcome of an inspector that tampered with the packet.
    #[must_use]
    pub fn tampered() -> Self {
        InspectOutcome {
            modified: true,
            dropped: false,
        }
    }

    /// Outcome of an inspector that ordered the packet dropped.
    #[must_use]
    pub fn dropped() -> Self {
        InspectOutcome {
            modified: false,
            dropped: true,
        }
    }
}

/// Hook invoked on every packet header as it moves from a router's input
/// buffer towards the routing-computation stage.
///
/// This is exactly the attachment point of the hardware Trojan in Fig. 2(b)
/// of the paper: "an HT has 3 comparators and 2 registers that sit between
/// the router's input buffer and the routing computation module". The
/// network invokes the inspector once per hop per packet, passing the id of
/// the router the packet currently sits in.
///
/// Implementations may mutate the packet (the Trojan rewrites the payload of
/// victim power requests) and must report whether they did so, which feeds
/// the infection-rate statistics of Section V-B.
pub trait PacketInspector {
    /// Inspects (and possibly rewrites) `packet` inside router `router`.
    /// `cycle` is the current network cycle, which activation schedules use
    /// for duty-cycled attacks.
    fn inspect(&mut self, router: NodeId, cycle: u64, packet: &mut Packet) -> InspectOutcome;
}

/// An inspector that never touches any packet — the clean, Trojan-free chip.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullInspector;

impl PacketInspector for NullInspector {
    fn inspect(&mut self, _router: NodeId, _cycle: u64, _packet: &mut Packet) -> InspectOutcome {
        InspectOutcome::untouched()
    }
}

impl<T: PacketInspector + ?Sized> PacketInspector for Box<T> {
    fn inspect(&mut self, router: NodeId, cycle: u64, packet: &mut Packet) -> InspectOutcome {
        (**self).inspect(router, cycle, packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_inspector_leaves_packet_alone() {
        let mut insp = NullInspector;
        let mut p = Packet::power_request(NodeId(0), NodeId(1), 123);
        let out = insp.inspect(NodeId(5), 0, &mut p);
        assert!(!out.modified);
        assert_eq!(p.payload(), 123);
    }

    #[test]
    fn boxed_inspector_dispatches() {
        struct Zeroer;
        impl PacketInspector for Zeroer {
            fn inspect(
                &mut self,
                _router: NodeId,
                _cycle: u64,
                packet: &mut Packet,
            ) -> InspectOutcome {
                packet.set_payload(0);
                InspectOutcome::tampered()
            }
        }
        let mut insp: Box<dyn PacketInspector> = Box::new(Zeroer);
        let mut p = Packet::power_request(NodeId(0), NodeId(1), 123);
        assert!(insp.inspect(NodeId(2), 0, &mut p).modified);
        assert_eq!(p.payload(), 0);
    }
}
