//! Optional per-network live metrics: plain, write-only tallies the hot
//! loop can feed for a few adds per cycle.
//!
//! The NoC deliberately does **not** depend on the `htpb-obs` registry:
//! a [`Network`](crate::Network) is single-threaded and short-lived, so
//! atomics would be pure overhead. Instead, when enabled
//! ([`Network::enable_metrics`](crate::Network::enable_metrics)) the
//! pipeline updates this plain struct — one branch plus plain integer adds
//! on the paths involved — and a higher layer (the `htpb-manycore` bridge,
//! the `noc_perf` driver) absorbs the final values into the shared registry
//! after the run.
//!
//! Non-perturbation by construction: every field here is write-only from
//! the pipeline's point of view; nothing in `step()` ever reads one.
//! Counters the simulator already maintains for its own statistics
//! (deliveries, drops, per-router forwards, the latency histogram) are NOT
//! duplicated here — they are pulled from
//! [`NetworkStats`](crate::NetworkStats) and
//! [`Network::utilization_map`](crate::Network::utilization_map) at absorb
//! time, at zero hot-loop cost.

/// Number of occupancy buckets in [`NocMetrics::vc_occupancy`]: bucket `i`
/// counts pushes that left the VC holding `i + 1` flits, with the last
/// bucket absorbing every deeper occupancy.
pub const VC_OCCUPANCY_BUCKETS: usize = 8;

/// Live tallies updated by the pipeline when metrics are enabled.
///
/// All cycle-integral fields advance only on *stepped* (non-quiescent)
/// cycles; idle fast-forwarding contributes nothing, which keeps the values
/// a pure function of simulation state.
#[derive(Debug, Clone, Default)]
pub struct NocMetrics {
    /// Sum over stepped cycles of routers holding at least one flit —
    /// the time-integral of router activity.
    pub active_router_cycles: u64,
    /// Sum over stepped cycles of occupied link slots — the time-integral
    /// of link utilization.
    pub busy_link_cycles: u64,
    /// Sum over stepped cycles of flits waiting in injection queues — the
    /// time-integral of injection back-pressure.
    pub queued_flit_cycles: u64,
    /// Router-cycles lost to fault-injected stalls.
    pub stalled_router_cycles: u64,
    /// Histogram of VC buffer occupancy observed after each flit push
    /// (link delivery and injection): bucket `i` = occupancy `i + 1`
    /// flits, last bucket = deeper.
    pub vc_occupancy: [u64; VC_OCCUPANCY_BUCKETS],
}

impl NocMetrics {
    // htpb-lint: hot
    /// Called once per stepped cycle with the current worklist sizes.
    #[inline]
    pub(crate) fn on_cycle(&mut self, active_routers: usize, busy_links: usize, queued: usize) {
        self.active_router_cycles += active_routers as u64;
        self.busy_link_cycles += busy_links as u64;
        self.queued_flit_cycles += queued as u64;
    }

    /// Called when a fault hook stalls a router for one cycle.
    #[inline]
    pub(crate) fn on_router_stalled(&mut self) {
        self.stalled_router_cycles += 1;
    }

    /// Called after a flit lands in a VC buffer, with the resulting
    /// occupancy (`>= 1`).
    #[inline]
    pub(crate) fn on_flit_buffered(&mut self, occupancy: usize) {
        let bucket = occupancy.saturating_sub(1).min(VC_OCCUPANCY_BUCKETS - 1);
        self.vc_occupancy[bucket] += 1;
    }
    // htpb-lint: end-hot

    /// Total pushes recorded in the occupancy histogram.
    #[must_use]
    pub fn vc_occupancy_total(&self) -> u64 {
        self.vc_occupancy.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_buckets_saturate() {
        let mut m = NocMetrics::default();
        m.on_flit_buffered(1);
        m.on_flit_buffered(2);
        m.on_flit_buffered(8);
        m.on_flit_buffered(100);
        assert_eq!(m.vc_occupancy[0], 1);
        assert_eq!(m.vc_occupancy[1], 1);
        assert_eq!(m.vc_occupancy[VC_OCCUPANCY_BUCKETS - 1], 2);
        assert_eq!(m.vc_occupancy_total(), 4);
    }

    #[test]
    fn cycle_integrals_accumulate() {
        let mut m = NocMetrics::default();
        m.on_cycle(3, 2, 10);
        m.on_cycle(1, 0, 4);
        m.on_router_stalled();
        assert_eq!(m.active_router_cycles, 4);
        assert_eq!(m.busy_link_cycles, 2);
        assert_eq!(m.queued_flit_cycles, 14);
        assert_eq!(m.stalled_router_cycles, 1);
    }
}
