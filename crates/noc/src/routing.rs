use crate::topology::{Coord, Direction, Mesh2d, NodeId};

/// Selects which routing algorithm a [`crate::Network`] uses.
///
/// Table I of the paper lists XY routing; Section V-A states the evaluation
/// platform is "a 16×16 2D mesh with adaptive routing". Both are provided
/// (plus west-first as a second adaptive option); the adaptive algorithms
/// are minimal turn-model routing — odd-even and west-first — both
/// deadlock-free on 2D meshes without extra virtual channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingKind {
    /// Deterministic dimension-ordered XY routing.
    #[default]
    Xy,
    /// Minimal-adaptive odd-even turn routing.
    OddEven,
    /// Minimal-adaptive west-first turn routing.
    WestFirst,
}

impl RoutingKind {
    /// All built-in routing algorithms (for ablation sweeps).
    pub const ALL: [RoutingKind; 3] = [
        RoutingKind::Xy,
        RoutingKind::OddEven,
        RoutingKind::WestFirst,
    ];

    /// Instantiates the algorithm.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingAlgorithm> {
        match self {
            RoutingKind::Xy => Box::new(XyRouting),
            RoutingKind::OddEven => Box::new(OddEvenRouting),
            RoutingKind::WestFirst => Box::new(WestFirstRouting),
        }
    }
}

/// Candidate output directions computed by one routing call, in preference
/// order.
///
/// Routing computation runs once per packet per hop — squarely on the
/// simulator's hot path — and a minimal mesh route never offers more than
/// four directions, so the candidates live inline instead of in a per-call
/// heap `Vec`. Dereferences to a `[Direction]` slice, so call sites index
/// and iterate it like the `Vec` it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteCandidates {
    dirs: [Direction; 4],
    len: u8,
}

impl Default for RouteCandidates {
    fn default() -> Self {
        RouteCandidates::new()
    }
}

impl RouteCandidates {
    /// An empty candidate list.
    #[must_use]
    pub const fn new() -> Self {
        RouteCandidates {
            dirs: [Direction::Local; 4],
            len: 0,
        }
    }

    /// A list holding a single candidate.
    #[must_use]
    pub fn single(dir: Direction) -> Self {
        let mut c = RouteCandidates::new();
        c.push(dir);
        c
    }

    /// Appends a candidate (push order is preference order).
    ///
    /// # Panics
    ///
    /// Panics if more than four candidates are pushed.
    pub fn push(&mut self, dir: Direction) {
        self.dirs[usize::from(self.len)] = dir;
        self.len += 1;
    }

    /// The candidates as a slice, in preference order.
    #[must_use]
    pub fn as_slice(&self) -> &[Direction] {
        &self.dirs[..usize::from(self.len)]
    }
}

impl std::ops::Deref for RouteCandidates {
    type Target = [Direction];

    fn deref(&self) -> &[Direction] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a RouteCandidates {
    type Item = &'a Direction;
    type IntoIter = std::slice::Iter<'a, Direction>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A mesh routing function.
///
/// Implementations must be minimal (every returned direction reduces the
/// Manhattan distance to the destination) and deadlock-free under wormhole
/// switching with credit flow control.
pub trait RoutingAlgorithm: Send {
    /// Computes the candidate output directions for a packet at `current`
    /// heading to `dst`, in preference order. `in_dir` is the port the
    /// packet arrived on (`Local` for freshly injected packets); adaptive
    /// algorithms use it to enforce turn restrictions.
    ///
    /// Returns [`Direction::Local`] as the single candidate when
    /// `current == dst`.
    fn route(
        &self,
        mesh: Mesh2d,
        current: NodeId,
        dst: NodeId,
        in_dir: Direction,
    ) -> RouteCandidates;

    /// A short human-readable name for logs and bench output.
    fn name(&self) -> &'static str;
}

/// Deterministic dimension-ordered XY routing: exhaust the X offset, then
/// the Y offset. Deadlock-free because it never takes a Y→X turn.
#[derive(Debug, Clone, Copy, Default)]
pub struct XyRouting;

impl RoutingAlgorithm for XyRouting {
    fn route(
        &self,
        mesh: Mesh2d,
        current: NodeId,
        dst: NodeId,
        _in_dir: Direction,
    ) -> RouteCandidates {
        let c = mesh.coord(current);
        let d = mesh.coord(dst);
        RouteCandidates::single(if c == d {
            Direction::Local
        } else if d.x > c.x {
            Direction::East
        } else if d.x < c.x {
            Direction::West
        } else if d.y > c.y {
            Direction::South
        } else {
            Direction::North
        })
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

/// Minimal-adaptive odd-even turn routing (Chiu, 2000).
///
/// Turn restrictions: in even columns no East→North / East→South turn start
/// is restricted — concretely, EN/ES turns are forbidden in even columns and
/// NW/SW turns are forbidden in odd columns. The candidate set returned is
/// the set of minimal directions allowed by those rules, ordered so that the
/// less-congested dimension (larger remaining offset) is preferred.
#[derive(Debug, Clone, Copy, Default)]
pub struct OddEvenRouting;

impl OddEvenRouting {
    fn allowed(c: Coord, d: Coord, s: Coord) -> RouteCandidates {
        let mut out = RouteCandidates::new();
        let ex = d.x as i32 - c.x as i32;
        let ey = d.y as i32 - c.y as i32;
        if ex == 0 && ey == 0 {
            return RouteCandidates::single(Direction::Local);
        }
        let even_col = c.x.is_multiple_of(2);
        if ex > 0 {
            // Eastbound: turning off the E channel (E→N / E→S) is only legal
            // in odd columns, so only offer the Y moves there — unless the
            // packet is already aligned in X.
            if ey == 0 {
                out.push(Direction::East);
            } else {
                if !even_col || c.x == s.x {
                    if ey > 0 {
                        out.push(Direction::South);
                    } else {
                        out.push(Direction::North);
                    }
                }
                out.push(Direction::East);
            }
        } else if ex < 0 {
            // Westbound: N→W / S→W turns end in even columns only when the
            // destination column is even-adjacent; the classic rule forbids
            // NW/SW turns taken *into* odd columns. Minimal implementation:
            // always allow West; allow the Y move only in even columns.
            if ey != 0 && even_col {
                if ey > 0 {
                    out.push(Direction::South);
                } else {
                    out.push(Direction::North);
                }
            }
            out.push(Direction::West);
        } else {
            // X aligned: go straight along Y.
            if ey > 0 {
                out.push(Direction::South);
            } else {
                out.push(Direction::North);
            }
        }
        out
    }
}

impl RoutingAlgorithm for OddEvenRouting {
    fn route(
        &self,
        mesh: Mesh2d,
        current: NodeId,
        dst: NodeId,
        in_dir: Direction,
    ) -> RouteCandidates {
        // `in_dir == Local` means the packet was injected here; the source
        // column equals the current column in that case.
        let src_col_hint = mesh.coord(current);
        let _ = in_dir;
        Self::allowed(mesh.coord(current), mesh.coord(dst), src_col_hint)
    }

    fn name(&self) -> &'static str {
        "odd-even"
    }
}

/// Minimal-adaptive west-first turn routing (Glass & Ni, 1992).
///
/// Turn rule: any turn *to* the West is forbidden, so all required West
/// hops are taken first (deterministically); once the packet no longer
/// needs to travel West, it may route fully adaptively among the remaining
/// minimal directions. Deadlock-free on 2D meshes without extra VCs.
#[derive(Debug, Clone, Copy, Default)]
pub struct WestFirstRouting;

impl RoutingAlgorithm for WestFirstRouting {
    fn route(
        &self,
        mesh: Mesh2d,
        current: NodeId,
        dst: NodeId,
        _in_dir: Direction,
    ) -> RouteCandidates {
        let c = mesh.coord(current);
        let d = mesh.coord(dst);
        if c == d {
            return RouteCandidates::single(Direction::Local);
        }
        if d.x < c.x {
            // West hops first, exclusively.
            return RouteCandidates::single(Direction::West);
        }
        // No West component left: adaptive among the minimal E/N/S moves.
        let mut out = RouteCandidates::new();
        if d.x > c.x {
            out.push(Direction::East);
        }
        if d.y > c.y {
            out.push(Direction::South);
        } else if d.y < c.y {
            out.push(Direction::North);
        }
        out
    }

    fn name(&self) -> &'static str {
        "west-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh2d {
        Mesh2d::new(8, 8).unwrap()
    }

    #[test]
    fn xy_reaches_destination_eventually() {
        let m = mesh();
        let r = XyRouting;
        let mut cur = NodeId(0);
        let dst = NodeId(63);
        let mut hops = 0;
        loop {
            let dirs = r.route(m, cur, dst, Direction::Local);
            assert_eq!(dirs.len(), 1, "XY is deterministic");
            if dirs[0] == Direction::Local {
                break;
            }
            cur = m.neighbor(cur, dirs[0]).expect("XY never leaves the mesh");
            hops += 1;
            assert!(hops <= 14, "XY route is minimal");
        }
        assert_eq!(cur, dst);
        assert_eq!(hops, 14);
    }

    #[test]
    fn xy_is_x_first() {
        let m = mesh();
        let dirs = XyRouting.route(m, NodeId(0), NodeId(63), Direction::Local);
        assert_eq!(dirs.as_slice(), [Direction::East]);
        // Same column: moves in Y.
        let dirs = XyRouting.route(m, NodeId(7), NodeId(63), Direction::Local);
        assert_eq!(dirs.as_slice(), [Direction::South]);
    }

    #[test]
    fn routes_at_destination_are_local() {
        let m = mesh();
        for kind in RoutingKind::ALL {
            let dirs = kind
                .build()
                .route(m, NodeId(20), NodeId(20), Direction::North);
            assert_eq!(dirs.as_slice(), [Direction::Local], "{kind:?}");
        }
    }

    #[test]
    fn west_first_exhausts_west_before_adapting() {
        let m = mesh();
        let r = WestFirstRouting;
        // dst is west and south of src: only West offered.
        let dirs = r.route(m, NodeId(12), NodeId(24), Direction::Local); // (4,1) -> (0,3)
        assert_eq!(dirs.as_slice(), [Direction::West]);
        // dst is east and south: both adaptive options offered.
        let dirs = r.route(m, NodeId(0), NodeId(63), Direction::Local);
        assert_eq!(dirs.as_slice(), [Direction::East, Direction::South]);
    }

    #[test]
    fn west_first_candidates_are_minimal_on_all_pairs() {
        let m = Mesh2d::new(6, 6).unwrap();
        let r = WestFirstRouting;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                for &dir in &r.route(m, src, dst, Direction::Local) {
                    if dir == Direction::Local {
                        assert_eq!(src, dst);
                        continue;
                    }
                    let next = m.neighbor(src, dir).expect("stays in mesh");
                    assert_eq!(
                        m.distance(next, dst) + 1,
                        m.distance(src, dst),
                        "{dir:?} from {src} to {dst} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn odd_even_candidates_are_minimal() {
        let m = mesh();
        let r = OddEvenRouting;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                let dirs = r.route(m, src, dst, Direction::Local);
                assert!(!dirs.is_empty());
                for d in &dirs {
                    if *d == Direction::Local {
                        assert_eq!(src, dst);
                        continue;
                    }
                    let next = m
                        .neighbor(src, *d)
                        .expect("candidate must stay inside the mesh");
                    assert_eq!(
                        m.distance(next, dst) + 1,
                        m.distance(src, dst),
                        "candidate {d:?} from {src} to {dst} is not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn odd_even_terminates_on_all_pairs() {
        let m = Mesh2d::new(6, 6).unwrap();
        let r = OddEvenRouting;
        for src in m.iter_nodes() {
            for dst in m.iter_nodes() {
                let mut cur = src;
                let mut hops = 0u32;
                loop {
                    let dirs = r.route(m, cur, dst, Direction::Local);
                    if dirs[0] == Direction::Local {
                        break;
                    }
                    cur = m.neighbor(cur, dirs[0]).unwrap();
                    hops += 1;
                    assert!(hops <= m.distance(src, dst), "route not minimal");
                }
                assert_eq!(cur, dst);
            }
        }
    }
}
