use std::fmt;

use crate::topology::NodeId;

/// Errors produced by the NoC simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A mesh dimension was zero or the node count exceeds the 16-bit
    /// address space of the packet header (Fig. 1 uses 16-bit addresses).
    InvalidMesh {
        /// Requested mesh width.
        width: u16,
        /// Requested mesh height.
        height: u16,
    },
    /// A node id referenced a node outside the current mesh.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the mesh.
        nodes: u32,
    },
    /// A packet could not be injected because the node's injection queue is
    /// bounded and full.
    InjectionQueueFull {
        /// The node whose queue overflowed.
        node: NodeId,
    },
    /// A raw packet could not be decoded into a typed [`crate::Packet`].
    MalformedPacket {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidMesh { width, height } => {
                write!(f, "invalid mesh dimensions {width}x{height}")
            }
            NocError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {} out of range (mesh has {nodes} nodes)", node.0)
            }
            NocError::InjectionQueueFull { node } => {
                write!(f, "injection queue full at node {}", node.0)
            }
            NocError::MalformedPacket { reason } => write!(f, "malformed packet: {reason}"),
        }
    }
}

impl std::error::Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            NocError::InvalidMesh {
                width: 0,
                height: 4
            }
            .to_string(),
            "invalid mesh dimensions 0x4"
        );
        assert_eq!(
            NocError::NodeOutOfRange {
                node: NodeId(99),
                nodes: 64
            }
            .to_string(),
            "node 99 out of range (mesh has 64 nodes)"
        );
        assert_eq!(
            NocError::InjectionQueueFull { node: NodeId(3) }.to_string(),
            "injection queue full at node 3"
        );
        assert!(NocError::MalformedPacket { reason: "short" }
            .to_string()
            .contains("short"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> =
            Box::new(NocError::InjectionQueueFull { node: NodeId(1) });
        assert!(e.source().is_none());
    }
}
