use std::fmt;

use crate::error::NocError;
use crate::topology::NodeId;

/// Number of mandatory 32-bit words in a packet frame (Fig. 1): the
/// source/destination header word, the packet-type word and the payload word.
pub const PACKET_HEADER_WORDS: usize = 3;

/// Wire value of the `POWER_REQ` packet type (Fig. 1a).
const TYPE_POWER_REQ: u8 = 0x01;
/// Wire value of the `CONFIG_CMD` packet type (Fig. 1b).
const TYPE_CONFIG_CMD: u8 = 0x02;
/// Wire value of a power-grant reply from the global manager.
const TYPE_POWER_GRANT: u8 = 0x03;
/// Wire value of a generic 5-flit data packet (memory transaction payload).
const TYPE_DATA: u8 = 0x04;
/// Wire value of a 1-flit meta packet (coherence / control message).
const TYPE_META: u8 = 0x05;

/// The Trojan activation signal carried in the `CONFIG_CMD` type word
/// (Fig. 1b).
///
/// The paper's attack process (Section III-B) lets the attacker alternate
/// `ON`/`OFF` signals over time to duty-cycle the Trojans; the signal is an
/// 8-bit field on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationSignal {
    /// Deactivate the Trojan: packets are forwarded unmodified.
    Off,
    /// Activate the Trojan: matching power requests are tampered with.
    On,
}

impl ActivationSignal {
    /// Wire encoding of the signal.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            ActivationSignal::Off => 0,
            ActivationSignal::On => 1,
        }
    }

    /// Decodes a wire byte; any non-zero value activates (fail-active keeps
    /// the Trojan circuit minimal — a single OR over the byte).
    #[must_use]
    pub fn from_wire(b: u8) -> Self {
        if b == 0 {
            ActivationSignal::Off
        } else {
            ActivationSignal::On
        }
    }
}

/// The contents of a Trojan configuration command (Fig. 1b).
///
/// The 32-bit packet-type word of a `CONFIG_CMD` packet packs the command
/// opcode (8 bits), the global manager's node id (16 bits) and the
/// activation signal (8 bits). The source-address field of the header carries
/// the attacker's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigCommand {
    /// Node id of the global power manager the Trojan should match on.
    pub manager: NodeId,
    /// Whether the Trojan should be armed.
    pub activation: ActivationSignal,
}

/// Typed packet kinds understood by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A power-budget request travelling to the global manager; the payload
    /// is the requested power in milliwatts (Fig. 1a).
    PowerReq,
    /// A Trojan configuration command broadcast by the attacker (Fig. 1b).
    ConfigCmd(ConfigCommand),
    /// A power-budget grant sent back by the global manager; the payload is
    /// the granted power in milliwatts.
    PowerGrant,
    /// A 5-flit data packet (cache-line transfer; Table I "data packet").
    Data,
    /// A 1-flit meta packet (coherence request/ack; Table I "meta packet").
    Meta,
}

impl PacketKind {
    /// Encodes the 32-bit packet-type word.
    #[must_use]
    pub fn to_type_word(self) -> u32 {
        match self {
            PacketKind::PowerReq => (TYPE_POWER_REQ as u32) << 24,
            PacketKind::ConfigCmd(cmd) => {
                ((TYPE_CONFIG_CMD as u32) << 24)
                    | ((cmd.manager.0 as u32) << 8)
                    | cmd.activation.to_wire() as u32
            }
            PacketKind::PowerGrant => (TYPE_POWER_GRANT as u32) << 24,
            PacketKind::Data => (TYPE_DATA as u32) << 24,
            PacketKind::Meta => (TYPE_META as u32) << 24,
        }
    }

    /// Decodes a 32-bit packet-type word.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::MalformedPacket`] on an unknown opcode.
    pub fn from_type_word(word: u32) -> Result<Self, NocError> {
        let opcode = (word >> 24) as u8;
        match opcode {
            TYPE_POWER_REQ => Ok(PacketKind::PowerReq),
            TYPE_CONFIG_CMD => Ok(PacketKind::ConfigCmd(ConfigCommand {
                manager: NodeId(((word >> 8) & 0xFFFF) as u16),
                activation: ActivationSignal::from_wire((word & 0xFF) as u8),
            })),
            TYPE_POWER_GRANT => Ok(PacketKind::PowerGrant),
            TYPE_DATA => Ok(PacketKind::Data),
            TYPE_META => Ok(PacketKind::Meta),
            _ => Err(NocError::MalformedPacket {
                reason: "unknown packet-type opcode",
            }),
        }
    }

    /// Whether packets of this kind occupy a single flit ("meta packet" in
    /// Table I) rather than the full 5-flit data frame.
    #[must_use]
    pub fn is_single_flit(self) -> bool {
        !matches!(self, PacketKind::Data)
    }
}

/// A network packet, following the frame layout of Fig. 1.
///
/// All fields fit in four 32-bit words (plus the optional word), so packets
/// are `Copy` and head flits carry the whole frame for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    src: NodeId,
    dst: NodeId,
    kind: PacketKind,
    payload: u32,
    options: Option<u32>,
}

impl Packet {
    /// Creates a packet with an explicit kind and payload.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId, kind: PacketKind, payload: u32) -> Self {
        Packet {
            src,
            dst,
            kind,
            payload,
            options: None,
        }
    }

    /// Creates a `POWER_REQ` packet carrying `milliwatts` (Fig. 1a).
    #[must_use]
    pub fn power_request(src: NodeId, manager: NodeId, milliwatts: u32) -> Self {
        Packet::new(src, manager, PacketKind::PowerReq, milliwatts)
    }

    /// Creates a `CONFIG_CMD` packet from the attacker to `dst` (Fig. 1b).
    ///
    /// The payload word is `#EMPTY#` (zero) per the figure.
    #[must_use]
    pub fn config_command(
        attacker: NodeId,
        dst: NodeId,
        manager: NodeId,
        activation: ActivationSignal,
    ) -> Self {
        Packet::new(
            attacker,
            dst,
            PacketKind::ConfigCmd(ConfigCommand {
                manager,
                activation,
            }),
            0,
        )
    }

    /// Creates a power-grant reply from the global manager.
    #[must_use]
    pub fn power_grant(manager: NodeId, dst: NodeId, milliwatts: u32) -> Self {
        Packet::new(manager, dst, PacketKind::PowerGrant, milliwatts)
    }

    /// Source address (16 bits on the wire). For `CONFIG_CMD` packets this is
    /// the attacker's id.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination address (16 bits on the wire).
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The typed packet kind.
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        self.kind
    }

    /// The 32-bit payload word. For `POWER_REQ`/`POWER_GRANT` packets this is
    /// a power value in milliwatts.
    #[must_use]
    pub fn payload(&self) -> u32 {
        self.payload
    }

    /// Overwrites the payload word. This is the operation the Trojan's
    /// functional module performs on victim power requests (Section III-C).
    pub fn set_payload(&mut self, payload: u32) {
        self.payload = payload;
    }

    /// The optional options word.
    #[must_use]
    pub fn options(&self) -> Option<u32> {
        self.options
    }

    /// Attaches an options word, returning the modified packet.
    #[must_use]
    pub fn with_options(mut self, options: u32) -> Self {
        self.options = Some(options);
        self
    }

    /// Number of flits this packet occupies on the wire (Table I: data
    /// packets are 5 flits, meta packets 1 flit).
    #[must_use]
    pub fn flit_count(&self) -> usize {
        if self.kind.is_single_flit() {
            crate::flit::FLITS_PER_META_PACKET
        } else {
            crate::flit::FLITS_PER_DATA_PACKET
        }
    }

    /// Serialises the packet into its wire words (Fig. 1 layout).
    #[must_use]
    pub fn encode(&self) -> RawPacket {
        let mut words = [0u32; 4];
        words[0] = ((self.src.0 as u32) << 16) | self.dst.0 as u32;
        words[1] = self.kind.to_type_word();
        words[2] = self.payload;
        let mut len = PACKET_HEADER_WORDS;
        if let Some(opt) = self.options {
            words[3] = opt;
            len = 4;
        }
        RawPacket { words, len }
    }

    /// Deserialises a packet from its wire words.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::MalformedPacket`] if the frame is too short or the
    /// packet-type word is unknown.
    pub fn decode(raw: &RawPacket) -> Result<Self, NocError> {
        if raw.len < PACKET_HEADER_WORDS {
            return Err(NocError::MalformedPacket {
                reason: "frame shorter than mandatory three words",
            });
        }
        let kind = PacketKind::from_type_word(raw.words[1])?;
        Ok(Packet {
            src: NodeId((raw.words[0] >> 16) as u16),
            dst: NodeId((raw.words[0] & 0xFFFF) as u16),
            kind,
            payload: raw.words[2],
            options: (raw.len > PACKET_HEADER_WORDS).then(|| raw.words[3]),
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {} -> {} payload={}",
            self.kind, self.src, self.dst, self.payload
        )
    }
}

/// The wire representation of a packet: up to four 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawPacket {
    /// Frame words; only the first `len` are meaningful.
    pub words: [u32; 4],
    /// Number of valid words (3 without options, 4 with).
    pub len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_request_roundtrip() {
        let p = Packet::power_request(NodeId(42), NodeId(136), 2_750);
        let raw = p.encode();
        assert_eq!(raw.len, 3);
        let q = Packet::decode(&raw).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.payload(), 2_750);
        assert_eq!(q.kind(), PacketKind::PowerReq);
    }

    #[test]
    fn config_command_roundtrip() {
        let p = Packet::config_command(NodeId(7), NodeId(99), NodeId(136), ActivationSignal::On);
        let q = Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, q);
        match q.kind() {
            PacketKind::ConfigCmd(cmd) => {
                assert_eq!(cmd.manager, NodeId(136));
                assert_eq!(cmd.activation, ActivationSignal::On);
            }
            other => panic!("wrong kind {other:?}"),
        }
        assert_eq!(q.src(), NodeId(7), "source carries the attacker id");
    }

    #[test]
    fn options_word_roundtrip() {
        let p = Packet::power_request(NodeId(1), NodeId(2), 3).with_options(0xDEAD_BEEF);
        let raw = p.encode();
        assert_eq!(raw.len, 4);
        let q = Packet::decode(&raw).unwrap();
        assert_eq!(q.options(), Some(0xDEAD_BEEF));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut raw = Packet::power_request(NodeId(1), NodeId(2), 3).encode();
        raw.words[1] = 0xFF00_0000;
        assert!(Packet::decode(&raw).is_err());
    }

    #[test]
    fn short_frame_rejected() {
        let raw = RawPacket {
            words: [0; 4],
            len: 2,
        };
        assert!(Packet::decode(&raw).is_err());
    }

    #[test]
    fn flit_counts_follow_table1() {
        assert_eq!(
            Packet::power_request(NodeId(0), NodeId(1), 5).flit_count(),
            1
        );
        assert_eq!(
            Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 0).flit_count(),
            5
        );
        assert_eq!(
            Packet::new(NodeId(0), NodeId(1), PacketKind::Meta, 0).flit_count(),
            1
        );
    }

    #[test]
    fn activation_signal_fail_active() {
        assert_eq!(ActivationSignal::from_wire(0), ActivationSignal::Off);
        assert_eq!(ActivationSignal::from_wire(1), ActivationSignal::On);
        assert_eq!(ActivationSignal::from_wire(0x80), ActivationSignal::On);
    }

    #[test]
    fn tamper_changes_only_payload() {
        let mut p = Packet::power_request(NodeId(3), NodeId(4), 9_000);
        p.set_payload(100);
        assert_eq!(p.payload(), 100);
        assert_eq!(p.src(), NodeId(3));
        assert_eq!(p.dst(), NodeId(4));
        assert_eq!(p.kind(), PacketKind::PowerReq);
    }
}
