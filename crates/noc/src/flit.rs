use crate::packet::Packet;
use crate::topology::NodeId;

/// Flit width in bits (Table I: "NoC flit size 72-bit").
pub const FLIT_SIZE_BITS: u32 = 72;

/// Flits per data packet (Table I: "Data packet size 5 flits").
pub const FLITS_PER_DATA_PACKET: usize = 5;

/// Flits per meta packet (Table I: "Meta packet size 1 flit").
pub const FLITS_PER_META_PACKET: usize = 1;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the routing header.
    Head,
    /// Interior flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet; releases the wormhole path.
    Tail,
    /// Single-flit packet: head and tail at once (meta packets).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit carries the packet header (and is therefore the
    /// flit the Trojan's comparators scan).
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit terminates the packet.
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flow-control unit travelling through the network.
///
/// Head flits carry the full decoded [`Packet`] so that the routing
/// computation (and the Trojan sitting in front of it, Fig. 2b) can inspect
/// source, destination, type and payload without reassembling the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Position within the packet.
    pub kind: FlitKind,
    /// Unique id of the packet this flit belongs to (simulator-assigned).
    pub packet_id: u64,
    /// Destination node, replicated in every flit for assertions.
    pub dst: NodeId,
    /// The full packet frame; present in head flits only.
    pub packet: Option<Packet>,
    /// Cycle at which the packet was injected (head flit only, for latency
    /// accounting).
    pub injected_at: u64,
    /// Index of the packet's bookkeeping slot in the owning network's
    /// packet store. [`Flit::NO_SLOT`] for flits created outside a network
    /// (unit tests, reference models) — such flits carry all their metadata
    /// inline and never touch a store.
    pub slot: u32,
}

impl Flit {
    /// Sentinel [`Flit::slot`] for flits not backed by a packet store.
    pub const NO_SLOT: u32 = u32::MAX;

    /// Builds the `i`-th of the `n` wire flits of a packet, without
    /// allocating. `i == 0` carries the header (and the packet frame);
    /// `i == n - 1` terminates the wormhole; `n == 1` yields the combined
    /// `HeadTail` flit of a meta packet.
    #[must_use]
    pub fn nth(packet: Packet, packet_id: u64, now: u64, i: usize, n: usize) -> Flit {
        let kind = if n == 1 {
            FlitKind::HeadTail
        } else if i == 0 {
            FlitKind::Head
        } else if i == n - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        };
        Flit {
            kind,
            packet_id,
            dst: packet.dst(),
            packet: kind.is_head().then_some(packet),
            injected_at: now,
            slot: Flit::NO_SLOT,
        }
    }

    /// Splits a packet into its wire flits.
    ///
    /// Meta packets (power requests/grants, config commands, coherence
    /// messages) become a single `HeadTail` flit; data packets become a
    /// `Head`, three `Body` and one `Tail` flit (Table I).
    #[must_use]
    pub fn packetize(packet: Packet, packet_id: u64, now: u64) -> Vec<Flit> {
        let n = packet.flit_count();
        (0..n)
            .map(|i| Flit::nth(packet, packet_id, now, i, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn meta_packet_is_one_headtail_flit() {
        let p = Packet::power_request(NodeId(1), NodeId(2), 7);
        let flits = Flit::packetize(p, 9, 100);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head() && flits[0].kind.is_tail());
        assert_eq!(flits[0].packet, Some(p));
        assert_eq!(flits[0].injected_at, 100);
    }

    #[test]
    fn data_packet_is_five_flits() {
        let p = Packet::new(NodeId(1), NodeId(2), PacketKind::Data, 0);
        let flits = Flit::packetize(p, 1, 0);
        assert_eq!(flits.len(), FLITS_PER_DATA_PACKET);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert!(flits[1..4].iter().all(|f| f.kind == FlitKind::Body));
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits[0].packet.is_some());
        assert!(flits[1..].iter().all(|f| f.packet.is_none()));
    }

    #[test]
    fn all_flits_share_packet_id_and_dst() {
        let p = Packet::new(NodeId(3), NodeId(9), PacketKind::Data, 0);
        let flits = Flit::packetize(p, 77, 0);
        assert!(flits.iter().all(|f| f.packet_id == 77));
        assert!(flits.iter().all(|f| f.dst == NodeId(9)));
    }
}
