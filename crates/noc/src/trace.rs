//! Packet-lifecycle tracing: a bounded in-memory recorder of injection,
//! per-hop routing, tampering and ejection events.
//!
//! Tracing is opt-in (`NetworkConfig::with_tracing`) and cheap when off.
//! It exists for two consumers: debugging the simulator itself, and the
//! defense work — an audit log of *where* each power request was routed is
//! exactly what a secure manager would need to reconstruct attack routes
//! after detection.

use std::collections::VecDeque;

use crate::fnv::Digest;
use crate::packet::PacketKind;
use crate::topology::NodeId;

/// One recorded event in a packet's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The packet entered its source node's injection queue.
    Injected {
        /// Simulator-assigned packet id.
        packet: u64,
        /// Packet kind at injection.
        kind: PacketKind,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Cycle of injection.
        cycle: u64,
    },
    /// The packet's header ran routing computation at a router.
    Routed {
        /// Packet id.
        packet: u64,
        /// Router where RC ran.
        node: NodeId,
        /// Cycle of routing computation.
        cycle: u64,
    },
    /// An inspector (Trojan) rewrote the packet at a router.
    Tampered {
        /// Packet id.
        packet: u64,
        /// Router where the rewrite happened.
        node: NodeId,
        /// Payload before the rewrite.
        payload_before: u32,
        /// Payload after the rewrite.
        payload_after: u32,
        /// Cycle of the rewrite.
        cycle: u64,
    },
    /// The packet's tail flit left the network at its destination.
    Ejected {
        /// Packet id.
        packet: u64,
        /// Destination node.
        node: NodeId,
        /// Cycle of ejection.
        cycle: u64,
    },
}

impl TraceEvent {
    /// The packet id this event belongs to.
    #[must_use]
    pub fn packet(&self) -> u64 {
        match self {
            TraceEvent::Injected { packet, .. }
            | TraceEvent::Routed { packet, .. }
            | TraceEvent::Tampered { packet, .. }
            | TraceEvent::Ejected { packet, .. } => *packet,
        }
    }

    /// The cycle the event occurred at.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Injected { cycle, .. }
            | TraceEvent::Routed { cycle, .. }
            | TraceEvent::Tampered { cycle, .. }
            | TraceEvent::Ejected { cycle, .. } => *cycle,
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s: the newest `capacity` events
/// are retained, older ones are dropped (with a counter, so consumers can
/// tell the log was clipped).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer retaining up to `capacity` events (min 16).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            capacity: capacity.max(16),
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained events for one packet, oldest first — the packet's
    /// reconstructed life: injection, per-hop route, tamperings, ejection.
    #[must_use]
    pub fn packet_history(&self, packet: u64) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.packet() == packet)
            .copied()
            .collect()
    }

    /// The route (routers in visit order) one packet took, from its
    /// retained `Routed` events.
    #[must_use]
    pub fn packet_route(&self, packet: u64) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Routed {
                    packet: p, node, ..
                } if *p == packet => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// Routers where tampering was recorded, with counts, descending.
    #[must_use]
    pub fn tamper_hotspots(&self) -> Vec<(NodeId, u64)> {
        let mut counts: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
        for e in &self.events {
            if let TraceEvent::Tampered { node, .. } = e {
                *counts.entry(*node).or_default() += 1;
            }
        }
        let mut v: Vec<(NodeId, u64)> = counts.into_iter().collect();
        v.sort_by_key(|(n, c)| (std::cmp::Reverse(*c), n.0));
        v
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// A platform-stable FNV-1a fingerprint over the retained events (kind,
    /// fields and order) plus the eviction counter. Used by the determinism
    /// tests to certify the trace stream is byte-identical across pipeline
    /// implementations.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.u64(self.dropped).u64(self.events.len() as u64);
        for e in &self.events {
            match *e {
                TraceEvent::Injected {
                    packet,
                    kind,
                    src,
                    dst,
                    cycle,
                } => {
                    d.u64(1)
                        .u64(packet)
                        .u64(u64::from(kind.to_type_word()))
                        .u64(u64::from(src.0))
                        .u64(u64::from(dst.0))
                        .u64(cycle);
                }
                TraceEvent::Routed {
                    packet,
                    node,
                    cycle,
                } => {
                    d.u64(2).u64(packet).u64(u64::from(node.0)).u64(cycle);
                }
                TraceEvent::Tampered {
                    packet,
                    node,
                    payload_before,
                    payload_after,
                    cycle,
                } => {
                    d.u64(3)
                        .u64(packet)
                        .u64(u64::from(node.0))
                        .u64(u64::from(payload_before))
                        .u64(u64::from(payload_after))
                        .u64(cycle);
                }
                TraceEvent::Ejected {
                    packet,
                    node,
                    cycle,
                } => {
                    d.u64(4).u64(packet).u64(u64::from(node.0)).u64(cycle);
                }
            }
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routed(packet: u64, node: u16, cycle: u64) -> TraceEvent {
        TraceEvent::Routed {
            packet,
            node: NodeId(node),
            cycle,
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut b = TraceBuffer::new(16);
        for i in 0..20 {
            b.record(routed(i, 0, i));
        }
        assert_eq!(b.len(), 16);
        assert_eq!(b.dropped(), 4);
        // Oldest retained is packet 4.
        assert_eq!(b.events().next().unwrap().packet(), 4);
    }

    #[test]
    fn packet_history_and_route() {
        let mut b = TraceBuffer::new(64);
        b.record(TraceEvent::Injected {
            packet: 7,
            kind: PacketKind::PowerReq,
            src: NodeId(3),
            dst: NodeId(0),
            cycle: 0,
        });
        b.record(routed(7, 3, 0));
        b.record(routed(8, 5, 1)); // unrelated packet interleaved
        b.record(TraceEvent::Tampered {
            packet: 7,
            node: NodeId(2),
            payload_before: 1000,
            payload_after: 0,
            cycle: 3,
        });
        b.record(routed(7, 2, 3));
        b.record(TraceEvent::Ejected {
            packet: 7,
            node: NodeId(0),
            cycle: 9,
        });
        let hist = b.packet_history(7);
        assert_eq!(hist.len(), 5);
        assert!(matches!(hist[0], TraceEvent::Injected { .. }));
        assert!(matches!(hist.last(), Some(TraceEvent::Ejected { .. })));
        assert_eq!(b.packet_route(7), vec![NodeId(3), NodeId(2)]);
    }

    #[test]
    fn tamper_hotspots_sorted_by_count() {
        let mut b = TraceBuffer::new(64);
        for (node, times) in [(5u16, 3), (9, 1), (2, 2)] {
            for i in 0..times {
                b.record(TraceEvent::Tampered {
                    packet: u64::from(node) * 10 + i,
                    node: NodeId(node),
                    payload_before: 1,
                    payload_after: 0,
                    cycle: 0,
                });
            }
        }
        let hot = b.tamper_hotspots();
        assert_eq!(hot, vec![(NodeId(5), 3), (NodeId(2), 2), (NodeId(9), 1)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = TraceBuffer::new(16);
        for i in 0..20 {
            b.record(routed(i, 0, i));
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
    }
}
