use std::collections::VecDeque;

use crate::active::{ActiveSet, BitsIter};
use crate::error::NocError;
use crate::fault::{FaultAction, FaultHook};
use crate::flit::Flit;
use crate::inspect::{NullInspector, PacketInspector};
use crate::metrics::NocMetrics;
use crate::packet::{Packet, PacketKind};
use crate::router::{Router, RouterConfig};
use crate::routing::{RoutingAlgorithm, RoutingKind};
use crate::stats::NetworkStats;
use crate::store::PacketStore;
use crate::topology::{Direction, Mesh2d, NodeId};
use crate::trace::{TraceBuffer, TraceEvent};

/// Construction parameters of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Mesh topology.
    pub mesh: Mesh2d,
    /// Per-router microarchitecture (VC count, buffer depth).
    pub router: RouterConfig,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Maximum number of flits a node's injection queue may hold before
    /// [`Network::inject`] reports back-pressure.
    pub injection_queue_capacity: usize,
    /// Packet-lifecycle tracing: `Some(capacity)` retains the newest
    /// `capacity` [`TraceEvent`]s in a ring buffer; `None` (default)
    /// disables tracing entirely.
    pub trace_capacity: Option<usize>,
}

impl NetworkConfig {
    /// Creates a configuration with Table-I defaults (4 VCs, 5-flit buffers,
    /// XY routing) on the given mesh.
    #[must_use]
    pub fn new(mesh: Mesh2d) -> Self {
        NetworkConfig {
            mesh,
            router: RouterConfig::default(),
            routing: RoutingKind::default(),
            injection_queue_capacity: 4096,
            trace_capacity: None,
        }
    }

    /// Enables packet-lifecycle tracing with the given ring-buffer
    /// capacity.
    #[must_use]
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects a routing algorithm.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Overrides the router microarchitecture.
    #[must_use]
    pub fn with_router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }
}

/// A packet that reached its destination, with delivery metadata.
#[derive(Debug, Clone, Copy)]
pub struct DeliveredPacket {
    /// The packet as received — if a Trojan rewrote it en route, this is the
    /// tampered frame (the receiver cannot tell).
    pub packet: Packet,
    /// End-to-end latency in cycles, injection to tail ejection.
    pub latency: u64,
    /// Number of router-to-router hops traversed.
    pub hops: u32,
    /// Whether any inspector reported modifying this packet. This is ground
    /// truth available to the experimenter, not to the receiver.
    pub modified: bool,
}

/// A cycle-accurate wormhole-switched 2D-mesh network.
///
/// The per-cycle pipeline models a two-cycle router plus one-cycle links
/// (Table I): within [`Network::step`] the stages run in the order
/// *link delivery* → *switch traversal* → *injection* → *VC allocation* →
/// *routing computation & inspection*, so a head flit arriving in cycle *t*
/// is routed in *t*, allocated in *t + 1*, traverses the crossbar in *t + 2*
/// and lands in the next router's buffer in *t + 3*. Flits stamped into a
/// buffer in cycle *t* are not switch-eligible until *t + 1*.
///
/// The inspector hook (the Trojan attachment point, Fig. 2b) runs once per
/// packet per router, immediately before routing computation.
///
/// # Active-set stepping
///
/// Per-cycle cost is proportional to *activity*, not mesh size: each stage
/// walks an incrementally-maintained worklist ([`ActiveSet`]) — routers
/// holding flits, occupied link slots, nodes with queued injections —
/// instead of scanning every router × port × VC. The worklists iterate in
/// ascending index order, which is exactly the order the original dense
/// scans used, so the optimisation is observably invisible (locked by the
/// golden-digest tests in `tests/determinism_golden.rs`). Invariants,
/// restored at the end of every [`Network::step`]:
///
/// * `active` = set of routers with `buffered_flits() > 0`;
/// * `links_occupied` = set of link indices with `links[i].is_some()`;
/// * `inject_busy` = set of nodes with a non-empty injection queue, and
///   `queued_flits` = total flits across all injection queues.
pub struct Network<I: PacketInspector = NullInspector> {
    mesh: Mesh2d,
    routing: Box<dyn RoutingAlgorithm>,
    routers: Vec<Router>,
    /// `links[node * 4 + dir]`: flit in flight from `node` towards `dir`,
    /// together with the downstream VC it was allocated.
    links: Vec<Option<(Flit, usize)>>,
    injection_queues: Vec<VecDeque<Flit>>,
    /// Local input VC currently receiving an in-progress injected packet.
    injection_vc: Vec<Option<usize>>,
    injection_capacity: usize,
    /// Slab of per-packet bookkeeping (injection cycle, hops, tamper flag,
    /// parked head frames). Flits carry their slot index, so hot-path
    /// metadata touches are one array access, not a hash probe.
    store: PacketStore,
    ejected: Vec<DeliveredPacket>,
    inspector: I,
    /// Optional deterministic fault layer ([`FaultHook`]). `None` (the
    /// default) costs one branch per [`Network::step`]; a hook whose
    /// [`FaultHook::any_faults_at`] returns `false` costs one virtual call.
    faults: Option<Box<dyn FaultHook>>,
    /// Optional live metrics ([`NocMetrics`]). `None` (the default) costs
    /// one branch per [`Network::step`] and one per flit push; the pipeline
    /// only ever *writes* these tallies, so enabling them cannot perturb
    /// behaviour (locked by the metrics-on golden digests and the
    /// conformance oracle).
    metrics: Option<Box<NocMetrics>>,
    stats: NetworkStats,
    trace: Option<TraceBuffer>,
    cycle: u64,
    next_packet_id: u64,
    /// Routers currently holding at least one buffered flit.
    active: ActiveSet,
    /// Link slots (`node * 4 + dir`) currently carrying a flit.
    links_occupied: ActiveSet,
    /// Nodes whose injection queue is non-empty.
    inject_busy: ActiveSet,
    /// Total flits waiting across all injection queues.
    queued_flits: usize,
    /// `neighbor_tbl[node * 4 + dir]`: the node across that link, flattened
    /// once at construction so the hot loops never recompute coordinates.
    neighbor_tbl: Vec<Option<NodeId>>,
    /// Reusable snapshot buffer for per-stage worklist iteration.
    scratch: Vec<u32>,
    /// Reusable buffer for deferred credit returns in switch traversal.
    credit_scratch: Vec<(NodeId, Direction, usize, bool)>,
    /// Test-only seeded bug ([`Network::set_rr_skew`]): advance the switch
    /// round-robin pointer by 2 instead of 1 after each grant.
    rr_skew: bool,
}

impl Network<NullInspector> {
    /// Creates a clean (Trojan-free) network.
    #[must_use]
    pub fn new(config: NetworkConfig) -> Self {
        Network::with_inspector(config, NullInspector)
    }
}

impl<I: PacketInspector> Network<I> {
    /// Creates a network whose routers pass every packet header through
    /// `inspector` ahead of routing computation.
    #[must_use]
    pub fn with_inspector(config: NetworkConfig, inspector: I) -> Self {
        let nodes = config.mesh.nodes() as usize;
        Network {
            mesh: config.mesh,
            routing: config.routing.build(),
            routers: (0..nodes)
                .map(|i| Router::new(NodeId(i as u16), config.router))
                .collect(),
            links: vec![None; nodes * 4],
            injection_queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            injection_vc: vec![None; nodes],
            injection_capacity: config.injection_queue_capacity,
            store: PacketStore::new(),
            ejected: Vec::new(),
            inspector,
            faults: None,
            metrics: None,
            stats: NetworkStats::default(),
            trace: config.trace_capacity.map(TraceBuffer::new),
            cycle: 0,
            next_packet_id: 0,
            active: ActiveSet::new(nodes),
            links_occupied: ActiveSet::new(nodes * 4),
            inject_busy: ActiveSet::new(nodes),
            queued_flits: 0,
            neighbor_tbl: config.mesh.neighbor_table(),
            scratch: Vec::new(),
            credit_scratch: Vec::new(),
            rr_skew: false,
        }
    }

    /// Seeds a deliberate arbitration bug: after every switch grant the
    /// round-robin pointer advances by 2 slots instead of 1, perturbing
    /// fairness under contention. Exists solely so the differential oracle
    /// in `htpb-testkit` can demonstrate that it catches (and shrinks) a
    /// real pipeline mutation; never enable it outside that test rig.
    #[doc(hidden)]
    pub fn set_rr_skew(&mut self, on: bool) {
        self.rr_skew = on;
    }

    /// The mesh topology.
    #[must_use]
    pub fn mesh(&self) -> Mesh2d {
        self.mesh
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to the inspector.
    #[must_use]
    pub fn inspector(&self) -> &I {
        &self.inspector
    }

    /// Mutable access to the inspector (e.g. to re-arm Trojans mid-run).
    pub fn inspector_mut(&mut self) -> &mut I {
        &mut self.inspector
    }

    /// Installs a fault-injection hook (replacing any previous one). See
    /// [`FaultHook`] for where the pipeline consults it.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.faults = Some(hook);
    }

    /// Removes and returns the installed fault hook, if any — the way to
    /// read back a fault plan's counters after a run.
    pub fn take_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.faults.take()
    }

    /// Whether a fault hook is currently installed.
    #[must_use]
    pub fn has_fault_hook(&self) -> bool {
        self.faults.is_some()
    }

    /// Enables live metric collection ([`NocMetrics`]). Idempotent; the
    /// single `Box` allocation happens here, before steady state, keeping
    /// [`Network::step`] allocation-free with metrics on (locked by
    /// `tests/alloc_regression.rs`).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::default());
        }
    }

    /// The live metrics, when enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&NocMetrics> {
        self.metrics.as_deref()
    }

    /// Aggregate network statistics.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The packet-lifecycle trace, when tracing was enabled at
    /// construction.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Read access to a router (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the mesh.
    #[must_use]
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.0 as usize]
    }

    /// Per-node crossbar utilization: flits forwarded by each router, in
    /// node order — the raw material for congestion heatmaps.
    #[must_use]
    pub fn utilization_map(&self) -> Vec<u64> {
        self.routers.iter().map(Router::flits_forwarded).collect()
    }

    /// Enqueues `packet` at its source node's injection queue and returns the
    /// simulator-assigned packet id.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] for addresses outside the mesh
    /// and [`NocError::InjectionQueueFull`] under back-pressure.
    pub fn inject(&mut self, packet: Packet) -> Result<u64, NocError> {
        for node in [packet.src(), packet.dst()] {
            if !self.mesh.contains(node) {
                return Err(NocError::NodeOutOfRange {
                    node,
                    nodes: self.mesh.nodes(),
                });
            }
        }
        let queue = &mut self.injection_queues[packet.src().0 as usize];
        if queue.len() + packet.flit_count() > self.injection_capacity {
            return Err(NocError::InjectionQueueFull { node: packet.src() });
        }
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let slot = self.store.alloc(id, self.cycle);
        let n = packet.flit_count();
        for i in 0..n {
            let mut flit = Flit::nth(packet, id, self.cycle, i, n);
            flit.slot = slot;
            queue.push_back(flit);
        }
        self.queued_flits += n;
        self.inject_busy.insert(packet.src().0 as usize);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(TraceEvent::Injected {
                packet: id,
                kind: packet.kind(),
                src: packet.src(),
                dst: packet.dst(),
                cycle: self.cycle,
            });
        }
        self.stats.on_inject();
        Ok(id)
    }

    /// Takes all packets delivered since the previous call.
    pub fn drain_ejected(&mut self) -> Vec<DeliveredPacket> {
        std::mem::take(&mut self.ejected)
    }

    /// Moves all packets delivered since the previous call into `out`
    /// (cleared first), swapping buffers so both sides recycle their
    /// capacity — the allocation-free variant of [`Self::drain_ejected`]
    /// for callers that drain every few cycles.
    pub fn drain_ejected_into(&mut self, out: &mut Vec<DeliveredPacket>) {
        out.clear();
        std::mem::swap(&mut self.ejected, out);
    }

    /// Whether no flit is buffered, queued, or in flight anywhere. O(1) —
    /// both counters are maintained incrementally.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.store.live() == 0 && self.queued_flits == 0
    }

    /// Whether every pipeline stage would be a no-op this cycle: no router
    /// buffers a flit, no link carries one, no injection queue waits. O(1).
    ///
    /// Equivalent to [`Self::is_idle`] (every in-flight packet keeps at
    /// least its tail flit somewhere), but phrased in terms of the per-stage
    /// worklists so [`Self::step`] and [`Self::skip_idle_cycles`] can rely
    /// on it directly.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty() && self.links_occupied.is_empty() && self.queued_flits == 0
    }

    /// Advances the network by one cycle.
    // htpb-lint: hot
    pub fn step(&mut self) {
        if self.is_quiescent() {
            // Every stage is a no-op on a quiet network (faults included:
            // with no flit anywhere, a downed link, stalled router or
            // corrupted packet can have no effect); only time passes.
            self.cycle += 1;
            return;
        }
        // One gate call per cycle; when it reports no faults the stages
        // make zero further hook calls, keeping the empty-plan path
        // bit-identical to a build with no hook installed.
        let faults_engaged = match self.faults.as_mut() {
            Some(hook) => hook.any_faults_at(self.cycle),
            None => false,
        };
        if let Some(m) = self.metrics.as_deref_mut() {
            m.on_cycle(
                self.active.len(),
                self.links_occupied.len(),
                self.queued_flits,
            );
        }
        self.stage_link_delivery();
        self.stage_switch_traversal(faults_engaged);
        self.stage_injection();
        self.stage_vc_allocation();
        self.stage_routing_and_inspection(faults_engaged);
        self.cycle += 1;
        #[cfg(debug_assertions)]
        self.debug_check_invariants();
    }
    // htpb-lint: end-hot

    /// Always-on (debug builds) end-of-cycle invariant audit: packet
    /// conservation every cycle, plus — every 64th cycle, because they
    /// rescan the whole mesh — flit-presence bounds, per-VC credit
    /// conservation against downstream occupancy, and worklist consistency.
    /// Read-only, so release behaviour is bit-identical with the checks
    /// compiled out.
    #[cfg(debug_assertions)]
    fn debug_check_invariants(&self) {
        // Flit conservation, packet granularity: every injected packet is
        // delivered, dropped, or still tracked in flight — even under
        // fault-induced drops.
        assert_eq!(
            self.store.live() as u64,
            self.stats.injected_packets()
                - self.stats.delivered_packets()
                - self.stats.dropped_packets(),
            "packet conservation violated at cycle {}",
            self.cycle
        );
        if !self.cycle.is_multiple_of(64) {
            return;
        }
        // Flit presence: every in-flight packet keeps between 1 and
        // flit_count() flits somewhere (queued, buffered, or on a link).
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let on_links = self.links.iter().filter(|l| l.is_some()).count();
        let present = buffered + on_links + self.queued_flits;
        assert!(
            present >= self.store.live(),
            "cycle {}: {} in-flight packets but only {} flits present",
            self.cycle,
            self.store.live(),
            present
        );
        assert!(
            present <= self.store.live() * crate::flit::FLITS_PER_DATA_PACKET,
            "cycle {}: {} flits present exceed {} in-flight packets x max flits",
            self.cycle,
            present,
            self.store.live()
        );
        // Per-VC credit conservation: for every link, the upstream port's
        // credit count plus the downstream buffer occupancy plus any flit
        // in transit allocated to that VC must equal the buffer depth.
        let vcs = self.routers[0].config().vcs;
        let depth = self.routers[0].config().buffer_depth;
        for ri in 0..self.routers.len() {
            for dir in Direction::MESH {
                let li = ri * 4 + dir.index();
                let Some(down) = self.neighbor_tbl[li] else {
                    continue;
                };
                let in_port = Direction::OPPOSITE_INDEX[dir.index()];
                for vc in 0..vcs {
                    let credits = self.routers[ri].output_credit(dir, vc);
                    let down_router = &self.routers[down.0 as usize];
                    let downstream = down_router.vc_len(down_router.slot(in_port, vc));
                    let in_transit =
                        usize::from(matches!(self.links[li], Some((_, ovc)) if ovc == vc));
                    assert_eq!(
                        credits + downstream + in_transit,
                        depth,
                        "credit conservation violated at cycle {} on node {ri} dir {dir:?} vc {vc}",
                        self.cycle
                    );
                }
            }
        }
        // The incrementally maintained switch-request / VA-pending /
        // unrouted masks must agree with a rebuild from the VC state.
        for r in &self.routers {
            r.debug_masks_consistent();
        }
        // Worklist consistency: the active set is exactly the routers
        // holding flits, and the link set exactly the occupied slots.
        let mut snap = Vec::new();
        self.active.snapshot_into(&mut snap);
        let expect: Vec<u32> = (0..self.routers.len() as u32)
            .filter(|&i| self.routers[i as usize].buffered_flits() > 0)
            .collect();
        assert_eq!(snap, expect, "active set drifted at cycle {}", self.cycle);
        self.links_occupied.snapshot_into(&mut snap);
        let expect: Vec<u32> = (0..self.links.len() as u32)
            .filter(|&i| self.links[i as usize].is_some())
            .collect();
        assert_eq!(snap, expect, "link set drifted at cycle {}", self.cycle);
    }

    /// Advances the network `n` cycles.
    // htpb-lint: hot
    pub fn step_n(&mut self, n: u64) {
        if self.is_quiescent() {
            self.cycle += n;
            return;
        }
        for _ in 0..n {
            self.step();
        }
    }

    /// Advances the cycle counter by `n` without touching the pipeline.
    ///
    /// Only legal while [`Self::is_quiescent`] holds — each skipped cycle
    /// is then observably identical to a real [`Self::step`], which would
    /// no-op anyway. Lets callers that know the next injection time (e.g.
    /// an epoch-driven power manager) fast-forward across dead time.
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(
            self.is_quiescent(),
            "skip_idle_cycles called on a busy network"
        );
        self.cycle += n;
    }

    /// Steps until the network drains completely or `max_cycles` elapse.
    /// Returns `true` if the network went idle.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return true;
            }
            self.step();
        }
        self.is_idle()
    }

    fn link_index(&self, node: NodeId, dir: Direction) -> usize {
        node.0 as usize * 4 + dir.index()
    }
    // end of the step_n/run_until_idle driver region; the per-stage region
    // below re-opens because debug audits between them allocate freely.
    // htpb-lint: end-hot

    // htpb-lint: hot
    /// Stage 1: switch allocation + traversal. Each output port of each
    /// router forwards at most one flit per cycle, picked round-robin over
    /// the eligible (input port, VC) pairs. Virtual channels whose packet an
    /// inspector ordered dropped are drained into a sink instead (one flit
    /// per cycle, credits still returned upstream).
    ///
    /// When `faults_engaged`, the installed [`FaultHook`] may stall whole
    /// routers (skipped before the drop sink; their flits stay buffered and
    /// the router stays in the active set) and take links down (the output
    /// port behaves as if the link were busy).
    fn stage_switch_traversal(&mut self, faults_engaged: bool) {
        // Deferred credit returns: (upstream node, upstream out dir, vc, free_vc).
        let mut credit_returns = std::mem::take(&mut self.credit_scratch);
        credit_returns.clear();
        // Within this stage routers only *lose* flits (pushes happen in link
        // delivery and injection), so a stage-entry snapshot of the active
        // set visits exactly the routers the dense scan's `buffered > 0`
        // filter would have, in the same ascending order.
        let mut worklist = std::mem::take(&mut self.scratch);
        self.active.snapshot_into(&mut worklist);
        for &ri in &worklist {
            let ri = ri as usize;
            let node = NodeId(ri as u16);
            // A stalled router forwards (and sinks) nothing this cycle. Its
            // flits stay buffered, so it is still a legitimate active-set
            // member and the end-of-loop removal below is correctly skipped.
            if faults_engaged {
                if let Some(hook) = self.faults.as_mut() {
                    if hook.router_stalled(node, self.cycle) {
                        if let Some(m) = self.metrics.as_deref_mut() {
                            m.on_router_stalled();
                        }
                        continue;
                    }
                }
            }
            // Sink stage for dropped packets — gated on the O(1) dropping
            // counter; routers with nothing to sink skip the 5 × VCs scan.
            // Ascending slot order == the historical (port, vc) nesting.
            let vcs = self.routers[ri].config().vcs;
            let slots = 5 * vcs;
            if self.routers[ri].has_dropping() {
                for slot in 0..slots {
                    if !self.routers[ri].vc_state[slot].dropping {
                        continue;
                    }
                    let Some(flit) = self.routers[ri].pop_flit(slot) else {
                        continue;
                    };
                    let (in_port, vc) = (slot / vcs, slot % vcs);
                    if let Some(up_out) = Direction::ALL[in_port].opposite() {
                        if let Some(up) = self.neighbor_tbl[ri * 4 + in_port] {
                            credit_returns.push((up, up_out, vc, flit.kind.is_tail()));
                        }
                    }
                    if flit.kind.is_tail() {
                        self.store.free(flit.slot);
                        self.stats.on_packet_dropped();
                    }
                }
            }
            for out_dir in Direction::ALL {
                let od = out_dir.index();
                // Output link must be free this cycle (one flit per cycle).
                if out_dir != Direction::Local
                    && self.links[self.link_index(node, out_dir)].is_some()
                {
                    continue;
                }
                // A downed link is indistinguishable from a busy one: the
                // port simply skips arbitration this cycle.
                if faults_engaged && out_dir != Direction::Local {
                    if let Some(hook) = self.faults.as_mut() {
                        if hook.link_down(node, out_dir, self.cycle) {
                            continue;
                        }
                    }
                }
                // Round-robin over the slots *requesting this output* only:
                // slots >= start ascending, then the wrap-around below
                // start — the same visit order as the dense
                // `(start + off) % slots` scan, minus the slots it could
                // never have granted (empty, or routed elsewhere).
                let req = self.routers[ri].switch_requests(od);
                if req == 0 {
                    continue;
                }
                let start = self.routers[ri].sa_rr[od];
                let low_mask = (1u64 << start) - 1;
                let mut granted = None;
                for slot in BitsIter(req & !low_mask).chain(BitsIter(req & low_mask)) {
                    let r = &self.routers[ri];
                    let st = &r.vc_state[slot];
                    debug_assert!(st.len > 0, "occupied slot holds no flit");
                    debug_assert_eq!(st.route, Some(out_dir), "request mask drifted");
                    // A flit spends at least one full cycle buffered before
                    // it may traverse the switch (two-cycle router floor).
                    if r.vc_front_arrived_at(slot) == Some(self.cycle) {
                        continue;
                    }
                    if out_dir != Direction::Local {
                        let Some(ovc) = st.out_vc else { continue };
                        if r.out_credits[od * vcs + ovc] == 0 {
                            continue;
                        }
                    }
                    granted = Some(slot);
                    break;
                }
                let Some(slot) = granted else {
                    continue;
                };
                let (in_port, vc) = (slot / vcs, slot % vcs);
                let bump = 1 + usize::from(self.rr_skew);
                self.routers[ri].sa_rr[od] = (slot + bump) % slots;
                self.routers[ri].flits_forwarded += 1;
                let out_vc = self.routers[ri].vc_state[slot].out_vc;
                let flit = self.routers[ri]
                    .pop_flit(slot)
                    .expect("granted VC nonempty");
                // Return a credit upstream for the buffer slot just freed.
                if let Some(up_out) = Direction::ALL[in_port].opposite() {
                    if let Some(up) = self.neighbor_tbl[ri * 4 + in_port] {
                        credit_returns.push((up, up_out, vc, flit.kind.is_tail()));
                    }
                }
                if out_dir == Direction::Local {
                    self.eject(flit);
                } else {
                    let ovc = out_vc.expect("non-local ST requires an allocated VC");
                    self.routers[ri].out_credits[od * vcs + ovc] -= 1;
                    if flit.kind.is_tail() {
                        // Path released: downstream VC becomes reusable once
                        // its buffer drains; dealloc happens on downstream pop
                        // via the credit-return channel below.
                        self.routers[ri].out_allocated[od * vcs + ovc] = false;
                    }
                    if flit.kind.is_head() {
                        self.store.bump_hops(flit.slot);
                    }
                    let li = self.link_index(node, out_dir);
                    debug_assert!(self.links[li].is_none());
                    self.links[li] = Some((flit, ovc));
                    self.links_occupied.insert(li);
                }
            }
            if self.routers[ri].buffered_flits() == 0 {
                self.active.remove(ri);
            }
        }
        self.scratch = worklist;
        for &(up, up_out, vc, _tail) in &credit_returns {
            let r = &mut self.routers[up.0 as usize];
            let s = r.slot(up_out.index(), vc);
            r.out_credits[s] += 1;
            debug_assert!(
                r.out_credits[s] <= r.config().buffer_depth,
                "credit overflow"
            );
        }
        self.credit_scratch = credit_returns;
    }

    /// Stage 2a: flits on links land in downstream input buffers.
    fn stage_link_delivery(&mut self) {
        if self.links_occupied.is_empty() {
            return;
        }
        // Ascending link index == (node ascending, direction in N/S/E/W
        // index order) — the exact order of the dense double loop.
        let mut worklist = std::mem::take(&mut self.scratch);
        self.links_occupied.snapshot_into(&mut worklist);
        let now = self.cycle;
        for &li in &worklist {
            let li = li as usize;
            let (flit, ovc) = self.links[li].take().expect("occupied link holds a flit");
            self.links_occupied.remove(li);
            let dst_node = self.neighbor_tbl[li].expect("link endpoints are mesh neighbours");
            let in_port = Direction::OPPOSITE_INDEX[li % 4];
            let di = dst_node.0 as usize;
            let r = &mut self.routers[di];
            let s = r.slot(in_port, ovc);
            r.push_flit(s, flit, now);
            let occupancy = r.vc_len(s);
            if let Some(m) = self.metrics.as_deref_mut() {
                m.on_flit_buffered(occupancy);
            }
            self.active.insert(di);
        }
        self.scratch = worklist;
    }

    /// Stage 2b: injection — at most one flit per node per cycle moves from
    /// the injection queue into a free local-input VC.
    fn stage_injection(&mut self) {
        if self.inject_busy.is_empty() {
            return;
        }
        let now = self.cycle;
        let mut worklist = std::mem::take(&mut self.scratch);
        self.inject_busy.snapshot_into(&mut worklist);
        for &ri in &worklist {
            let ri = ri as usize;
            let front = self.injection_queues[ri]
                .front()
                .expect("inject_busy tracks non-empty queues");
            let local = Direction::Local.index();
            let target_vc = if front.kind.is_head() {
                // A new packet needs an idle local VC.
                match self.routers[ri].free_injection_vc() {
                    Some(v) => v,
                    None => continue,
                }
            } else {
                match self.injection_vc[ri] {
                    Some(v) => v,
                    None => continue,
                }
            };
            let slot = self.routers[ri].slot(local, target_vc);
            if !self.routers[ri].vc_has_space(slot) {
                continue;
            }
            let flit = self.injection_queues[ri]
                .pop_front()
                .expect("front checked");
            self.queued_flits -= 1;
            if self.injection_queues[ri].is_empty() {
                self.inject_busy.remove(ri);
            }
            self.injection_vc[ri] = if flit.kind.is_tail() {
                None
            } else {
                Some(target_vc)
            };
            self.routers[ri].push_flit(slot, flit, now);
            let occupancy = self.routers[ri].vc_len(slot);
            if let Some(m) = self.metrics.as_deref_mut() {
                m.on_flit_buffered(occupancy);
            }
            self.active.insert(ri);
        }
        self.scratch = worklist;
    }

    /// Stage 3: VC allocation — input VCs that know their output port
    /// acquire a free downstream VC.
    fn stage_vc_allocation(&mut self) {
        // VA moves no flits, so the active snapshot equals the dense scan's
        // `buffered > 0` filter throughout the stage.
        let mut worklist = std::mem::take(&mut self.scratch);
        self.active.snapshot_into(&mut worklist);
        for &ri in &worklist {
            let ri = ri as usize;
            // Ascending slot order == the dense (port, vc) double loop; the
            // VA-pending mask names exactly the slots the dense scan's
            // route/out-VC filters would have acted on.
            for slot in BitsIter(self.routers[ri].va_pending_slots()) {
                let st = &self.routers[ri].vc_state[slot];
                debug_assert!(
                    st.out_vc.is_none() && st.route.is_some_and(|r| r != Direction::Local),
                    "VA-pending mask drifted"
                );
                let od = st.route.expect("VA-pending slot has a route").index();
                if let Some(free) = self.routers[ri].free_out_vc(od) {
                    self.routers[ri].grant_out_vc(slot, free);
                }
            }
        }
        self.scratch = worklist;
    }

    /// Stage 4: routing computation, preceded by the inspection hook — the
    /// point where an implanted Trojan reads and possibly rewrites the
    /// packet (Fig. 2b).
    ///
    /// When `faults_engaged`, the installed [`FaultHook`] runs immediately
    /// after the inspector on the same once-per-packet-per-router
    /// discipline: payload bit flips reuse the tamper bookkeeping,
    /// whole-packet drops reuse the inspector's drop-sink machinery.
    fn stage_routing_and_inspection(&mut self, faults_engaged: bool) {
        // RC moves no flits either (the inspector only sees the packet
        // header), so the same snapshot argument as VA applies.
        let mut worklist = std::mem::take(&mut self.scratch);
        self.active.snapshot_into(&mut worklist);
        for &ri in &worklist {
            let ri = ri as usize;
            let node = NodeId(ri as u16);
            let vcs = self.routers[ri].config().vcs;
            // Ascending slot order == the dense (port, vc) double loop; the
            // unrouted mask names exactly the occupied slots the dense
            // scan's route/dropping filters would have reached.
            for slot in BitsIter(self.routers[ri].unrouted_slots()) {
                let in_port = slot / vcs;
                {
                    let st = &self.routers[ri].vc_state[slot];
                    debug_assert!(st.route.is_none() && !st.dropping, "unrouted mask drifted");
                    let needs_inspection = !st.inspected;
                    let Some(front) = self.routers[ri].vc_front_mut(slot) else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let packet_id = front.packet_id;
                    let meta_slot = front.slot;
                    let packet = front.packet.as_mut().expect("head flit carries packet");
                    if needs_inspection {
                        let payload_before = packet.payload();
                        let outcome = self.inspector.inspect(node, self.cycle, packet);
                        if outcome.dropped {
                            // The whole packet will be sunk here; no route is
                            // ever computed for it.
                            self.routers[ri].mark_dropping(slot);
                            self.routers[ri].vc_state[slot].inspected = true;
                            continue;
                        }
                        if outcome.modified {
                            self.store.set_modified(meta_slot);
                            if let Some(trace) = self.trace.as_mut() {
                                trace.record(TraceEvent::Tampered {
                                    packet: packet_id,
                                    node,
                                    payload_before,
                                    payload_after: packet.payload(),
                                    cycle: self.cycle,
                                });
                            }
                        }
                        let action = match self.faults.as_mut() {
                            Some(hook) if faults_engaged => {
                                hook.packet_fault(node, self.cycle, packet)
                            }
                            _ => FaultAction::none(),
                        };
                        if action.drop {
                            self.routers[ri].mark_dropping(slot);
                            self.routers[ri].vc_state[slot].inspected = true;
                            continue;
                        }
                        if action.flip_mask != 0 {
                            let before = packet.payload();
                            packet.set_payload(before ^ action.flip_mask);
                            self.store.set_modified(meta_slot);
                            if let Some(trace) = self.trace.as_mut() {
                                trace.record(TraceEvent::Tampered {
                                    packet: packet_id,
                                    node,
                                    payload_before: before,
                                    payload_after: packet.payload(),
                                    cycle: self.cycle,
                                });
                            }
                        }
                    }
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::Routed {
                            packet: packet_id,
                            node,
                            cycle: self.cycle,
                        });
                    }
                    let dst = packet.dst();
                    let candidates =
                        self.routing
                            .route(self.mesh, node, dst, Direction::ALL[in_port]);
                    debug_assert!(!candidates.is_empty());
                    let chosen = if candidates.len() == 1 {
                        candidates[0]
                    } else {
                        // Adaptive: prefer the candidate with the most free
                        // downstream credits.
                        *candidates
                            .iter()
                            .max_by_key(|d| self.routers[ri].output_credits(**d))
                            .expect("nonempty candidates")
                    };
                    self.routers[ri].set_route(slot, chosen);
                    self.routers[ri].vc_state[slot].inspected = true;
                    self.routers[ri].packets_routed += 1;
                }
            }
        }
        self.scratch = worklist;
    }

    fn eject(&mut self, flit: Flit) {
        self.stats.on_flit_delivered();
        if flit.kind.is_head() {
            let packet = flit.packet.expect("head flit carries packet");
            self.store.set_pending_head(flit.slot, packet);
        }
        if flit.kind.is_tail() {
            let (packet, injected_at, hops, modified) = self.store.finish(flit.slot);
            let latency = self.cycle - injected_at;
            self.stats.on_packet_delivered(
                latency,
                u64::from(hops),
                modified,
                matches!(packet.kind(), PacketKind::PowerReq),
            );
            if let Some(trace) = self.trace.as_mut() {
                trace.record(TraceEvent::Ejected {
                    packet: flit.packet_id,
                    node: packet.dst(),
                    cycle: self.cycle,
                });
            }
            self.ejected.push(DeliveredPacket {
                packet,
                latency,
                hops,
                modified,
            });
        }
    }
    // htpb-lint: end-hot
}

impl<I: PacketInspector + std::fmt::Debug> std::fmt::Debug for Network<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("mesh", &self.mesh)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.store.live())
            .field("inspector", &self.inspector)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(w: u16, h: u16) -> Network {
        Network::new(NetworkConfig::new(Mesh2d::new(w, h).unwrap()))
    }

    #[test]
    fn single_packet_delivered_with_expected_latency() {
        let mut n = net(4, 4);
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 42))
            .unwrap();
        assert!(n.run_until_idle(200));
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.payload(), 42);
        assert_eq!(out[0].hops, 3);
        // 3 hops * (2-cycle router + 1-cycle link) + source router + ejection
        // overhead: latency is small but nonzero.
        assert!(out[0].latency >= 9, "latency {}", out[0].latency);
        assert!(out[0].latency <= 20, "latency {}", out[0].latency);
        assert!(!out[0].modified);
    }

    #[test]
    fn self_addressed_packet_is_delivered() {
        let mut n = net(4, 4);
        n.inject(Packet::power_request(NodeId(5), NodeId(5), 7))
            .unwrap();
        assert!(n.run_until_idle(100));
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].hops, 0);
    }

    #[test]
    fn many_packets_all_delivered() {
        let mut n = net(8, 8);
        let mut expected = 0u64;
        for s in 0..64u16 {
            for d in [0u16, 63, 27] {
                n.inject(Packet::power_request(NodeId(s), NodeId(d), s as u32))
                    .unwrap();
                expected += 1;
            }
        }
        assert!(n.run_until_idle(100_000));
        assert_eq!(n.stats().delivered_packets(), expected);
        assert_eq!(n.stats().delivered_power_requests(), expected);
        assert_eq!(n.stats().infection_rate(), 0.0);
    }

    #[test]
    fn data_packets_reassembled() {
        let mut n = net(4, 4);
        n.inject(Packet::new(NodeId(0), NodeId(15), PacketKind::Data, 99))
            .unwrap();
        assert!(n.run_until_idle(500));
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.payload(), 99);
        assert_eq!(n.stats().delivered_flits(), 5);
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut n = net(4, 4);
        let err = n
            .inject(Packet::power_request(NodeId(0), NodeId(16), 1))
            .unwrap_err();
        assert!(matches!(err, NocError::NodeOutOfRange { .. }));
    }

    #[test]
    fn inspector_tampering_is_observed() {
        #[derive(Debug)]
        struct HalveAtNode(NodeId);
        impl PacketInspector for HalveAtNode {
            fn inspect(
                &mut self,
                router: NodeId,
                _cycle: u64,
                packet: &mut Packet,
            ) -> crate::InspectOutcome {
                if router == self.0 && matches!(packet.kind(), PacketKind::PowerReq) {
                    packet.set_payload(packet.payload() / 2);
                    crate::InspectOutcome::tampered()
                } else {
                    crate::InspectOutcome::untouched()
                }
            }
        }
        let mesh = Mesh2d::new(4, 4).unwrap();
        // XY route 0 -> 3 passes nodes 0,1,2,3. Trojan at node 2.
        let mut n = Network::with_inspector(NetworkConfig::new(mesh), HalveAtNode(NodeId(2)));
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 100))
            .unwrap();
        // A packet that avoids node 2 stays clean.
        n.inject(Packet::power_request(NodeId(4), NodeId(7), 100))
            .unwrap();
        assert!(n.run_until_idle(500));
        let out = n.drain_ejected();
        let tampered: Vec<_> = out.iter().filter(|d| d.modified).collect();
        assert_eq!(tampered.len(), 1);
        assert_eq!(tampered[0].packet.payload(), 50);
        assert_eq!(tampered[0].packet.dst(), NodeId(3));
        assert!((n.stats().infection_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inspection_happens_once_per_hop() {
        #[derive(Debug, Default)]
        struct Counter(std::collections::HashMap<NodeId, u32>);
        impl PacketInspector for Counter {
            fn inspect(
                &mut self,
                router: NodeId,
                _cycle: u64,
                _packet: &mut Packet,
            ) -> crate::InspectOutcome {
                *self.0.entry(router).or_default() += 1;
                crate::InspectOutcome::untouched()
            }
        }
        let mesh = Mesh2d::new(4, 1).unwrap();
        let mut n = Network::with_inspector(NetworkConfig::new(mesh), Counter::default());
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 1))
            .unwrap();
        assert!(n.run_until_idle(200));
        let counts = &n.inspector().0;
        // Every router on the path saw the header exactly once.
        for node in [0u16, 1, 2, 3] {
            assert_eq!(counts.get(&NodeId(node)), Some(&1), "node {node}");
        }
    }

    #[test]
    fn heavy_hotspot_traffic_drains() {
        // Everyone sends to the center: worst-case contention for VCs and
        // credits; the network must not deadlock or drop flits.
        let mesh = Mesh2d::new(8, 8).unwrap();
        let mut n = Network::new(NetworkConfig::new(mesh));
        let center = mesh.center();
        for round in 0..4 {
            for s in mesh.iter_nodes() {
                if s != center {
                    n.inject(Packet::power_request(s, center, round * 100 + s.0 as u32))
                        .unwrap();
                }
            }
        }
        assert!(n.run_until_idle(200_000), "hotspot traffic deadlocked");
        assert_eq!(n.stats().delivered_packets(), 4 * 63);
    }

    #[test]
    fn adaptive_routing_delivers_hotspot() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        let mut n = Network::new(NetworkConfig::new(mesh).with_routing(RoutingKind::OddEven));
        let center = mesh.center();
        for s in mesh.iter_nodes() {
            if s != center {
                n.inject(Packet::power_request(s, center, 1)).unwrap();
            }
        }
        assert!(n.run_until_idle(100_000), "odd-even deadlocked");
        assert_eq!(n.stats().delivered_packets(), 63);
    }

    #[test]
    fn mixed_data_and_meta_traffic_drains() {
        let mesh = Mesh2d::new(6, 6).unwrap();
        let mut n = Network::new(NetworkConfig::new(mesh));
        for s in mesh.iter_nodes() {
            let d = NodeId((s.0 as u32 * 7 % 36) as u16);
            if s == d {
                continue;
            }
            n.inject(Packet::new(s, d, PacketKind::Data, s.0 as u32))
                .unwrap();
            n.inject(Packet::new(s, d, PacketKind::Meta, s.0 as u32))
                .unwrap();
        }
        assert!(n.run_until_idle(100_000));
        assert!(n.stats().delivered_packets() >= 60);
    }

    #[test]
    fn router_counters_track_activity() {
        let mesh = Mesh2d::new(4, 1).unwrap();
        let mut n = Network::new(NetworkConfig::new(mesh));
        n.inject(Packet::power_request(NodeId(3), NodeId(0), 1))
            .unwrap();
        assert!(n.run_until_idle(1_000));
        // Every router on the path routed the header once and forwarded the
        // single flit once.
        for node in [3u16, 2, 1, 0] {
            let r = n.router(NodeId(node));
            assert_eq!(r.packets_routed(), 1, "node {node}");
            assert_eq!(r.flits_forwarded(), 1, "node {node}");
        }
        let map = n.utilization_map();
        assert_eq!(map, vec![1, 1, 1, 1]);
    }

    #[test]
    fn tracing_reconstructs_packet_life() {
        let mesh = Mesh2d::new(4, 1).unwrap();
        let mut n = Network::new(NetworkConfig::new(mesh).with_tracing(256));
        let id = n
            .inject(Packet::power_request(NodeId(3), NodeId(0), 1))
            .unwrap();
        assert!(n.run_until_idle(1_000));
        let trace = n.trace().expect("tracing enabled");
        let hist = trace.packet_history(id);
        assert!(matches!(
            hist.first(),
            Some(crate::TraceEvent::Injected { .. })
        ));
        assert!(matches!(
            hist.last(),
            Some(crate::TraceEvent::Ejected { .. })
        ));
        assert_eq!(
            trace.packet_route(id),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
        assert!(trace.tamper_hotspots().is_empty());
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mesh = Mesh2d::new(4, 1).unwrap();
        let n = Network::new(NetworkConfig::new(mesh));
        assert!(n.trace().is_none());
    }

    #[test]
    fn tracing_records_tamper_events() {
        #[derive(Debug)]
        struct ZeroAt(NodeId);
        impl PacketInspector for ZeroAt {
            fn inspect(
                &mut self,
                router: NodeId,
                _cycle: u64,
                packet: &mut Packet,
            ) -> crate::InspectOutcome {
                if router == self.0 && packet.payload() != 0 {
                    packet.set_payload(0);
                    return crate::InspectOutcome::tampered();
                }
                crate::InspectOutcome::untouched()
            }
        }
        let mesh = Mesh2d::new(4, 1).unwrap();
        let mut n = Network::with_inspector(
            NetworkConfig::new(mesh).with_tracing(256),
            ZeroAt(NodeId(1)),
        );
        let id = n
            .inject(Packet::power_request(NodeId(3), NodeId(0), 777))
            .unwrap();
        assert!(n.run_until_idle(1_000));
        let trace = n.trace().unwrap();
        let tampered: Vec<_> = trace
            .packet_history(id)
            .into_iter()
            .filter(|e| matches!(e, crate::TraceEvent::Tampered { .. }))
            .collect();
        assert_eq!(tampered.len(), 1);
        if let crate::TraceEvent::Tampered {
            node,
            payload_before,
            payload_after,
            ..
        } = tampered[0]
        {
            assert_eq!(node, NodeId(1));
            assert_eq!(payload_before, 777);
            assert_eq!(payload_after, 0);
        }
        assert_eq!(trace.tamper_hotspots(), vec![(NodeId(1), 1)]);
    }

    #[test]
    fn dropping_inspector_sinks_packets_cleanly() {
        #[derive(Debug)]
        struct DropAt(NodeId);
        impl PacketInspector for DropAt {
            fn inspect(
                &mut self,
                router: NodeId,
                _cycle: u64,
                packet: &mut Packet,
            ) -> crate::InspectOutcome {
                if router == self.0 && matches!(packet.kind(), PacketKind::PowerReq) {
                    crate::InspectOutcome::dropped()
                } else {
                    crate::InspectOutcome::untouched()
                }
            }
        }
        let mesh = Mesh2d::new(4, 4).unwrap();
        let mut n = Network::with_inspector(NetworkConfig::new(mesh), DropAt(NodeId(2)));
        // Crosses node 2: dropped. Does not: delivered.
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 1))
            .unwrap();
        n.inject(Packet::power_request(NodeId(4), NodeId(7), 2))
            .unwrap();
        // A 5-flit data packet through the drop point passes (only PowerReq
        // is matched by this inspector).
        n.inject(Packet::new(NodeId(0), NodeId(3), PacketKind::Data, 3))
            .unwrap();
        assert!(n.run_until_idle(10_000), "drop left the network busy");
        let out = n.drain_ejected();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.packet.payload() != 1));
        assert_eq!(n.stats().dropped_packets(), 1);
        assert_eq!(n.stats().delivered_packets(), 2);
    }

    #[test]
    fn dropping_multiflit_packets_releases_all_resources() {
        #[derive(Debug)]
        struct DropAll;
        impl PacketInspector for DropAll {
            fn inspect(
                &mut self,
                router: NodeId,
                _cycle: u64,
                _packet: &mut Packet,
            ) -> crate::InspectOutcome {
                if router == NodeId(1) {
                    crate::InspectOutcome::dropped()
                } else {
                    crate::InspectOutcome::untouched()
                }
            }
        }
        let mesh = Mesh2d::new(4, 1).unwrap();
        let mut n = Network::with_inspector(NetworkConfig::new(mesh), DropAll);
        // Several 5-flit packets through the sink, back to back: buffers and
        // credits must fully recover.
        for i in 0..8 {
            n.inject(Packet::new(NodeId(3), NodeId(0), PacketKind::Data, i))
                .unwrap();
        }
        assert!(n.run_until_idle(50_000), "sink leaked resources");
        assert_eq!(n.stats().dropped_packets(), 8);
        assert_eq!(n.stats().delivered_packets(), 0);
        assert!(n.router(NodeId(1)).is_idle());
        // The sink router's buffers drained; credits fully restored on its
        // upstream neighbour.
        for vcid in 0..4 {
            assert!(n.router(NodeId(2)).can_accept(Direction::West, vcid));
        }
    }

    #[test]
    fn stats_latency_increases_with_distance() {
        let mesh = Mesh2d::new(16, 1).unwrap();
        let mut near = Network::new(NetworkConfig::new(mesh));
        near.inject(Packet::power_request(NodeId(0), NodeId(1), 1))
            .unwrap();
        near.run_until_idle(100);
        let near_lat = near.drain_ejected()[0].latency;

        let mut far = Network::new(NetworkConfig::new(mesh));
        far.inject(Packet::power_request(NodeId(0), NodeId(15), 1))
            .unwrap();
        far.run_until_idle(200);
        let far_lat = far.drain_ejected()[0].latency;
        assert!(far_lat > near_lat, "{far_lat} vs {near_lat}");
        // Each extra hop costs ~3 cycles (2-cycle router + 1-cycle link).
        assert!(far_lat - near_lat >= 14 * 2);
    }

    /// A scriptable hook for the fault-path tests below.
    #[derive(Debug, Default)]
    struct ScriptedFaults {
        stall_node: Option<(NodeId, u64)>,
        down_link: Option<(NodeId, Direction, u64)>,
        flip_mask: u32,
        drop_at: Option<NodeId>,
    }

    impl crate::FaultHook for ScriptedFaults {
        fn any_faults_at(&mut self, _cycle: u64) -> bool {
            true
        }
        fn link_down(&mut self, node: NodeId, dir: Direction, cycle: u64) -> bool {
            matches!(self.down_link, Some((n, d, until)) if n == node && d == dir && cycle < until)
        }
        fn router_stalled(&mut self, node: NodeId, cycle: u64) -> bool {
            matches!(self.stall_node, Some((n, until)) if n == node && cycle < until)
        }
        fn packet_fault(&mut self, node: NodeId, _cycle: u64, _p: &Packet) -> crate::FaultAction {
            if self.drop_at == Some(node) {
                crate::FaultAction::drop_packet()
            } else {
                crate::FaultAction::flip(self.flip_mask)
            }
        }
    }

    fn faulty_net(w: u16, h: u16, faults: ScriptedFaults) -> Network {
        let mut n = net(w, h);
        n.set_fault_hook(Box::new(faults));
        n
    }

    #[test]
    fn stalled_router_delays_but_delivers() {
        let baseline = {
            let mut n = net(4, 1);
            n.inject(Packet::power_request(NodeId(0), NodeId(3), 7))
                .unwrap();
            assert!(n.run_until_idle(1_000));
            n.drain_ejected()[0].latency
        };
        let mut n = faulty_net(
            4,
            1,
            ScriptedFaults {
                stall_node: Some((NodeId(1), 50)),
                ..ScriptedFaults::default()
            },
        );
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 7))
            .unwrap();
        assert!(n.run_until_idle(1_000), "stall must end, not deadlock");
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.payload(), 7);
        assert!(!out[0].modified);
        assert!(
            out[0].latency > baseline + 20,
            "stall did not delay: {} vs {}",
            out[0].latency,
            baseline
        );
    }

    #[test]
    fn downed_link_delays_but_delivers() {
        let mut n = faulty_net(
            4,
            1,
            ScriptedFaults {
                down_link: Some((NodeId(1), Direction::East, 60)),
                ..ScriptedFaults::default()
            },
        );
        n.inject(Packet::power_request(NodeId(0), NodeId(3), 9))
            .unwrap();
        assert!(
            n.run_until_idle(1_000),
            "link outage must end, not deadlock"
        );
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.payload(), 9);
        assert!(out[0].latency > 60, "latency {}", out[0].latency);
    }

    #[test]
    fn payload_flip_fault_marks_packet_modified() {
        let mut n = faulty_net(
            2,
            1,
            ScriptedFaults {
                flip_mask: 0b1,
                ..ScriptedFaults::default()
            },
        );
        n.inject(Packet::power_request(NodeId(0), NodeId(1), 0b100))
            .unwrap();
        assert!(n.run_until_idle(1_000));
        let out = n.drain_ejected();
        assert_eq!(out.len(), 1);
        // Flipped once per router on the two-node path: 0b100 ^ 1 ^ 1 at the
        // source and destination routers.
        assert_eq!(out[0].packet.payload(), 0b100);
        assert!(out[0].modified, "fault corruption must be observable");
    }

    #[test]
    fn packet_drop_fault_sinks_cleanly() {
        let mut n = faulty_net(
            4,
            1,
            ScriptedFaults {
                drop_at: Some(NodeId(2)),
                ..ScriptedFaults::default()
            },
        );
        for i in 0..4 {
            n.inject(Packet::new(NodeId(3), NodeId(0), PacketKind::Data, i))
                .unwrap();
        }
        assert!(n.run_until_idle(50_000), "fault sink leaked resources");
        assert_eq!(n.stats().dropped_packets(), 4);
        assert_eq!(n.stats().delivered_packets(), 0);
        assert!(n.router(NodeId(2)).is_idle());
    }

    #[test]
    fn fault_hook_can_be_taken_back() {
        let mut n = faulty_net(2, 1, ScriptedFaults::default());
        assert!(n.has_fault_hook());
        assert!(n.take_fault_hook().is_some());
        assert!(!n.has_fault_hook());
        assert!(n.take_fault_hook().is_none());
    }
}
