//! Flit-level 2D-mesh network-on-chip (NoC) simulator.
//!
//! This crate implements the on-chip interconnect substrate used by the
//! SOCC 2018 paper *"On a New Hardware Trojan Attack on Power Budgeting of
//! Many Core Systems"*: a wormhole-switched 2D mesh with per-input-port
//! virtual channels, credit-based flow control, a two-cycle router pipeline
//! plus one-cycle links, and both deterministic XY and minimal-adaptive
//! odd-even routing (Table I of the paper).
//!
//! The crate is intentionally independent of the power-budgeting and
//! hardware-Trojan layers: routers expose a [`PacketInspector`] hook placed
//! *between the input buffer and the routing-computation stage* — exactly
//! where Fig. 2(b) of the paper locates the Trojan — so higher layers can
//! observe and tamper with in-flight packets without the network knowing.
//!
//! # Quick example
//!
//! ```
//! use htpb_noc::{Mesh2d, Network, NetworkConfig, Packet, PacketKind, NodeId};
//!
//! let mesh = Mesh2d::new(4, 4).unwrap();
//! let mut net = Network::new(NetworkConfig::new(mesh));
//! let pkt = Packet::power_request(NodeId(0), NodeId(15), 1500);
//! net.inject(pkt).unwrap();
//! while net.stats().delivered_packets() == 0 {
//!     net.step();
//! }
//! let delivered = net.drain_ejected();
//! assert_eq!(delivered[0].packet.payload(), 1500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod error;
mod fault;
mod flit;
mod fnv;
mod inspect;
mod metrics;
mod network;
mod packet;
mod router;
mod routing;
mod stats;
mod store;
mod topology;
mod trace;
mod traffic;
mod vc;

pub use error::NocError;
pub use fault::{FaultAction, FaultHook};
pub use flit::{Flit, FlitKind, FLITS_PER_DATA_PACKET, FLITS_PER_META_PACKET, FLIT_SIZE_BITS};
pub use fnv::{Digest, FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
pub use inspect::{InspectOutcome, NullInspector, PacketInspector};
pub use metrics::{NocMetrics, VC_OCCUPANCY_BUCKETS};
pub use network::{DeliveredPacket, Network, NetworkConfig};
pub use packet::{
    ActivationSignal, ConfigCommand, Packet, PacketKind, RawPacket, PACKET_HEADER_WORDS,
};
pub use router::{Router, RouterConfig, VcSnapshot};
pub use routing::{
    OddEvenRouting, RouteCandidates, RoutingAlgorithm, RoutingKind, WestFirstRouting, XyRouting,
};
pub use stats::{LatencyHistogram, NetworkStats};
pub use store::PacketStore;
pub use topology::{Coord, Direction, Mesh2d, NodeId};
pub use trace::{TraceBuffer, TraceEvent};
pub use traffic::{HotspotTraffic, TrafficPattern, UniformTraffic};
