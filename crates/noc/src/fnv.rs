//! FNV-1a hashing for the simulator hot path and for determinism digests.
//!
//! Two consumers share this module:
//!
//! * [`FnvBuildHasher`] keys the per-packet bookkeeping maps of
//!   [`crate::Network`]. The default `std` hasher (SipHash-1-3) is keyed
//!   and DoS-resistant — properties the simulator does not need for its
//!   own sequentially assigned packet ids — and costs noticeably more per
//!   lookup. FNV-1a over the 8 id bytes is a fraction of that. Map
//!   *semantics* are untouched, so switching hashers cannot change any
//!   simulation output (the maps are never iterated).
//! * [`Digest`] folds simulation state into a stable 64-bit fingerprint.
//!   Unlike `std::hash::Hasher` output, FNV-1a is fully specified, so the
//!   golden values recorded by the cross-implementation determinism tests
//!   stay valid across Rust versions and architectures. The same approach
//!   (and constants) already key the experiment cache in `htpb-harness`.

use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// A [`Hasher`] computing FNV-1a over the written bytes.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed by FNV-1a — the simulator's hot-path map type.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>; // htpb-lint: allow(determinism/std-hash) -- alias definition; the FNV hasher replaces SipHash here

/// A `HashSet` keyed by FNV-1a, the companion to [`FnvHashMap`].
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>; // htpb-lint: allow(determinism/std-hash) -- alias definition; the FNV hasher replaces SipHash here

/// An incrementally built, platform-stable 64-bit FNV-1a fingerprint.
///
/// Feed it words with [`Digest::u64`] (every narrower integer widens
/// losslessly); equal digests over a cycle-by-cycle feed of simulator
/// state certify that two implementations behaved identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Digest(FNV_OFFSET)
    }
}

impl Digest {
    /// A fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one 64-bit word (little-endian bytes) into the digest.
    pub fn u64(&mut self, word: u64) -> &mut Self {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The current fingerprint value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_matches_published_vectors() {
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(FnvHasher::default().finish(), FNV_OFFSET);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.u64(1).u64(2);
        let mut b = Digest::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FnvHashMap<u64, u32> = FnvHashMap::default();
        for i in 0..1_000u64 {
            m.insert(i, i as u32 * 3);
        }
        assert_eq!(m.get(&500), Some(&1_500));
        assert_eq!(m.remove(&999), Some(2_997));
        assert_eq!(m.len(), 999);
    }
}
