use crate::flit::Flit;
use crate::topology::{Direction, NodeId};
use crate::vc::{OutputPort, VirtualChannel};

/// Microarchitectural parameters of a router.
///
/// Defaults follow Table I of the paper: 4 virtual channels per input port
/// and 5-flit buffers ("NoC buffer 5 × 5 flits" — five ports with five-flit
/// buffers per VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vcs: 4,
            buffer_depth: 5,
        }
    }
}

/// Externally observable state of one input virtual channel at an instant.
///
/// The unit of comparison for differential debugging: `htpb-testkit`
/// localizes the first diverging (cycle, router, VC) between the optimized
/// stepper and its dense reference oracle by diffing these snapshots.
/// Equality covers everything the pipeline stages read — occupancy, the
/// resident packet, its RC/VA decisions and the drop flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcSnapshot {
    /// Buffered flit count.
    pub occupancy: usize,
    /// Packet id of the front flit, if any.
    pub front_packet: Option<u64>,
    /// Cycle the front flit entered this buffer.
    pub front_arrived_at: Option<u64>,
    /// Output port chosen by routing computation for the resident packet.
    pub route: Option<Direction>,
    /// Downstream VC granted by VC allocation.
    pub out_vc: Option<usize>,
    /// Whether the resident packet's head was inspected at this router.
    pub inspected: bool,
    /// Whether the resident packet is being sunk by a drop order.
    pub dropping: bool,
}

/// One mesh router: five input ports (N/S/E/W/Local) with per-port virtual
/// channels, plus credit state for each output port's downstream buffers.
///
/// The router is a passive state container; the cycle-by-cycle pipeline
/// (buffer write → routing computation → VC/switch allocation → switch
/// traversal) is driven by [`crate::Network::step`], which models a
/// two-cycle router and one-cycle links (Table I).
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    config: RouterConfig,
    /// `inputs[dir][vc]` — input-side virtual channels.
    pub(crate) inputs: Vec<Vec<VirtualChannel>>,
    /// `outputs[dir]` — credit/allocation state for the downstream port.
    pub(crate) outputs: Vec<OutputPort>,
    /// Round-robin pointers for switch allocation, one per output port.
    pub(crate) sa_rr: Vec<usize>,
    /// Flits this router pushed through its crossbar (all output ports).
    pub(crate) flits_forwarded: u64,
    /// Packet headers that ran routing computation here (= packets that
    /// transited or terminated at this router).
    pub(crate) packets_routed: u64,
    /// Total flits across all input VCs, maintained incrementally by
    /// [`Router::push_flit`]/[`Router::pop_flit`] so
    /// [`Router::buffered_flits`] is an O(1) read instead of a 20-VC scan.
    buffered: usize,
    /// Input VCs currently sinking a dropped packet, maintained by
    /// [`Router::mark_dropping`] and [`Router::pop_flit`]; lets the switch
    /// stage skip its drop-sink scan on the (overwhelmingly common) routers
    /// with nothing to sink.
    dropping_vcs: usize,
    /// Bitmask over input-VC slots (`port * vcs + vc`) that currently hold
    /// at least one flit, maintained by [`Router::push_flit`] and
    /// [`Router::pop_flit`]. The pipeline stages iterate this instead of
    /// scanning all 5 × `vcs` buffers; empty VCs can never be granted,
    /// routed or allocated, so skipping them is invisible.
    occupied: u64,
}

impl Router {
    /// Creates an idle router with full credits.
    ///
    /// # Panics
    ///
    /// Panics if `config.vcs > 12`: the occupancy bitmask packs all
    /// 5 × `vcs` input-VC slots into one 64-bit word (Table I uses 4).
    #[must_use]
    pub fn new(id: NodeId, config: RouterConfig) -> Self {
        assert!(
            config.vcs * 5 <= 64,
            "at most 12 VCs per port supported (got {})",
            config.vcs
        );
        Router {
            id,
            config,
            inputs: (0..5)
                .map(|_| {
                    (0..config.vcs)
                        .map(|_| VirtualChannel::new(config.buffer_depth))
                        .collect()
                })
                .collect(),
            outputs: (0..5)
                .map(|_| OutputPort::new(config.vcs, config.buffer_depth))
                .collect(),
            sa_rr: vec![0; 5],
            flits_forwarded: 0,
            packets_routed: 0,
            buffered: 0,
            dropping_vcs: 0,
            occupied: 0,
        }
    }

    /// This router's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The router's configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Whether an input VC has room for one more flit.
    #[must_use]
    pub fn can_accept(&self, dir: Direction, vc: usize) -> bool {
        self.inputs[dir.index()][vc].has_space()
    }

    /// Total buffered flits across all input VCs (used by congestion-aware
    /// diagnostics, the network's active-set bookkeeping and tests).
    ///
    /// An O(1) counter read; debug builds cross-check it against a full
    /// rescan of all 5 × `vcs` buffers so any drift in the incremental
    /// accounting fails loudly.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs
                .iter()
                .flat_map(|port| port.iter())
                .map(|vc| vc.len())
                .sum::<usize>(),
            "incremental flit counter drifted from buffer contents"
        );
        self.buffered
    }

    /// Whether the router holds no flits at all. O(1).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0
    }

    /// Pushes an arriving flit into `inputs[dir][vc]`, keeping the
    /// incremental flit counter in sync. All buffer writes must go through
    /// here (or the counter drifts).
    #[inline]
    pub(crate) fn push_flit(&mut self, dir: usize, vc: usize, flit: Flit, now: u64) {
        self.inputs[dir][vc].push(flit, now);
        self.buffered += 1;
        self.occupied |= 1 << (dir * self.config.vcs + vc);
    }

    /// Pops the head flit of `inputs[dir][vc]`, keeping the incremental
    /// flit and dropping-VC counters in sync (a tail pop clears the VC's
    /// dropping flag inside [`VirtualChannel::pop`]).
    #[inline]
    pub(crate) fn pop_flit(&mut self, dir: usize, vc: usize) -> Option<Flit> {
        let channel = &mut self.inputs[dir][vc];
        let was_dropping = channel.dropping;
        let flit = channel.pop()?;
        self.buffered -= 1;
        if channel.is_empty() {
            self.occupied &= !(1 << (dir * self.config.vcs + vc));
        }
        if was_dropping && !channel.dropping {
            self.dropping_vcs -= 1;
        }
        Some(flit)
    }

    /// Bitmask of input-VC slots (`port * vcs + vc`) holding flits; debug
    /// builds cross-check it against the buffers.
    #[inline]
    pub(crate) fn occupied_slots(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            let mut rescan = 0u64;
            for (port, vcs) in self.inputs.iter().enumerate() {
                for (vc, ch) in vcs.iter().enumerate() {
                    if !ch.is_empty() {
                        rescan |= 1 << (port * self.config.vcs + vc);
                    }
                }
            }
            debug_assert_eq!(self.occupied, rescan, "occupancy mask drifted");
        }
        self.occupied
    }

    /// Marks `inputs[dir][vc]` as sinking a dropped packet. Idempotent.
    #[inline]
    pub(crate) fn mark_dropping(&mut self, dir: usize, vc: usize) {
        let channel = &mut self.inputs[dir][vc];
        if !channel.dropping {
            channel.dropping = true;
            self.dropping_vcs += 1;
        }
    }

    /// Whether any input VC is currently sinking a dropped packet. Gates
    /// the switch stage's drop-sink scan.
    #[inline]
    pub(crate) fn has_dropping(&self) -> bool {
        self.dropping_vcs > 0
    }

    /// Free credit count on an output port, summed over VCs. Adaptive
    /// routing uses this as its congestion estimate.
    #[must_use]
    pub(crate) fn output_credits(&self, dir: Direction) -> usize {
        self.outputs[dir.index()].credits.iter().sum()
    }

    /// Snapshot of one input VC's observable state (diagnostics; see
    /// [`VcSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if `in_port >= 5` or `vc >= config.vcs`.
    #[must_use]
    pub fn vc_snapshot(&self, in_port: usize, vc: usize) -> VcSnapshot {
        let ch = &self.inputs[in_port][vc];
        VcSnapshot {
            occupancy: ch.len(),
            front_packet: ch.front().map(|f| f.packet_id),
            front_arrived_at: ch.front_arrived_at(),
            route: ch.route,
            out_vc: ch.out_vc,
            inspected: ch.inspected,
            dropping: ch.dropping,
        }
    }

    /// Free credits this router holds for one downstream VC (diagnostics).
    #[must_use]
    pub fn output_credit(&self, dir: Direction, vc: usize) -> usize {
        self.outputs[dir.index()].credits[vc]
    }

    /// Whether a downstream VC is currently allocated to a packet
    /// (diagnostics).
    #[must_use]
    pub fn output_allocated(&self, dir: Direction, vc: usize) -> bool {
        self.outputs[dir.index()].allocated[vc]
    }

    /// Flits this router has pushed through its crossbar so far — a
    /// utilization measure for congestion heatmaps.
    #[must_use]
    pub fn flits_forwarded(&self) -> u64 {
        self.flits_forwarded
    }

    /// Packet headers that ran routing computation here.
    #[must_use]
    pub fn packets_routed(&self) -> u64 {
        self.packets_routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind};

    #[test]
    fn flit_counter_tracks_push_and_pop() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let flits = Flit::packetize(Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 7), 1, 0);
        let n = flits.len();
        for (i, f) in flits.into_iter().enumerate() {
            r.push_flit(Direction::North.index(), 2, f, i as u64);
            assert_eq!(r.buffered_flits(), i + 1);
        }
        assert!(!r.is_idle());
        for i in (0..n).rev() {
            assert!(r.pop_flit(Direction::North.index(), 2).is_some());
            assert_eq!(r.buffered_flits(), i);
        }
        assert!(r.is_idle());
        assert!(r.pop_flit(Direction::North.index(), 2).is_none());
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn dropping_counter_clears_on_tail_pop() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let flits = Flit::packetize(Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 7), 1, 0);
        let n = flits.len();
        for f in flits {
            r.push_flit(Direction::East.index(), 0, f, 0);
        }
        assert!(!r.has_dropping());
        r.mark_dropping(Direction::East.index(), 0);
        r.mark_dropping(Direction::East.index(), 0); // idempotent
        assert!(r.has_dropping());
        for _ in 0..n - 1 {
            r.pop_flit(Direction::East.index(), 0);
            assert!(r.has_dropping());
        }
        r.pop_flit(Direction::East.index(), 0); // tail clears the flag
        assert!(!r.has_dropping());
        assert!(r.is_idle());
    }

    #[test]
    fn default_config_matches_table1() {
        let c = RouterConfig::default();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.buffer_depth, 5);
    }

    #[test]
    fn new_router_is_idle_with_full_credits() {
        let r = Router::new(NodeId(3), RouterConfig::default());
        assert!(r.is_idle());
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.flits_forwarded(), 0);
        assert_eq!(r.packets_routed(), 0);
        for dir in Direction::ALL {
            assert_eq!(r.output_credits(dir), 4 * 5);
            for vc in 0..4 {
                assert!(r.can_accept(dir, vc));
            }
        }
    }
}
