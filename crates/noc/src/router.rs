use crate::flit::{Flit, FlitKind};
use crate::topology::{Direction, NodeId};
use crate::vc::VcState;

/// Microarchitectural parameters of a router.
///
/// Defaults follow Table I of the paper: 4 virtual channels per input port
/// and 5-flit buffers ("NoC buffer 5 × 5 flits" — five ports with five-flit
/// buffers per VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vcs: 4,
            buffer_depth: 5,
        }
    }
}

/// Externally observable state of one input virtual channel at an instant.
///
/// The unit of comparison for differential debugging: `htpb-testkit`
/// localizes the first diverging (cycle, router, VC) between the optimized
/// stepper and its dense reference oracle by diffing these snapshots.
/// Equality covers everything the pipeline stages read — occupancy, the
/// resident packet, its RC/VA decisions and the drop flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcSnapshot {
    /// Buffered flit count.
    pub occupancy: usize,
    /// Packet id of the front flit, if any.
    pub front_packet: Option<u64>,
    /// Cycle the front flit entered this buffer.
    pub front_arrived_at: Option<u64>,
    /// Output port chosen by routing computation for the resident packet.
    pub route: Option<Direction>,
    /// Downstream VC granted by VC allocation.
    pub out_vc: Option<usize>,
    /// Whether the resident packet's head was inspected at this router.
    pub inspected: bool,
    /// Whether the resident packet is being sunk by a drop order.
    pub dropping: bool,
}

/// One mesh router: five input ports (N/S/E/W/Local) with per-port virtual
/// channels, plus credit state for each output port's downstream buffers.
///
/// The router is a passive state container; the cycle-by-cycle pipeline
/// (buffer write → routing computation → VC/switch allocation → switch
/// traversal) is driven by [`crate::Network::step`], which models a
/// two-cycle router and one-cycle links (Table I).
///
/// # Data layout
///
/// All per-VC state is flattened into contiguous arrays indexed by the slot
/// number `port * vcs + vc` (ports in N/S/E/W/Local index order): control
/// state in [`Router::vc_state`], the flit buffers in one flat slab where
/// slot `s` owns the fixed-capacity ring `buf[s * depth .. (s + 1) * depth]`,
/// and output-side credit/allocation state in two parallel arrays. Ascending
/// slot order equals the nested `(port, vc)` loops the pipeline historically
/// ran, so iteration order — and with it RR arbitration, ejection and trace
/// order — is bit-for-bit unchanged.
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    config: RouterConfig,
    /// Control state per input-VC slot (`port * vcs + vc`); 5 × `vcs` long.
    pub(crate) vc_state: Vec<VcState>,
    /// Flat flit storage: slot `s` owns `buf[s * depth .. (s + 1) * depth]`
    /// as a ring whose front sits at `vc_state[s].head`. Entries are
    /// `(flit, arrival_cycle)`.
    buf: Vec<(Flit, u64)>,
    /// Flit credits per downstream VC, indexed `out_port * vcs + vc`
    /// (starts at the buffer depth).
    pub(crate) out_credits: Vec<usize>,
    /// Whether each downstream VC is currently allocated to some packet,
    /// indexed `out_port * vcs + vc`.
    pub(crate) out_allocated: Vec<bool>,
    /// Round-robin pointers for switch allocation, one per output port.
    pub(crate) sa_rr: Vec<usize>,
    /// Flits this router pushed through its crossbar (all output ports).
    pub(crate) flits_forwarded: u64,
    /// Packet headers that ran routing computation here (= packets that
    /// transited or terminated at this router).
    pub(crate) packets_routed: u64,
    /// Total flits across all input VCs, maintained incrementally by
    /// [`Router::push_flit`]/[`Router::pop_flit`] so
    /// [`Router::buffered_flits`] is an O(1) read instead of a 20-VC scan.
    buffered: usize,
    /// Input VCs currently sinking a dropped packet, maintained by
    /// [`Router::mark_dropping`] and [`Router::pop_flit`]; lets the switch
    /// stage skip its drop-sink scan on the (overwhelmingly common) routers
    /// with nothing to sink.
    dropping_vcs: usize,
    /// Bitmask over input-VC slots (`port * vcs + vc`) that currently hold
    /// at least one flit, maintained by [`Router::push_flit`] and
    /// [`Router::pop_flit`]. The pipeline stages iterate this instead of
    /// scanning all 5 × `vcs` buffers; empty VCs can never be granted,
    /// routed or allocated, so skipping them is invisible.
    occupied: u64,
    /// Per-output-direction switch requests: bit `s` is set iff
    /// `vc_state[s].route == Some(dir)`. Set by [`Router::set_route`],
    /// cleared when the packet's tail leaves in [`Router::pop_flit`]. Switch
    /// allocation arbitrates over `occupied & route_req[dir]` instead of
    /// re-reading every occupied slot's route five times per router.
    route_req: [u64; 5],
    /// Slots whose packet has a non-local route but no downstream VC yet —
    /// exactly the candidates VC allocation must consider. Set by
    /// [`Router::set_route`], cleared by [`Router::grant_out_vc`] and the
    /// tail pop.
    va_pending: u64,
    /// Slots whose resident packet is past routing computation (route
    /// chosen, or being sunk by a drop order). Routing computation scans
    /// `occupied & !pipeline_done` — only freshly arrived heads.
    pipeline_done: u64,
}

impl Router {
    /// Creates an idle router with full credits.
    ///
    /// # Panics
    ///
    /// Panics if `config.vcs > 12`: the occupancy bitmask packs all
    /// 5 × `vcs` input-VC slots into one 64-bit word (Table I uses 4).
    #[must_use]
    pub fn new(id: NodeId, config: RouterConfig) -> Self {
        assert!(
            config.vcs * 5 <= 64,
            "at most 12 VCs per port supported (got {})",
            config.vcs
        );
        let slots = 5 * config.vcs;
        // Placeholder entries fill the slab so the ring indices are always
        // in bounds without unsafe; a slot's live region is exactly
        // `head .. head + len` (mod depth).
        let placeholder = (
            Flit {
                kind: FlitKind::Body,
                packet_id: 0,
                dst: NodeId(0),
                packet: None,
                injected_at: 0,
                slot: Flit::NO_SLOT,
            },
            0u64,
        );
        Router {
            id,
            config,
            vc_state: (0..slots).map(|_| VcState::new()).collect(),
            buf: vec![placeholder; slots * config.buffer_depth],
            out_credits: vec![config.buffer_depth; slots],
            out_allocated: vec![false; slots],
            sa_rr: vec![0; 5],
            flits_forwarded: 0,
            packets_routed: 0,
            buffered: 0,
            dropping_vcs: 0,
            occupied: 0,
            route_req: [0; 5],
            va_pending: 0,
            pipeline_done: 0,
        }
    }

    /// This router's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The router's configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Flat index of input-VC (or output-VC) `vc` of `port`.
    #[inline]
    pub(crate) fn slot(&self, port: usize, vc: usize) -> usize {
        port * self.config.vcs + vc
    }

    /// Whether an input VC has room for one more flit.
    #[must_use]
    pub fn can_accept(&self, dir: Direction, vc: usize) -> bool {
        self.vc_has_space(self.slot(dir.index(), vc))
    }

    /// Whether input-VC slot `s` has room for one more flit.
    #[inline]
    pub(crate) fn vc_has_space(&self, s: usize) -> bool {
        (self.vc_state[s].len as usize) < self.config.buffer_depth
    }

    /// Buffered flit count of input-VC slot `s`. Only the debug-build
    /// invariant auditor reads it; release builds compile it out.
    #[inline]
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn vc_len(&self, s: usize) -> usize {
        self.vc_state[s].len as usize
    }

    /// The flit at the front of input-VC slot `s`, if any.
    #[inline]
    pub(crate) fn vc_front(&self, s: usize) -> Option<&Flit> {
        let st = &self.vc_state[s];
        if st.len == 0 {
            return None;
        }
        let depth = self.config.buffer_depth;
        Some(&self.buf[s * depth + st.head as usize].0)
    }

    /// Mutable front flit of input-VC slot `s` (the inspection hook
    /// rewrites packet headers in place).
    #[inline]
    pub(crate) fn vc_front_mut(&mut self, s: usize) -> Option<&mut Flit> {
        let st = &self.vc_state[s];
        if st.len == 0 {
            return None;
        }
        let depth = self.config.buffer_depth;
        Some(&mut self.buf[s * depth + st.head as usize].0)
    }

    /// Cycle at which the front flit of input-VC slot `s` entered its
    /// buffer.
    #[inline]
    pub(crate) fn vc_front_arrived_at(&self, s: usize) -> Option<u64> {
        let st = &self.vc_state[s];
        if st.len == 0 {
            return None;
        }
        let depth = self.config.buffer_depth;
        Some(self.buf[s * depth + st.head as usize].1)
    }

    /// Total buffered flits across all input VCs (used by congestion-aware
    /// diagnostics, the network's active-set bookkeeping and tests).
    ///
    /// An O(1) counter read; debug builds cross-check it against a full
    /// rescan of all 5 × `vcs` buffers so any drift in the incremental
    /// accounting fails loudly.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.vc_state
                .iter()
                .map(|st| st.len as usize)
                .sum::<usize>(),
            "incremental flit counter drifted from buffer contents"
        );
        self.buffered
    }

    /// Whether the router holds no flits at all. O(1).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0
    }

    /// Pushes an arriving flit into input-VC slot `s`, keeping the
    /// incremental flit counter in sync. All buffer writes must go through
    /// here (or the counter drifts).
    #[inline]
    pub(crate) fn push_flit(&mut self, s: usize, flit: Flit, now: u64) {
        let depth = self.config.buffer_depth;
        let st = &mut self.vc_state[s];
        debug_assert!(
            (st.len as usize) < depth,
            "credit protocol violated: VC overrun"
        );
        let idx = s * depth + (st.head as usize + st.len as usize) % depth;
        st.len += 1;
        self.buf[idx] = (flit, now);
        self.buffered += 1;
        self.occupied |= 1 << s;
    }

    /// Pops the head flit of input-VC slot `s`, keeping the incremental
    /// flit and dropping-VC counters in sync. A tail pop clears the VC's
    /// per-packet pipeline state (route, out VC, inspected, dropping).
    #[inline]
    pub(crate) fn pop_flit(&mut self, s: usize) -> Option<Flit> {
        let depth = self.config.buffer_depth;
        let st = &mut self.vc_state[s];
        if st.len == 0 {
            return None;
        }
        let (flit, _) = self.buf[s * depth + st.head as usize];
        st.head = (st.head + 1) % depth as u32;
        st.len -= 1;
        if st.len == 0 {
            self.occupied &= !(1 << s);
        }
        if flit.kind.is_tail() {
            let was_dropping = st.dropping;
            if let Some(dir) = st.route {
                self.route_req[dir.index()] &= !(1 << s);
            }
            self.va_pending &= !(1 << s);
            self.pipeline_done &= !(1 << s);
            st.clear_packet_state();
            if was_dropping {
                self.dropping_vcs -= 1;
            }
        }
        self.buffered -= 1;
        Some(flit)
    }

    /// Bitmask of input-VC slots (`port * vcs + vc`) holding flits; debug
    /// builds cross-check it against the buffers.
    #[inline]
    pub(crate) fn occupied_slots(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            let mut rescan = 0u64;
            for (s, st) in self.vc_state.iter().enumerate() {
                if st.len > 0 {
                    rescan |= 1 << s;
                }
            }
            debug_assert_eq!(self.occupied, rescan, "occupancy mask drifted");
        }
        self.occupied
    }

    /// Marks input-VC slot `s` as sinking a dropped packet. Idempotent.
    #[inline]
    pub(crate) fn mark_dropping(&mut self, s: usize) {
        let st = &mut self.vc_state[s];
        if !st.dropping {
            st.dropping = true;
            self.dropping_vcs += 1;
        }
        self.pipeline_done |= 1 << s;
    }

    /// Records routing computation's decision for the packet in slot `s`,
    /// keeping the switch-request / VC-allocation masks in sync. All route
    /// assignments must go through here (or the masks drift).
    #[inline]
    pub(crate) fn set_route(&mut self, s: usize, dir: Direction) {
        self.vc_state[s].route = Some(dir);
        let bit = 1u64 << s;
        self.route_req[dir.index()] |= bit;
        self.pipeline_done |= bit;
        if dir != Direction::Local {
            self.va_pending |= bit;
        }
    }

    /// Records VC allocation's grant of downstream VC `out_vc` to the packet
    /// in slot `s`, marking the downstream VC allocated and retiring the
    /// slot from the VA-pending mask.
    #[inline]
    pub(crate) fn grant_out_vc(&mut self, s: usize, out_vc: usize) {
        let od = self.vc_state[s]
            .route
            .expect("VA grant requires a computed route")
            .index();
        self.out_allocated[od * self.config.vcs + out_vc] = true;
        self.vc_state[s].out_vc = Some(out_vc);
        self.va_pending &= !(1u64 << s);
    }

    /// Occupied slots requesting output port `od` — switch allocation's
    /// candidate set for that port.
    #[inline]
    pub(crate) fn switch_requests(&self, od: usize) -> u64 {
        self.occupied_slots() & self.route_req[od]
    }

    /// Occupied slots with a non-local route still awaiting a downstream
    /// VC — VC allocation's candidate set.
    #[inline]
    pub(crate) fn va_pending_slots(&self) -> u64 {
        self.occupied_slots() & self.va_pending
    }

    /// Occupied slots whose front packet still needs routing computation
    /// (no route yet, not being sunk).
    #[inline]
    pub(crate) fn unrouted_slots(&self) -> u64 {
        self.occupied_slots() & !self.pipeline_done
    }

    /// Rebuilds the pipeline-stage masks from `vc_state` and asserts they
    /// match the incrementally maintained ones (debug-build audit).
    #[cfg(debug_assertions)]
    pub(crate) fn debug_masks_consistent(&self) {
        let mut req = [0u64; 5];
        let mut va = 0u64;
        let mut done = 0u64;
        for (s, st) in self.vc_state.iter().enumerate() {
            if let Some(dir) = st.route {
                req[dir.index()] |= 1 << s;
                done |= 1 << s;
                if dir != Direction::Local && st.out_vc.is_none() {
                    va |= 1 << s;
                }
            }
            if st.dropping {
                done |= 1 << s;
            }
        }
        assert_eq!(self.route_req, req, "switch-request masks drifted");
        assert_eq!(self.va_pending, va, "VA-pending mask drifted");
        assert_eq!(self.pipeline_done, done, "pipeline-done mask drifted");
    }

    /// Whether any input VC is currently sinking a dropped packet. Gates
    /// the switch stage's drop-sink scan.
    #[inline]
    pub(crate) fn has_dropping(&self) -> bool {
        self.dropping_vcs > 0
    }

    /// Lowest-index idle local-input VC (empty, with no residual route) —
    /// the injection stage's VC selection for a new packet's head flit.
    #[inline]
    pub(crate) fn free_injection_vc(&self) -> Option<usize> {
        let base = Direction::Local.index() * self.config.vcs;
        (0..self.config.vcs).find(|&v| {
            let st = &self.vc_state[base + v];
            st.len == 0 && st.route.is_none()
        })
    }

    /// Finds a free downstream VC on output port `od`, preferring lower
    /// indices.
    #[inline]
    pub(crate) fn free_out_vc(&self, od: usize) -> Option<usize> {
        let base = od * self.config.vcs;
        (0..self.config.vcs).find(|&v| !self.out_allocated[base + v])
    }

    /// Free credit count on an output port, summed over VCs. Adaptive
    /// routing uses this as its congestion estimate.
    #[must_use]
    pub(crate) fn output_credits(&self, dir: Direction) -> usize {
        let base = dir.index() * self.config.vcs;
        self.out_credits[base..base + self.config.vcs].iter().sum()
    }

    /// Snapshot of one input VC's observable state (diagnostics; see
    /// [`VcSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if `in_port >= 5` or `vc >= config.vcs`.
    #[must_use]
    pub fn vc_snapshot(&self, in_port: usize, vc: usize) -> VcSnapshot {
        assert!(in_port < 5 && vc < self.config.vcs);
        let s = self.slot(in_port, vc);
        let st = &self.vc_state[s];
        VcSnapshot {
            occupancy: st.len as usize,
            front_packet: self.vc_front(s).map(|f| f.packet_id),
            front_arrived_at: self.vc_front_arrived_at(s),
            route: st.route,
            out_vc: st.out_vc,
            inspected: st.inspected,
            dropping: st.dropping,
        }
    }

    /// Free credits this router holds for one downstream VC (diagnostics).
    #[must_use]
    pub fn output_credit(&self, dir: Direction, vc: usize) -> usize {
        self.out_credits[self.slot(dir.index(), vc)]
    }

    /// Whether a downstream VC is currently allocated to a packet
    /// (diagnostics).
    #[must_use]
    pub fn output_allocated(&self, dir: Direction, vc: usize) -> bool {
        self.out_allocated[self.slot(dir.index(), vc)]
    }

    /// Flits this router has pushed through its crossbar so far — a
    /// utilization measure for congestion heatmaps.
    #[must_use]
    pub fn flits_forwarded(&self) -> u64 {
        self.flits_forwarded
    }

    /// Packet headers that ran routing computation here.
    #[must_use]
    pub fn packets_routed(&self) -> u64 {
        self.packets_routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketKind};

    fn data_flits() -> Vec<Flit> {
        Flit::packetize(Packet::new(NodeId(0), NodeId(1), PacketKind::Data, 7), 1, 0)
    }

    #[test]
    fn flit_counter_tracks_push_and_pop() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let s = r.slot(Direction::North.index(), 2);
        let flits = data_flits();
        let n = flits.len();
        for (i, f) in flits.into_iter().enumerate() {
            r.push_flit(s, f, i as u64);
            assert_eq!(r.buffered_flits(), i + 1);
        }
        assert!(!r.is_idle());
        for i in (0..n).rev() {
            assert!(r.pop_flit(s).is_some());
            assert_eq!(r.buffered_flits(), i);
        }
        assert!(r.is_idle());
        assert!(r.pop_flit(s).is_none());
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn ring_preserves_fifo_order_and_arrival_stamps() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let s = r.slot(Direction::East.index(), 1);
        // Fill, drain two, refill: the ring wraps across the slice edge.
        for (i, f) in data_flits().into_iter().enumerate() {
            assert!(r.vc_has_space(s));
            r.push_flit(s, f, 10 + i as u64);
        }
        assert!(!r.vc_has_space(s));
        assert_eq!(r.vc_front_arrived_at(s), Some(10));
        assert_eq!(r.vc_front(s).map(|f| f.kind), Some(FlitKind::Head));
        assert!(r.pop_flit(s).is_some());
        assert_eq!(r.vc_front_arrived_at(s), Some(11));
        assert!(r.pop_flit(s).is_some());
        let refill = data_flits();
        r.push_flit(s, refill[0], 20);
        r.push_flit(s, refill[1], 21);
        let kinds: Vec<FlitKind> = std::iter::from_fn(|| r.pop_flit(s))
            .map(|f| f.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail,
                FlitKind::Head,
                FlitKind::Body
            ]
        );
    }

    #[test]
    fn tail_pop_clears_route_state() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let s = r.slot(Direction::North.index(), 0);
        for f in data_flits() {
            r.push_flit(s, f, 0);
        }
        r.vc_state[s].route = Some(Direction::East);
        r.vc_state[s].out_vc = Some(2);
        r.vc_state[s].inspected = true;
        for _ in 0..4 {
            r.pop_flit(s);
            assert_eq!(r.vc_state[s].route, Some(Direction::East));
        }
        let tail = r.pop_flit(s).unwrap();
        assert_eq!(tail.kind, FlitKind::Tail);
        assert_eq!(r.vc_state[s].route, None);
        assert_eq!(r.vc_state[s].out_vc, None);
        assert!(!r.vc_state[s].inspected);
    }

    #[test]
    fn dropping_counter_clears_on_tail_pop() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let s = r.slot(Direction::East.index(), 0);
        let flits = data_flits();
        let n = flits.len();
        for f in flits {
            r.push_flit(s, f, 0);
        }
        assert!(!r.has_dropping());
        r.mark_dropping(s);
        r.mark_dropping(s); // idempotent
        assert!(r.has_dropping());
        for _ in 0..n - 1 {
            r.pop_flit(s);
            assert!(r.has_dropping());
        }
        r.pop_flit(s); // tail clears the flag
        assert!(!r.has_dropping());
        assert!(r.is_idle());
    }

    #[test]
    fn output_port_free_vc_prefers_lowest() {
        let mut r = Router::new(NodeId(0), RouterConfig::default());
        let od = Direction::South.index();
        assert_eq!(r.free_out_vc(od), Some(0));
        for vc in [0, 1] {
            let s = r.slot(od, vc);
            r.out_allocated[s] = true;
        }
        assert_eq!(r.free_out_vc(od), Some(2));
        for vc in 0..4 {
            let s = r.slot(od, vc);
            r.out_allocated[s] = true;
        }
        assert_eq!(r.free_out_vc(od), None);
        // Other ports are unaffected by this port's allocations.
        assert_eq!(r.free_out_vc(Direction::North.index()), Some(0));
    }

    #[test]
    fn default_config_matches_table1() {
        let c = RouterConfig::default();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.buffer_depth, 5);
    }

    #[test]
    fn new_router_is_idle_with_full_credits() {
        let r = Router::new(NodeId(3), RouterConfig::default());
        assert!(r.is_idle());
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.flits_forwarded(), 0);
        assert_eq!(r.packets_routed(), 0);
        for dir in Direction::ALL {
            assert_eq!(r.output_credits(dir), 4 * 5);
            for vc in 0..4 {
                assert!(r.can_accept(dir, vc));
            }
        }
    }
}
