use crate::topology::{Direction, NodeId};
use crate::vc::{OutputPort, VirtualChannel};

/// Microarchitectural parameters of a router.
///
/// Defaults follow Table I of the paper: 4 virtual channels per input port
/// and 5-flit buffers ("NoC buffer 5 × 5 flits" — five ports with five-flit
/// buffers per VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vcs: 4,
            buffer_depth: 5,
        }
    }
}

/// One mesh router: five input ports (N/S/E/W/Local) with per-port virtual
/// channels, plus credit state for each output port's downstream buffers.
///
/// The router is a passive state container; the cycle-by-cycle pipeline
/// (buffer write → routing computation → VC/switch allocation → switch
/// traversal) is driven by [`crate::Network::step`], which models a
/// two-cycle router and one-cycle links (Table I).
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    config: RouterConfig,
    /// `inputs[dir][vc]` — input-side virtual channels.
    pub(crate) inputs: Vec<Vec<VirtualChannel>>,
    /// `outputs[dir]` — credit/allocation state for the downstream port.
    pub(crate) outputs: Vec<OutputPort>,
    /// Round-robin pointers for switch allocation, one per output port.
    pub(crate) sa_rr: Vec<usize>,
    /// Flits this router pushed through its crossbar (all output ports).
    pub(crate) flits_forwarded: u64,
    /// Packet headers that ran routing computation here (= packets that
    /// transited or terminated at this router).
    pub(crate) packets_routed: u64,
}

impl Router {
    /// Creates an idle router with full credits.
    #[must_use]
    pub fn new(id: NodeId, config: RouterConfig) -> Self {
        Router {
            id,
            config,
            inputs: (0..5)
                .map(|_| {
                    (0..config.vcs)
                        .map(|_| VirtualChannel::new(config.buffer_depth))
                        .collect()
                })
                .collect(),
            outputs: (0..5)
                .map(|_| OutputPort::new(config.vcs, config.buffer_depth))
                .collect(),
            sa_rr: vec![0; 5],
            flits_forwarded: 0,
            packets_routed: 0,
        }
    }

    /// This router's node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The router's configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Whether an input VC has room for one more flit.
    #[must_use]
    pub fn can_accept(&self, dir: Direction, vc: usize) -> bool {
        self.inputs[dir.index()][vc].has_space()
    }

    /// Total buffered flits across all input VCs (used by congestion-aware
    /// diagnostics and tests).
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|port| port.iter())
            .map(|vc| vc.len())
            .sum()
    }

    /// Whether the router holds no flits at all.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.buffered_flits() == 0
    }

    /// Free credit count on an output port, summed over VCs. Adaptive
    /// routing uses this as its congestion estimate.
    #[must_use]
    pub(crate) fn output_credits(&self, dir: Direction) -> usize {
        self.outputs[dir.index()].credits.iter().sum()
    }

    /// Flits this router has pushed through its crossbar so far — a
    /// utilization measure for congestion heatmaps.
    #[must_use]
    pub fn flits_forwarded(&self) -> u64 {
        self.flits_forwarded
    }

    /// Packet headers that ran routing computation here.
    #[must_use]
    pub fn packets_routed(&self) -> u64 {
        self.packets_routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table1() {
        let c = RouterConfig::default();
        assert_eq!(c.vcs, 4);
        assert_eq!(c.buffer_depth, 5);
    }

    #[test]
    fn new_router_is_idle_with_full_credits() {
        let r = Router::new(NodeId(3), RouterConfig::default());
        assert!(r.is_idle());
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.flits_forwarded(), 0);
        assert_eq!(r.packets_routed(), 0);
        for dir in Direction::ALL {
            assert_eq!(r.output_credits(dir), 4 * 5);
            for vc in 0..4 {
                assert!(r.can_accept(dir, vc));
            }
        }
    }
}
