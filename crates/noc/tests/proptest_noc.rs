//! Property-based tests of the NoC simulator's end-to-end invariants:
//! conservation (every injected packet is delivered exactly once), payload
//! integrity on a clean network, and minimal routing.

use proptest::prelude::*;

use htpb_noc::{
    InspectOutcome, Mesh2d, Network, NetworkConfig, NodeId, Packet, PacketInspector, PacketKind,
    PacketStore, RawPacket, RoutingKind,
};

/// Drops every packet whose id hash lands under the threshold, at one node.
#[derive(Debug)]
struct RandomDropper {
    node: NodeId,
    threshold: u32,
}

impl PacketInspector for RandomDropper {
    fn inspect(&mut self, router: NodeId, _cycle: u64, packet: &mut Packet) -> InspectOutcome {
        if router == self.node && packet.payload().wrapping_mul(0x9E3779B9) >> 16 < self.threshold {
            InspectOutcome::dropped()
        } else {
            InspectOutcome::untouched()
        }
    }
}

fn arb_mesh() -> impl Strategy<Value = Mesh2d> {
    (2u16..=8, 2u16..=8).prop_map(|(w, h)| Mesh2d::new(w, h).expect("valid dims"))
}

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::PowerReq),
        Just(PacketKind::PowerGrant),
        Just(PacketKind::Data),
        Just(PacketKind::Meta),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected packet is delivered exactly once, with the payload it
    /// was injected with, regardless of traffic shape or routing algorithm.
    #[test]
    fn conservation_and_integrity(
        mesh in arb_mesh(),
        routing in prop_oneof![Just(RoutingKind::Xy), Just(RoutingKind::OddEven)],
        sends in proptest::collection::vec((0u32..64, 0u32..64, arb_kind(), any::<u32>()), 1..40),
    ) {
        let nodes = mesh.nodes();
        let mut net = Network::new(NetworkConfig::new(mesh).with_routing(routing));
        let mut expected = Vec::new();
        for (s, d, kind, payload) in sends {
            let src = NodeId((s % nodes) as u16);
            let dst = NodeId((d % nodes) as u16);
            net.inject(Packet::new(src, dst, kind, payload)).expect("inject");
            expected.push((src, dst, payload));
        }
        prop_assert!(net.run_until_idle(1_000_000), "network failed to drain");
        let mut out = net.drain_ejected();
        prop_assert_eq!(out.len(), expected.len());
        // Match up multiset-style: sort both by (src, dst, payload).
        let mut got: Vec<_> = out
            .drain(..)
            .map(|d| (d.packet.src(), d.packet.dst(), d.packet.payload()))
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(net.stats().modified_packets(), 0);
        prop_assert_eq!(net.stats().infection_rate(), 0.0);
    }

    /// On an uncontended network, XY-routed packets take exactly the
    /// Manhattan-distance number of hops.
    #[test]
    fn xy_hops_are_minimal(mesh in arb_mesh(), s in any::<u16>(), d in any::<u16>()) {
        let nodes = mesh.nodes() as u16;
        let src = NodeId(s % nodes);
        let dst = NodeId(d % nodes);
        let mut net = Network::new(NetworkConfig::new(mesh));
        net.inject(Packet::power_request(src, dst, 1)).expect("inject");
        prop_assert!(net.run_until_idle(10_000));
        let out = net.drain_ejected();
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].hops, mesh.distance(src, dst));
    }

    /// Adaptive routing is also minimal in hop count (odd-even only offers
    /// minimal candidates).
    #[test]
    fn odd_even_hops_are_minimal(mesh in arb_mesh(), s in any::<u16>(), d in any::<u16>()) {
        let nodes = mesh.nodes() as u16;
        let src = NodeId(s % nodes);
        let dst = NodeId(d % nodes);
        let mut net = Network::new(NetworkConfig::new(mesh).with_routing(RoutingKind::OddEven));
        net.inject(Packet::power_request(src, dst, 1)).expect("inject");
        prop_assert!(net.run_until_idle(10_000));
        let out = net.drain_ejected();
        prop_assert_eq!(out[0].hops, mesh.distance(src, dst));
    }

    /// Conservation under drops: every injected packet is either delivered
    /// or counted dropped — never both, never lost — and the network
    /// returns to a fully idle state.
    #[test]
    fn conservation_with_dropping_inspector(
        mesh in arb_mesh(),
        drop_node in any::<u16>(),
        threshold in 0u32..0xFFFF,
        sends in proptest::collection::vec((0u32..64, 0u32..64, arb_kind(), any::<u32>()), 1..40),
    ) {
        let nodes = mesh.nodes();
        let dropper = RandomDropper {
            node: NodeId((u32::from(drop_node) % nodes) as u16),
            threshold,
        };
        let mut net = Network::with_inspector(NetworkConfig::new(mesh), dropper);
        let mut injected = 0u64;
        for (s, d, kind, payload) in sends {
            let src = NodeId((s % nodes) as u16);
            let dst = NodeId((d % nodes) as u16);
            net.inject(Packet::new(src, dst, kind, payload)).expect("inject");
            injected += 1;
        }
        prop_assert!(net.run_until_idle(1_000_000), "network failed to drain");
        let stats = net.stats();
        prop_assert_eq!(
            stats.delivered_packets() + stats.dropped_packets(),
            injected,
            "conservation violated"
        );
        for n in mesh.iter_nodes() {
            prop_assert!(net.router(n).is_idle(), "router {} not idle", n);
        }
    }

    /// Decoding arbitrary wire words never panics: it either yields a valid
    /// packet (which re-encodes to the same prefix) or a structured error.
    #[test]
    fn decode_is_total(words in proptest::array::uniform4(any::<u32>()), len in 0usize..=4) {
        let raw = RawPacket { words, len };
        if let Ok(p) = Packet::decode(&raw) {
            let re = p.encode();
            prop_assert_eq!(re.words[0], words[0]);
            prop_assert_eq!(re.words[2], words[2]);
        }
    }

    /// [`PacketStore`] recycling never aliases a live packet: under an
    /// arbitrary interleaving of allocations and frees, `alloc` never hands
    /// out a slot that a live packet still occupies, and every live slot
    /// keeps the packet id it was allocated with.
    #[test]
    fn packet_store_recycling_never_aliases_live_packets(
        ops in proptest::collection::vec((any::<bool>(), any::<u32>()), 1..256),
    ) {
        let mut store = PacketStore::new();
        let mut live: Vec<(u32, u64)> = Vec::new();
        let mut next_id = 0u64;
        for (do_free, pick) in ops {
            if do_free && !live.is_empty() {
                let idx = pick as usize % live.len();
                let (slot, id) = live.swap_remove(idx);
                prop_assert_eq!(store.packet_id(slot), id);
                store.free(slot);
                prop_assert!(!store.is_live(slot));
            } else {
                let id = next_id;
                next_id += 1;
                let slot = store.alloc(id, id);
                prop_assert!(
                    live.iter().all(|&(s, _)| s != slot),
                    "alloc returned slot {} which is still live", slot
                );
                prop_assert!(store.is_live(slot));
                live.push((slot, id));
            }
        }
        prop_assert_eq!(store.live(), live.len());
        for &(slot, id) in &live {
            prop_assert_eq!(store.packet_id(slot), id);
            prop_assert_eq!(store.injected_at(slot), id);
        }
    }

    /// Packet wire encoding round-trips for every representable frame.
    #[test]
    fn packet_encode_decode_roundtrip(
        s in any::<u16>(),
        d in any::<u16>(),
        kind in arb_kind(),
        payload in any::<u32>(),
        opt in proptest::option::of(any::<u32>()),
    ) {
        let mut p = Packet::new(NodeId(s), NodeId(d), kind, payload);
        if let Some(o) = opt {
            p = p.with_options(o);
        }
        let q = Packet::decode(&p.encode()).expect("decode");
        prop_assert_eq!(p, q);
    }
}
