//! Cross-implementation determinism lock: golden digests of the NoC
//! pipeline's observable behaviour.
//!
//! Each scenario steps a network cycle by cycle and folds, per cycle, the
//! full [`NetworkStats`] fingerprint and every packet delivered that cycle
//! (order included) into one FNV-1a digest; the trace-buffer fingerprint is
//! folded at the end. The expected values below were recorded from the
//! original dense-scan pipeline (pre active-set optimisation, PR 2) — any
//! later rework of `Network::step` must reproduce them bit for bit, which
//! pins stage ordering, round-robin state, ejection order, stats and traces
//! all at once. If one of these tests fails after a simulator change, the
//! change altered semantics, not just speed: fix the change, do NOT
//! re-record the golden value unless the semantic change is intentional
//! and reviewed.

use htpb_noc::{
    Digest, HotspotTraffic, InspectOutcome, Mesh2d, Network, NetworkConfig, NodeId, Packet,
    PacketInspector, PacketKind, TrafficPattern, UniformTraffic,
};

/// A deterministic false-data Trojan: at each listed router, the payload of
/// every power request bound for the manager is zeroed (the paper's
/// `TamperRule::Zero` shape, reimplemented here so the NoC crate's tests
/// stay dependency-free).
#[derive(Debug)]
struct ZeroTrojans {
    nodes: Vec<NodeId>,
    manager: NodeId,
}

impl PacketInspector for ZeroTrojans {
    fn inspect(&mut self, router: NodeId, _cycle: u64, packet: &mut Packet) -> InspectOutcome {
        if self.nodes.contains(&router)
            && packet.dst() == self.manager
            && matches!(packet.kind(), PacketKind::PowerReq)
            && packet.payload() != 0
        {
            packet.set_payload(0);
            return InspectOutcome::tampered();
        }
        InspectOutcome::untouched()
    }
}

/// Folds one delivered packet (with delivery order preserved by the caller)
/// into the digest.
fn fold_delivered(d: &mut Digest, p: &htpb_noc::DeliveredPacket) {
    d.u64(u64::from(p.packet.src().0))
        .u64(u64::from(p.packet.dst().0))
        .u64(u64::from(p.packet.payload()))
        .u64(u64::from(p.packet.kind().to_type_word()))
        .u64(p.latency)
        .u64(u64::from(p.hops))
        .u64(u64::from(p.modified));
}

/// Drives `net` for `cycles` cycles with per-cycle traffic, then drains it,
/// digesting stats and deliveries every cycle and the trace at the end.
fn run_digest<I: PacketInspector>(
    mut net: Network<I>,
    mut traffic: impl TrafficPattern,
    cycles: u64,
) -> u64 {
    let mut d = Digest::new();
    let step = |net: &mut Network<I>, d: &mut Digest| {
        net.step();
        d.u64(net.stats().fingerprint());
        for p in net.drain_ejected() {
            fold_delivered(d, &p);
        }
    };
    for cycle in 0..cycles {
        for p in traffic.generate(cycle) {
            let _ = net.inject(p);
        }
        step(&mut net, &mut d);
    }
    let mut spin = 0u64;
    while !net.is_idle() {
        step(&mut net, &mut d);
        spin += 1;
        assert!(spin < 1_000_000, "network failed to drain");
    }
    d.u64(net.cycle());
    if let Some(trace) = net.trace() {
        d.u64(trace.fingerprint());
    }
    d.finish()
}

fn traced(mesh: Mesh2d) -> NetworkConfig {
    NetworkConfig::new(mesh).with_tracing(4_096)
}

fn trojans_for(mesh: Mesh2d) -> ZeroTrojans {
    // A diagonal band of Trojans plus the manager's west neighbour: stable
    // across mesh sizes, never on the manager itself.
    let manager = mesh.center();
    let nodes = (0..mesh.nodes())
        .filter(|i| i % 7 == 3)
        .map(|i| NodeId(i as u16))
        .filter(|n| *n != manager)
        .collect();
    ZeroTrojans { nodes, manager }
}

fn hotspot_digest(w: u16, h: u16, metrics: bool) -> u64 {
    let mesh = Mesh2d::new(w, h).unwrap();
    let mut net = Network::new(traced(mesh));
    if metrics {
        net.enable_metrics();
    }
    let traffic = HotspotTraffic::new(mesh, mesh.center(), 600, 120, 11);
    run_digest(net, traffic, 2_400)
}

fn uniform_digest(w: u16, h: u16, metrics: bool) -> u64 {
    let mesh = Mesh2d::new(w, h).unwrap();
    let mut net = Network::new(traced(mesh));
    if metrics {
        net.enable_metrics();
    }
    let traffic = UniformTraffic::new(mesh, 0.03, PacketKind::Data, 23);
    run_digest(net, traffic, 1_500)
}

fn trojan_digest(w: u16, h: u16, metrics: bool) -> u64 {
    let mesh = Mesh2d::new(w, h).unwrap();
    let mut net = Network::with_inspector(traced(mesh), trojans_for(mesh));
    if metrics {
        net.enable_metrics();
    }
    let traffic = HotspotTraffic::new(mesh, mesh.center(), 500, 80, 5);
    run_digest(net, traffic, 2_000)
}

// Every golden value is asserted twice: metrics off (the original recorded
// configuration) and metrics on. The second assertion is the
// non-perturbation contract of `htpb-obs` made executable — collecting the
// full live metric set must leave stats, delivery order, cycle count and
// traces bit-identical.

#[test]
fn golden_hotspot_8x8() {
    assert_eq!(hotspot_digest(8, 8, false), 10974665365203148897);
    assert_eq!(hotspot_digest(8, 8, true), 10974665365203148897);
}

#[test]
fn golden_hotspot_16x16() {
    assert_eq!(hotspot_digest(16, 16, false), 6746930467982697151);
    assert_eq!(hotspot_digest(16, 16, true), 6746930467982697151);
}

#[test]
fn golden_uniform_8x8() {
    assert_eq!(uniform_digest(8, 8, false), 18339930570319748036);
    assert_eq!(uniform_digest(8, 8, true), 18339930570319748036);
}

#[test]
fn golden_uniform_16x16() {
    assert_eq!(uniform_digest(16, 16, false), 7876670920061007167);
    assert_eq!(uniform_digest(16, 16, true), 7876670920061007167);
}

#[test]
fn golden_trojan_8x8() {
    assert_eq!(trojan_digest(8, 8, false), 7134810773300823719);
    assert_eq!(trojan_digest(8, 8, true), 7134810773300823719);
}

#[test]
fn golden_trojan_16x16() {
    assert_eq!(trojan_digest(16, 16, false), 9836475051372867626);
    assert_eq!(trojan_digest(16, 16, true), 9836475051372867626);
}
