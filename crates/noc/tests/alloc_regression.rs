//! Allocation regression lock: steady-state [`Network::step`] performs
//! ZERO heap allocations.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; after a warm-up
//! phase (which is allowed to allocate: injection queues, the packet-store
//! slab and the ejection buffer all grow to their steady-state capacity),
//! every individual `step()` call on a loaded 16×16 mesh must leave the
//! allocation counter untouched. Traffic generation, injection and draining
//! happen *outside* the counted region — they are the caller's loop, not
//! the simulator hot path.
//!
//! Debug builds deliberately allocate inside `step()`: the every-64-cycles
//! invariant auditor collects worklist snapshots. The whole test is
//! therefore compiled out under `debug_assertions`; CI runs it explicitly
//! with `cargo test --release -p htpb-noc --test alloc_regression`.
#![cfg(not(debug_assertions))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use htpb_noc::{Mesh2d, Network, NetworkConfig, PacketKind, TrafficPattern, UniformTraffic};

/// Counts every allocator call that can hand out fresh memory. Frees are
/// not counted: returning memory is allowed (and `step()` does not do that
/// either, but the lock is specifically on *acquiring* heap memory).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// 16×16 mesh at 0.05 uniform load — the `uniform16_rate005` benchmark
/// scenario. 2 000 warm-up cycles grow every buffer to steady state; the
/// following 2 000 cycles must not allocate inside `step()`.
#[test]
fn steady_state_step_performs_zero_heap_allocations() {
    run_zero_alloc_scenario(false);
}

/// Same lock with live metrics enabled: [`Network::enable_metrics`] boxes
/// its tallies up front, so the instrumented hot loop must stay just as
/// allocation-free as the bare one.
#[test]
fn steady_state_step_with_metrics_performs_zero_heap_allocations() {
    run_zero_alloc_scenario(true);
}

fn run_zero_alloc_scenario(metrics: bool) {
    const WARMUP: u64 = 2_000;
    const MEASURED: u64 = 2_000;

    let mesh = Mesh2d::new(16, 16).unwrap();
    let mut traffic = UniformTraffic::new(mesh, 0.05, PacketKind::Meta, 42);
    let mut net = Network::new(NetworkConfig::new(mesh));
    if metrics {
        net.enable_metrics();
    }
    let mut delivered = Vec::with_capacity(1024);

    for cycle in 0..WARMUP {
        for p in traffic.generate(cycle) {
            let _ = net.inject(p);
        }
        net.step();
        net.drain_ejected_into(&mut delivered);
    }

    let mut total_delivered = 0u64;
    for cycle in WARMUP..WARMUP + MEASURED {
        // Traffic generation and injection are the caller's business and
        // may allocate; only the step itself is counted.
        for p in traffic.generate(cycle) {
            let _ = net.inject(p);
        }
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        net.step();
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "Network::step() heap-allocated at cycle {cycle} (after {} warm-up cycles)",
            WARMUP
        );
        net.drain_ejected_into(&mut delivered);
        total_delivered += delivered.len() as u64;
    }

    // Sanity: the measured window exercised real traffic, not an idle mesh.
    assert!(
        total_delivered > 1_000,
        "measured window delivered only {total_delivered} packets — load too low for the lock to mean anything"
    );
    if metrics {
        let m = net.metrics().expect("metrics were enabled");
        assert!(
            m.active_router_cycles > 0 && m.vc_occupancy_total() > 0,
            "metrics-on run recorded nothing — hooks are dead, lock is vacuous"
        );
    }
}
