use crate::model::PowerModel;
use crate::request::{PowerGrant, PowerRequest};

/// A power-budget allocation policy run by the global manager each epoch.
///
/// # Contract
///
/// For any input, an implementation must return exactly one grant per
/// request (same core ids, any order) such that every grant is
/// non-negative, no grant exceeds its request, and the grant total does not
/// exceed `budget_mw` (up to floating-point slack). These invariants are
/// what make the false-data attack effective *irrespective of the
/// algorithm* (Section I): a lowered request is a hard ceiling on what the
/// victim can receive.
pub trait PowerAllocator: Send {
    /// Divides `budget_mw` among `requests`.
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        model: &PowerModel,
    ) -> Vec<PowerGrant>;

    /// Short policy name for logs and bench output.
    fn name(&self) -> &'static str;

    /// Resets any controller state between independent runs.
    fn reset(&mut self) {}
}

/// Selects one of the built-in allocation policies by name — handy for
/// configuration structs that must be `Clone`/`Copy` while the allocators
/// themselves are stateful trait objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocatorKind {
    /// [`GreedyAllocator`] — the default; descending-size first-fit.
    #[default]
    Greedy,
    /// [`FairShareAllocator`] — max-min fair water-filling.
    FairShare,
    /// [`PiAllocator`] — PI-controlled global throttle.
    Pi,
    /// [`DpAllocator`] — dynamic-programming optimal over DVFS points.
    Dp,
    /// [`MarketAllocator`] — bidding with per-core currency rebates.
    Market,
}

impl AllocatorKind {
    /// All built-in policies, for ablation sweeps.
    pub const ALL: [AllocatorKind; 5] = [
        AllocatorKind::Greedy,
        AllocatorKind::FairShare,
        AllocatorKind::Pi,
        AllocatorKind::Dp,
        AllocatorKind::Market,
    ];

    /// Instantiates the policy with default parameters.
    #[must_use]
    pub fn build(self) -> Box<dyn PowerAllocator> {
        match self {
            AllocatorKind::Greedy => Box::new(GreedyAllocator::new()),
            AllocatorKind::FairShare => Box::new(FairShareAllocator::new()),
            AllocatorKind::Pi => Box::new(PiAllocator::default()),
            AllocatorKind::Dp => Box::new(DpAllocator::default()),
            AllocatorKind::Market => Box::new(MarketAllocator::default()),
        }
    }

    /// The policy's short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Greedy => "greedy",
            AllocatorKind::FairShare => "fair-share",
            AllocatorKind::Pi => "pi-control",
            AllocatorKind::Dp => "dp-optimal",
            AllocatorKind::Market => "market",
        }
    }
}

/// Clamps grants so they satisfy the allocator contract exactly: each grant
/// in `[0, request]` and the total within `budget_mw`.
///
/// Hostile inputs must not escape: a `NaN` request caps its grant at zero, a
/// `NaN` grant becomes zero, and every grant is additionally capped at the
/// budget so an infinite request can never push the total to `∞` (where the
/// rescale `budget / total` would turn *other* cores' grants into
/// `∞ × 0 = NaN`).
/// Audits a finished grant vector against the allocator contract: one grant
/// per request (same cores, same order), every grant finite and within
/// `[0, request]`, and the total within `budget_mw` — up to a small
/// floating-point tolerance for the rescale in [`enforce_contract`].
///
/// Returns a description of the first violation, or `None` when the
/// contract holds. [`crate::GlobalManager::run_epoch`] asserts this in
/// debug builds after every allocation; the `htpb-testkit` invariant suite
/// drives it across every [`AllocatorKind`] with randomized requests.
#[must_use]
pub fn audit_grant_contract(
    grants: &[PowerGrant],
    requests: &[PowerRequest],
    budget_mw: f64,
) -> Option<String> {
    const TOL: f64 = 1e-9;
    let budget = if budget_mw.is_nan() {
        0.0
    } else {
        budget_mw.clamp(0.0, f64::MAX)
    };
    if grants.len() != requests.len() {
        return Some(format!(
            "{} grants for {} requests",
            grants.len(),
            requests.len()
        ));
    }
    let mut total = 0.0f64;
    for (g, r) in grants.iter().zip(requests) {
        if g.core != r.core {
            return Some(format!(
                "grant core {} answers request core {}",
                g.core, r.core
            ));
        }
        if !g.milliwatts.is_finite() || g.milliwatts < 0.0 {
            return Some(format!(
                "core {}: non-finite/negative grant {}",
                g.core, g.milliwatts
            ));
        }
        let ceiling = if r.milliwatts.is_nan() {
            0.0
        } else {
            r.milliwatts.max(0.0)
        };
        if g.milliwatts > ceiling * (1.0 + TOL) + TOL {
            return Some(format!(
                "core {}: grant {} exceeds request {}",
                g.core, g.milliwatts, r.milliwatts
            ));
        }
        total += g.milliwatts;
    }
    if total > budget * (1.0 + TOL) + TOL {
        return Some(format!("total grants {total} exceed budget {budget}"));
    }
    None
}

fn enforce_contract(grants: &mut [PowerGrant], requests: &[PowerRequest], budget_mw: f64) {
    let budget = if budget_mw.is_nan() {
        0.0
    } else {
        budget_mw.clamp(0.0, f64::MAX)
    };
    for (g, r) in grants.iter_mut().zip(requests) {
        debug_assert_eq!(g.core, r.core);
        let ceiling = if r.milliwatts.is_nan() {
            0.0
        } else {
            r.milliwatts.max(0.0)
        };
        if g.milliwatts.is_nan() {
            g.milliwatts = 0.0;
        }
        g.milliwatts = g.milliwatts.clamp(0.0, ceiling.min(budget));
    }
    let total: f64 = grants.iter().map(|g| g.milliwatts).sum();
    if total > budget && total > 0.0 {
        let scale = budget / total;
        for g in grants.iter_mut() {
            g.milliwatts *= scale;
        }
    }
}

/// Greedy heuristic allocator (the SmartCap \[8\] family): requests are served
/// in descending size order, each receiving as much of the remaining budget
/// as it asked for.
///
/// Performance-first and deliberately unfair — large requesters (busy,
/// compute-bound applications) are fully satisfied before small ones see any
/// budget.
#[derive(Debug, Clone, Default)]
pub struct GreedyAllocator;

impl GreedyAllocator {
    /// Creates the allocator.
    #[must_use]
    pub fn new() -> Self {
        GreedyAllocator
    }
}

impl PowerAllocator for GreedyAllocator {
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        _model: &PowerModel,
    ) -> Vec<PowerGrant> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[b]
                .milliwatts
                .total_cmp(&requests[a].milliwatts)
                .then(requests[a].core.cmp(&requests[b].core))
        });
        let mut remaining = budget_mw.max(0.0);
        let mut grants: Vec<PowerGrant> = requests
            .iter()
            .map(|r| PowerGrant::new(r.core, 0.0))
            .collect();
        for idx in order {
            let want = requests[idx].milliwatts.max(0.0);
            let give = want.min(remaining);
            grants[idx].milliwatts = give;
            remaining -= give;
        }
        enforce_contract(&mut grants, requests, budget_mw);
        grants
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Max-min fair (water-filling) allocator: the budget is raised uniformly
/// across all requesters until each is either satisfied or the budget is
/// exhausted. Small requests are always fully served first.
#[derive(Debug, Clone, Default)]
pub struct FairShareAllocator;

impl FairShareAllocator {
    /// Creates the allocator.
    #[must_use]
    pub fn new() -> Self {
        FairShareAllocator
    }
}

impl PowerAllocator for FairShareAllocator {
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        _model: &PowerModel,
    ) -> Vec<PowerGrant> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| requests[a].milliwatts.total_cmp(&requests[b].milliwatts));
        let mut grants: Vec<PowerGrant> = requests
            .iter()
            .map(|r| PowerGrant::new(r.core, 0.0))
            .collect();
        let mut remaining = budget_mw.max(0.0);
        let mut left = requests.len();
        for idx in order {
            let fair = remaining / left as f64;
            let give = requests[idx].milliwatts.max(0.0).min(fair);
            grants[idx].milliwatts = give;
            remaining -= give;
            left -= 1;
        }
        enforce_contract(&mut grants, requests, budget_mw);
        grants
    }

    fn name(&self) -> &'static str {
        "fair-share"
    }
}

/// PI-controlled allocator (the PGCapping \[12\] family): a proportional–
/// integral controller tracks a global throttle factor `u ∈ (0, 1]` that
/// scales every request so the aggregate converges onto the budget, instead
/// of recomputing an exact division every epoch.
#[derive(Debug, Clone)]
pub struct PiAllocator {
    kp: f64,
    ki: f64,
    throttle: f64,
    integral: f64,
}

impl Default for PiAllocator {
    fn default() -> Self {
        PiAllocator::new(0.6, 0.2)
    }
}

impl PiAllocator {
    /// Creates a controller with the given proportional and integral gains
    /// (both relative to the budget magnitude).
    #[must_use]
    pub fn new(kp: f64, ki: f64) -> Self {
        PiAllocator {
            kp,
            ki,
            throttle: 1.0,
            integral: 0.0,
        }
    }

    /// The current throttle factor (diagnostics).
    #[must_use]
    pub fn throttle(&self) -> f64 {
        self.throttle
    }
}

impl PowerAllocator for PiAllocator {
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        _model: &PowerModel,
    ) -> Vec<PowerGrant> {
        let demand: f64 = requests.iter().map(|r| r.milliwatts.max(0.0)).sum();
        if demand > 0.0 && budget_mw > 0.0 {
            // Error: how far the throttled demand is from the budget,
            // normalised to the budget.
            let error = (budget_mw - demand * self.throttle) / budget_mw;
            self.integral = (self.integral + error).clamp(-5.0, 5.0);
            self.throttle =
                (self.throttle + self.kp * error + self.ki * self.integral).clamp(0.01, 1.0);
        }
        let mut grants: Vec<PowerGrant> = requests
            .iter()
            .map(|r| PowerGrant::new(r.core, r.milliwatts.max(0.0) * self.throttle))
            .collect();
        enforce_contract(&mut grants, requests, budget_mw);
        grants
    }

    fn name(&self) -> &'static str {
        "pi-control"
    }

    fn reset(&mut self) {
        self.throttle = 1.0;
        self.integral = 0.0;
    }
}

/// Dynamic-programming optimal allocator (the fine-grained runtime budgeting
/// \[9\] family): picks one DVFS operating point per requester to maximise a
/// concave aggregate utility `Σ √(granted)` under the budget, via a
/// multiple-choice knapsack over discretised budget bins.
///
/// The concave utility makes the optimum spread power across cores
/// (diminishing returns), which is the qualitative behaviour of
/// performance-optimal budgeting.
#[derive(Debug, Clone)]
pub struct DpAllocator {
    bins: usize,
}

impl Default for DpAllocator {
    fn default() -> Self {
        DpAllocator::new(256)
    }
}

impl DpAllocator {
    /// Creates an allocator that discretises the budget into `bins` bins
    /// (at least 8).
    #[must_use]
    pub fn new(bins: usize) -> Self {
        DpAllocator { bins: bins.max(8) }
    }
}

impl PowerAllocator for DpAllocator {
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        model: &PowerModel,
    ) -> Vec<PowerGrant> {
        let mut grants: Vec<PowerGrant> = requests
            .iter()
            .map(|r| PowerGrant::new(r.core, 0.0))
            .collect();
        if requests.is_empty() || budget_mw <= 0.0 {
            return grants;
        }
        let bin_mw = budget_mw / self.bins as f64;
        // Candidate operating points per request: every DVFS level whose
        // power fits the request, expressed in whole bins.
        let options: Vec<Vec<(usize, f64)>> = requests
            .iter()
            .map(|r| {
                let mut opts = vec![(0usize, 0.0f64)]; // power-gated: zero grant
                for level in model.table().iter_levels() {
                    let p = model.power_mw(level);
                    if p <= r.milliwatts {
                        let w = (p / bin_mw).ceil() as usize;
                        if w <= self.bins {
                            opts.push((w, p.sqrt()));
                        }
                    }
                }
                opts
            })
            .collect();
        // dp[j] = best value using at most j bins; choice[i][j] = option index.
        let neg = f64::NEG_INFINITY;
        let mut dp = vec![0.0f64; self.bins + 1];
        let mut choice = vec![vec![0usize; self.bins + 1]; requests.len()];
        for (i, opts) in options.iter().enumerate() {
            let mut next = vec![neg; self.bins + 1];
            for j in 0..=self.bins {
                for (oi, &(w, v)) in opts.iter().enumerate() {
                    if w <= j {
                        let cand = dp[j - w] + v;
                        if cand > next[j] {
                            next[j] = cand;
                            choice[i][j] = oi;
                        }
                    }
                }
            }
            dp = next;
        }
        // Backtrack from the best bin count.
        let mut j = (0..=self.bins)
            .max_by(|&a, &b| dp[a].total_cmp(&dp[b]))
            .unwrap_or(self.bins);
        for i in (0..requests.len()).rev() {
            let oi = choice[i][j];
            let (w, _) = options[i][oi];
            if w > 0 {
                // Grant the exact power of the chosen operating point.
                let level_power = options[i][oi].1.powi(2);
                grants[i].milliwatts = level_power;
            }
            j -= w;
        }
        enforce_contract(&mut grants, requests, budget_mw);
        grants
    }

    fn name(&self) -> &'static str {
        "dp-optimal"
    }
}

/// Market-based allocator (the ReBudget \[6\] family): each core holds a
/// currency balance; a request is a bid, power is divided
/// proportionally to `balance-weighted` bids, and cores that received less
/// than they bid are rebated currency, raising their weight in future
/// epochs. Over time the market self-corrects chronic under-allocation —
/// unless, of course, a Trojan keeps shrinking a victim's bids, in which
/// case the victim's *budget currency piles up uselessly while its power
/// grant stays capped by the tampered bid* — exactly the
/// "irrespective of the algorithm" property the paper exploits.
#[derive(Debug, Clone)]
pub struct MarketAllocator {
    /// Per-core currency balance (defaults to 1.0 for new bidders),
    /// sorted by core id so lookups bisect and iteration is deterministic.
    balances: Vec<(u16, f64)>,
    /// Rebate rate for unmet demand, per epoch.
    rebate: f64,
}

impl Default for MarketAllocator {
    fn default() -> Self {
        MarketAllocator::new(0.1)
    }
}

impl MarketAllocator {
    /// Creates a market with the given rebate rate.
    #[must_use]
    pub fn new(rebate: f64) -> Self {
        MarketAllocator {
            balances: Vec::new(),
            rebate: rebate.clamp(0.0, 1.0),
        }
    }

    /// A core's current currency balance (diagnostics).
    #[must_use]
    pub fn balance(&self, core: u16) -> f64 {
        match self.balances.binary_search_by_key(&core, |&(c, _)| c) {
            Ok(i) => self.balances[i].1,
            Err(_) => 1.0,
        }
    }

    /// Mutable balance for `core`, inserting the neutral 1.0 at its sorted
    /// position for first-time bidders.
    fn balance_mut(&mut self, core: u16) -> &mut f64 {
        let i = match self.balances.binary_search_by_key(&core, |&(c, _)| c) {
            Ok(i) => i,
            Err(i) => {
                self.balances.insert(i, (core, 1.0));
                i
            }
        };
        &mut self.balances[i].1
    }
}

impl PowerAllocator for MarketAllocator {
    fn allocate(
        &mut self,
        requests: &[PowerRequest],
        budget_mw: f64,
        _model: &PowerModel,
    ) -> Vec<PowerGrant> {
        // Weighted water-filling: power is divided proportionally to
        // currency balances, bids act as caps, and surplus from capped
        // bidders is re-divided among the still-unmet ones.
        let mut grants: Vec<PowerGrant> = requests
            .iter()
            .map(|r| PowerGrant::new(r.core, 0.0))
            .collect();
        let mut remaining = budget_mw.max(0.0);
        let mut active: Vec<usize> = (0..requests.len())
            .filter(|&i| requests[i].milliwatts > 0.0)
            .collect();
        for _round in 0..16 {
            if active.is_empty() || remaining <= 1e-9 {
                break;
            }
            let total_weight: f64 = active.iter().map(|&i| self.balance(requests[i].core)).sum();
            if total_weight <= 0.0 {
                break;
            }
            let pool = remaining;
            for &i in &active {
                let offer = pool * self.balance(requests[i].core) / total_weight;
                let want = requests[i].milliwatts - grants[i].milliwatts;
                let take = offer.min(want);
                grants[i].milliwatts += take;
                remaining -= take;
            }
            active.retain(|&i| requests[i].milliwatts - grants[i].milliwatts > 1e-9);
        }
        enforce_contract(&mut grants, requests, budget_mw);
        // Rebate unmet demand into balances; satisfied bidders decay back
        // towards the neutral balance of 1.0.
        let rebate = self.rebate;
        for (g, r) in grants.iter().zip(requests) {
            let bid = if r.milliwatts.is_nan() {
                0.0
            } else {
                r.milliwatts.max(0.0)
            };
            let balance = self.balance_mut(r.core);
            if bid > 0.0 && g.milliwatts < bid {
                // An infinite bid is fully unmet by definition; dividing by
                // it would make the unmet fraction `∞/∞ = NaN` and poison
                // the balance for every future epoch.
                let unmet = if bid.is_finite() {
                    (bid - g.milliwatts) / bid
                } else {
                    1.0
                };
                *balance += rebate * unmet;
            } else {
                *balance = 1.0 + (*balance - 1.0) * 0.5;
            }
            *balance = balance.clamp(0.25, 8.0);
        }
        grants
    }

    fn name(&self) -> &'static str {
        "market"
    }

    fn reset(&mut self) {
        self.balances.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::default_45nm()
    }

    fn reqs(vals: &[f64]) -> Vec<PowerRequest> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| PowerRequest::new(i as u16, v))
            .collect()
    }

    fn all_allocators() -> Vec<Box<dyn PowerAllocator>> {
        AllocatorKind::ALL.iter().map(|k| k.build()).collect()
    }

    #[test]
    fn contract_holds_for_all_allocators() {
        let m = model();
        let requests = reqs(&[2_500.0, 100.0, 1_800.0, 900.0, 2_500.0]);
        for mut a in all_allocators() {
            for budget in [0.0, 500.0, 3_000.0, 10_000.0] {
                let grants = a.allocate(&requests, budget, &m);
                assert_eq!(grants.len(), requests.len(), "{}", a.name());
                let total: f64 = grants.iter().map(|g| g.milliwatts).sum();
                assert!(
                    total <= budget + 1e-6,
                    "{} exceeded budget: {total} > {budget}",
                    a.name()
                );
                for (g, r) in grants.iter().zip(&requests) {
                    assert_eq!(g.core, r.core, "{}", a.name());
                    assert!(g.milliwatts >= 0.0, "{}", a.name());
                    assert!(
                        g.milliwatts <= r.milliwatts + 1e-9,
                        "{} granted more than requested",
                        a.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ample_budget_fully_satisfies_everyone() {
        let m = model();
        let requests = reqs(&[1_000.0, 2_000.0, 500.0]);
        for mut a in all_allocators() {
            let grants = a.allocate(&requests, 1e6, &m);
            let total: f64 = grants.iter().map(|g| g.milliwatts).sum();
            let asked: f64 = requests.iter().map(|r| r.milliwatts).sum();
            // DP grants quantised level powers, so allow a tolerance.
            assert!(
                total >= asked * 0.75,
                "{} under-served with ample budget: {total} vs {asked}",
                a.name()
            );
        }
    }

    #[test]
    fn greedy_serves_largest_first() {
        let m = model();
        let requests = reqs(&[500.0, 3_000.0, 1_000.0]);
        let grants = GreedyAllocator::new().allocate(&requests, 3_200.0, &m);
        assert!((grants[1].milliwatts - 3_000.0).abs() < 1e-9);
        assert!((grants[2].milliwatts - 200.0).abs() < 1e-9);
        assert!(grants[0].milliwatts < 1e-9);
    }

    #[test]
    fn fair_share_serves_smallest_fully() {
        let m = model();
        let requests = reqs(&[100.0, 5_000.0, 5_000.0]);
        let grants = FairShareAllocator::new().allocate(&requests, 3_100.0, &m);
        assert!((grants[0].milliwatts - 100.0).abs() < 1e-9);
        assert!((grants[1].milliwatts - 1_500.0).abs() < 1e-9);
        assert!((grants[2].milliwatts - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn pi_converges_towards_budget() {
        let m = model();
        let requests = reqs(&[2_000.0; 10]);
        let mut pi = PiAllocator::default();
        let mut total = 0.0;
        for _ in 0..50 {
            let grants = pi.allocate(&requests, 8_000.0, &m);
            total = grants.iter().map(|g| g.milliwatts).sum();
        }
        assert!(
            (total - 8_000.0).abs() / 8_000.0 < 0.05,
            "PI did not converge: {total}"
        );
    }

    #[test]
    fn pi_reset_restores_full_throttle() {
        let m = model();
        let requests = reqs(&[5_000.0; 8]);
        let mut pi = PiAllocator::default();
        for _ in 0..20 {
            pi.allocate(&requests, 1_000.0, &m);
        }
        assert!(pi.throttle() < 0.9);
        pi.reset();
        assert!((pi.throttle() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dp_grants_are_operating_points_or_zero() {
        let m = model();
        let requests = reqs(&[2_600.0, 2_600.0, 2_600.0, 400.0]);
        let grants = DpAllocator::default().allocate(&requests, 4_000.0, &m);
        let level_powers: Vec<f64> = m.table().iter_levels().map(|l| m.power_mw(l)).collect();
        for g in &grants {
            let is_point = g.milliwatts.abs() < 1e-9
                || level_powers.iter().any(|p| (p - g.milliwatts).abs() < 1.0);
            assert!(is_point, "grant {} is not an operating point", g.milliwatts);
        }
        let total: f64 = grants.iter().map(|g| g.milliwatts).sum();
        assert!(total <= 4_000.0 + 1e-6);
        assert!(total > 1_000.0, "DP left the budget unused: {total}");
    }

    #[test]
    fn dp_prefers_spreading_over_concentration() {
        let m = model();
        // Budget for roughly two mid-level cores; concave utility should
        // power at least two requesters rather than one at max.
        let requests = reqs(&[2_600.0, 2_600.0, 2_600.0]);
        let grants = DpAllocator::default().allocate(&requests, 2_400.0, &m);
        let powered = grants.iter().filter(|g| g.milliwatts > 1.0).count();
        assert!(powered >= 2, "DP concentrated power: {grants:?}");
    }

    #[test]
    fn market_rebates_unmet_bidders() {
        let m = model();
        let mut market = MarketAllocator::default();
        // Equal balances split 2000 mW evenly: core 0's 1000 mW bid is
        // fully met, core 1 is left 3000 mW short and accumulates currency,
        // growing its share in later epochs.
        let requests = reqs(&[1_000.0, 4_000.0]);
        let first = market.allocate(&requests, 2_000.0, &m)[1].milliwatts;
        assert!((first - 1_000.0).abs() < 1e-6, "first split: {first}");
        for _ in 0..10 {
            market.allocate(&requests, 2_000.0, &m);
        }
        assert!(market.balance(1) > 1.0, "balance {}", market.balance(1));
        let later = market.allocate(&requests, 2_000.0, &m)[1].milliwatts;
        assert!(
            later > first * 1.1,
            "rebates should raise the unmet bidder's share: {first} -> {later}"
        );
    }

    #[test]
    fn market_water_fills_caps_and_redistributes() {
        let m = model();
        let mut market = MarketAllocator::default();
        // Three equal balances over 3000 mW: the 200 mW bid is capped and
        // its surplus flows to the two big bidders.
        let grants = market.allocate(&reqs(&[200.0, 4_000.0, 4_000.0]), 3_000.0, &m);
        assert!((grants[0].milliwatts - 200.0).abs() < 1e-6);
        assert!((grants[1].milliwatts - 1_400.0).abs() < 1.0);
        assert!((grants[2].milliwatts - 1_400.0).abs() < 1.0);
    }

    #[test]
    fn market_reset_clears_balances() {
        let m = model();
        let mut market = MarketAllocator::default();
        market.allocate(&reqs(&[1_000.0, 4_000.0]), 1_000.0, &m);
        market.reset();
        assert_eq!(market.balance(0), 1.0);
    }

    #[test]
    fn zeroed_request_gets_nothing_from_every_allocator() {
        // The attack's key invariant: a request tampered to 0 mW yields a
        // 0 mW grant no matter the policy.
        let m = model();
        let requests = reqs(&[0.0, 2_000.0, 2_000.0]);
        for mut a in all_allocators() {
            let grants = a.allocate(&requests, 3_000.0, &m);
            assert!(
                grants[0].milliwatts < 1e-9,
                "{} granted power to a zeroed request",
                a.name()
            );
        }
    }

    #[test]
    fn empty_request_set_is_fine() {
        let m = model();
        for mut a in all_allocators() {
            assert!(a.allocate(&[], 1_000.0, &m).is_empty());
        }
    }

    /// Asserts the full allocator contract on a hostile request mix: one
    /// grant per request, each finite, non-negative, within the (finite
    /// part of the) request, total within budget.
    fn assert_contract_on(
        a: &mut dyn PowerAllocator,
        requests: &[PowerRequest],
        budget: f64,
        m: &PowerModel,
    ) {
        let grants = a.allocate(requests, budget, m);
        assert_eq!(grants.len(), requests.len(), "{}", a.name());
        let mut total = 0.0;
        for (g, r) in grants.iter().zip(requests) {
            assert_eq!(g.core, r.core, "{}", a.name());
            assert!(
                g.milliwatts.is_finite(),
                "{} produced a non-finite grant {} for request {}",
                a.name(),
                g.milliwatts,
                r.milliwatts
            );
            assert!(g.milliwatts >= 0.0, "{} negative grant", a.name());
            if r.milliwatts.is_finite() {
                assert!(
                    g.milliwatts <= r.milliwatts.max(0.0) + 1e-9,
                    "{} granted {} over request {}",
                    a.name(),
                    g.milliwatts,
                    r.milliwatts
                );
            }
            total += g.milliwatts;
        }
        assert!(
            total <= budget + 1e-6,
            "{} exceeded budget: {total} > {budget}",
            a.name()
        );
    }

    #[test]
    fn nan_request_poisons_nothing() {
        let m = model();
        let requests = reqs(&[f64::NAN, 1_000.0, 2_000.0]);
        for mut a in all_allocators() {
            assert_contract_on(a.as_mut(), &requests, 2_000.0, &m);
            let grants = a.allocate(&requests, 2_000.0, &m);
            assert!(
                grants[0].milliwatts < 1e-9,
                "{} granted power to a NaN request",
                a.name()
            );
            // The honest requesters still share the budget.
            let honest: f64 = grants[1].milliwatts + grants[2].milliwatts;
            assert!(
                honest > 1_000.0,
                "{} starved honest cores: {honest}",
                a.name()
            );
        }
    }

    #[test]
    fn negative_request_poisons_nothing() {
        let m = model();
        let requests = reqs(&[-500.0, f64::NEG_INFINITY, 1_500.0]);
        for mut a in all_allocators() {
            assert_contract_on(a.as_mut(), &requests, 2_000.0, &m);
            let grants = a.allocate(&requests, 2_000.0, &m);
            assert!(grants[0].milliwatts < 1e-9, "{}", a.name());
            assert!(grants[1].milliwatts < 1e-9, "{}", a.name());
            // DP quantises grants to DVFS operating points, so only require
            // the honest core to get the bulk of its request.
            assert!(
                grants[2].milliwatts > 1_000.0,
                "{} mis-served the honest core: {}",
                a.name(),
                grants[2].milliwatts
            );
        }
    }

    #[test]
    fn infinite_request_poisons_nothing() {
        // The historical failure mode: an ∞ request drove `total` to ∞ in
        // enforce_contract, whose rescale then multiplied every other grant
        // by `budget/∞ = 0` — or worse, `∞ × 0 = NaN` for the ∞ grant.
        let m = model();
        let requests = reqs(&[f64::INFINITY, 1_000.0, 1_000.0]);
        for mut a in all_allocators() {
            assert_contract_on(a.as_mut(), &requests, 2_500.0, &m);
        }
    }

    #[test]
    fn hostile_mix_respects_contract_at_every_budget() {
        let m = model();
        let requests = reqs(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            0.0,
            1_800.0,
        ]);
        for mut a in all_allocators() {
            for budget in [0.0, 1.0, 900.0, 1e9] {
                assert_contract_on(a.as_mut(), &requests, budget, &m);
            }
        }
    }

    #[test]
    fn market_balances_survive_infinite_bids() {
        let m = model();
        let mut market = MarketAllocator::default();
        let requests = reqs(&[f64::INFINITY, 1_000.0]);
        for _ in 0..10 {
            market.allocate(&requests, 1_500.0, &m);
        }
        for core in [0u16, 1] {
            let balance = market.balance(core);
            assert!(
                balance.is_finite() && (0.25..=8.0).contains(&balance),
                "balance for core {core} poisoned: {balance}"
            );
        }
        // The market must still function for honest bidders afterwards.
        let grants = market.allocate(&reqs(&[500.0, 500.0]), 1_500.0, &m);
        assert!((grants[0].milliwatts - 500.0).abs() < 1e-6);
        assert!((grants[1].milliwatts - 500.0).abs() < 1e-6);
    }

    #[test]
    fn pi_controller_state_survives_hostile_epochs() {
        let m = model();
        let mut pi = PiAllocator::default();
        for _ in 0..5 {
            pi.allocate(&reqs(&[f64::INFINITY, f64::NAN]), 1_000.0, &m);
        }
        assert!(pi.throttle().is_finite());
        // After the hostile episode the controller still converges.
        let requests = reqs(&[2_000.0; 10]);
        let mut total = 0.0;
        for _ in 0..50 {
            let grants = pi.allocate(&requests, 8_000.0, &m);
            total = grants.iter().map(|g| g.milliwatts).sum();
        }
        assert!(
            (total - 8_000.0).abs() / 8_000.0 < 0.05,
            "PI did not recover from hostile inputs: {total}"
        );
    }
}
