use std::collections::BTreeMap;

use crate::alloc::PowerAllocator;
use crate::model::PowerModel;
use crate::request::{PowerGrant, PowerRequest};

/// Graceful-degradation policy for a hardened manager (an extension beyond
/// the paper, which assumes a perfectly reliable request channel).
///
/// With hardening enabled the manager stops trusting the transport:
///
/// * **Request timeout → hold-last-grant.** A core that requested before
///   but is silent this epoch (its `POWER_REQ` was lost, stalled or
///   dropped) is treated as still wanting its last grant, for up to
///   [`hold_epochs`](HardeningConfig::hold_epochs) consecutive misses.
/// * **Bounded staleness → decay to a floor.** Past the hold window the
///   synthesized value decays geometrically toward
///   [`floor_mw`](HardeningConfig::floor_mw), so a dead tile cannot pin
///   budget forever on a stale grant.
/// * **Plausibility clamp.** Incoming requests are clamped into the power
///   model's [`request_envelope`](crate::PowerModel::request_envelope);
///   corrupted or hostile values cannot poison the allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardeningConfig {
    /// Consecutive missed epochs during which the last grant is held as-is.
    pub hold_epochs: u32,
    /// Geometric decay factor (per epoch past the hold window) applied to
    /// the held value's distance from the floor. Clamped to `[0, 1]`.
    pub decay: f64,
    /// The value (mW) a stale hold decays toward.
    pub floor_mw: f64,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig {
            hold_epochs: 2,
            decay: 0.5,
            floor_mw: 0.0,
        }
    }
}

/// Running tallies of degradation events in a hardened manager. All counters
/// are cumulative since construction or [`GlobalManager::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationCounters {
    /// Epochs in which a previously-seen core submitted no request and a
    /// hold/decay value was synthesized for it.
    pub timeouts: u64,
    /// Requests rejected upstream (e.g. checksum mismatch) and reported via
    /// [`GlobalManager::note_rejected_request`].
    pub rejects: u64,
    /// Requests pulled into the power model's plausibility envelope.
    pub clamps: u64,
}

impl DegradationCounters {
    /// Sum of all degradation events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.timeouts + self.rejects + self.clamps
    }
}

/// Last-grant state retained per core for the timeout hold.
#[derive(Debug, Clone, Copy)]
struct HeldGrant {
    /// The value a synthesized request would carry, in mW.
    mw: f64,
    /// Consecutive epochs the core has been silent.
    missed: u32,
}

/// Aggregate outcome of one budgeting epoch (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSummary {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Number of distinct requesting cores.
    pub requesters: usize,
    /// Sum of (possibly tampered) requests the manager saw, in mW.
    pub total_requested_mw: f64,
    /// Sum of issued grants, in mW.
    pub total_granted_mw: f64,
}

/// The global manager core: collects `POWER_REQ` values and divides the
/// chip's power budget among requesters once per budgeting epoch
/// (Section II-A of the paper).
///
/// The manager is transport-agnostic: the many-core system layer feeds it
/// the payloads of delivered `POWER_REQ` packets via [`GlobalManager::submit`]
/// and ships the returned grants back as `POWER_GRANT` packets. The manager
/// trusts every value it receives — it has no mechanism to detect that a
/// request was modified in flight, which is the vulnerability under study.
pub struct GlobalManager {
    budget_mw: f64,
    allocator: Box<dyn PowerAllocator>,
    pending: Vec<PowerRequest>,
    epoch: u64,
    last_summary: Option<EpochSummary>,
    history: Vec<EpochSummary>,
    hardening: Option<HardeningConfig>,
    degradation: DegradationCounters,
    held: BTreeMap<u16, HeldGrant>,
}

/// Epoch summaries retained by [`GlobalManager::history`].
const HISTORY_CAPACITY: usize = 1024;

impl GlobalManager {
    /// Creates a manager with a chip-level budget (mW) and a policy.
    #[must_use]
    pub fn new(budget_mw: f64, allocator: Box<dyn PowerAllocator>) -> Self {
        GlobalManager {
            budget_mw: budget_mw.max(0.0),
            allocator,
            pending: Vec::new(),
            epoch: 0,
            last_summary: None,
            history: Vec::new(),
            hardening: None,
            degradation: DegradationCounters::default(),
            held: BTreeMap::new(),
        }
    }

    /// Builder form of [`GlobalManager::set_hardening`].
    #[must_use]
    pub fn with_hardening(mut self, cfg: HardeningConfig) -> Self {
        self.set_hardening(Some(cfg));
        self
    }

    /// Enables or disables graceful-degradation hardening. Disabling also
    /// drops the per-core hold state (counters are kept for post-mortems).
    pub fn set_hardening(&mut self, cfg: Option<HardeningConfig>) {
        self.hardening = cfg;
        if self.hardening.is_none() {
            self.held.clear();
        }
    }

    /// The active hardening policy, if any.
    #[must_use]
    pub fn hardening(&self) -> Option<HardeningConfig> {
        self.hardening
    }

    /// Degradation event tallies (cumulative since construction or reset).
    #[must_use]
    pub fn degradation(&self) -> DegradationCounters {
        self.degradation
    }

    /// Records that a request was rejected before submission (e.g. a
    /// `POWER_REQ` whose checksum failed verification at the transport
    /// layer). The manager only tallies it; the caller decides what value,
    /// if any, to submit in its place.
    pub fn note_rejected_request(&mut self) {
        self.degradation.rejects += 1;
    }

    /// The chip-level budget in mW.
    #[must_use]
    pub fn budget_mw(&self) -> f64 {
        self.budget_mw
    }

    /// Name of the active allocation policy.
    #[must_use]
    pub fn allocator_name(&self) -> &'static str {
        self.allocator.name()
    }

    /// Records a request received this epoch. A second request from the same
    /// core within one epoch supersedes the first.
    pub fn submit(&mut self, request: PowerRequest) {
        if let Some(existing) = self.pending.iter_mut().find(|r| r.core == request.core) {
            *existing = request;
        } else {
            self.pending.push(request);
        }
    }

    /// Number of requests waiting for the next epoch.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Clamps pending requests into the model's plausibility envelope and
    /// synthesizes hold/decay requests for previously-seen cores that went
    /// silent this epoch. Returns the cores that genuinely requested.
    fn apply_hardening(&mut self, cfg: HardeningConfig, model: &PowerModel) -> Vec<u16> {
        let envelope = model.request_envelope();
        for r in &mut self.pending {
            if !envelope.contains(r.milliwatts) {
                r.milliwatts = envelope.clamp(r.milliwatts);
                self.degradation.clamps += 1;
            }
        }
        let present: Vec<u16> = self.pending.iter().map(|r| r.core).collect();
        let decay = cfg.decay.clamp(0.0, 1.0);
        let floor = envelope.clamp(cfg.floor_mw);
        for (&core, held) in &mut self.held {
            if present.contains(&core) {
                held.missed = 0;
                continue;
            }
            held.missed += 1;
            self.degradation.timeouts += 1;
            if held.missed > cfg.hold_epochs {
                held.mw = floor + (held.mw - floor) * decay;
                if held.mw < floor {
                    held.mw = floor;
                }
            }
            self.pending.push(PowerRequest::new(core, held.mw));
        }
        present
    }

    /// Closes the epoch: runs the allocator over all pending requests and
    /// returns the grants (sorted by core id). Pending state is cleared.
    ///
    /// With hardening enabled (see [`HardeningConfig`]), pending requests
    /// are first clamped into the model's plausibility envelope and silent
    /// cores receive synthesized hold/decay requests — so the returned
    /// grants (and the epoch summary's `requesters` count) can cover cores
    /// that sent nothing this epoch.
    pub fn run_epoch(&mut self, model: &PowerModel) -> Vec<PowerGrant> {
        let genuine = self.hardening.map(|cfg| self.apply_hardening(cfg, model));
        self.pending.sort_by_key(|r| r.core);
        let mut grants = self
            .allocator
            .allocate(&self.pending, self.budget_mw, model);
        grants.sort_by_key(|g| g.core);
        #[cfg(debug_assertions)]
        if let Some(violation) =
            crate::alloc::audit_grant_contract(&grants, &self.pending, self.budget_mw)
        {
            panic!(
                "allocator {} violated the budget contract at epoch {}: {violation}",
                self.allocator.name(),
                self.epoch
            );
        }
        let summary = EpochSummary {
            epoch: self.epoch,
            requesters: self.pending.len(),
            total_requested_mw: self.pending.iter().map(|r| r.milliwatts.max(0.0)).sum(),
            total_granted_mw: grants.iter().map(|g| g.milliwatts).sum(),
        };
        self.last_summary = Some(summary);
        if self.history.len() == HISTORY_CAPACITY {
            self.history.remove(0);
        }
        self.history.push(summary);
        self.epoch += 1;
        self.pending.clear();
        if let Some(genuine) = genuine {
            // Only cores that actually got a request through refresh their
            // hold; timed-out cores keep the (possibly decayed) held value.
            for g in &grants {
                if genuine.contains(&g.core) {
                    self.held.insert(
                        g.core,
                        HeldGrant {
                            mw: g.milliwatts,
                            missed: 0,
                        },
                    );
                }
            }
        }
        grants
    }

    /// Summaries of the most recent epochs (up to 1024), oldest first —
    /// the time series behind demand/grant trend plots and the anomaly
    /// detector's training data.
    #[must_use]
    pub fn history(&self) -> &[EpochSummary] {
        &self.history
    }

    /// Summary of the most recent epoch, if any ran.
    #[must_use]
    pub fn last_summary(&self) -> Option<EpochSummary> {
        self.last_summary
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Resets allocator controller state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.allocator.reset();
        self.pending.clear();
        self.epoch = 0;
        self.last_summary = None;
        self.history.clear();
        self.degradation = DegradationCounters::default();
        self.held.clear();
    }
}

impl std::fmt::Debug for GlobalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalManager")
            .field("budget_mw", &self.budget_mw)
            .field("allocator", &self.allocator.name())
            .field("pending", &self.pending.len())
            .field("epoch", &self.epoch)
            .field("hardened", &self.hardening.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{FairShareAllocator, GreedyAllocator};

    #[test]
    fn epoch_clears_pending_and_counts() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(4_000.0, Box::new(FairShareAllocator::new()));
        gm.submit(PowerRequest::new(0, 1_000.0));
        gm.submit(PowerRequest::new(1, 2_000.0));
        assert_eq!(gm.pending_requests(), 2);
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 2);
        assert_eq!(gm.pending_requests(), 0);
        assert_eq!(gm.epochs_run(), 1);
        let s = gm.last_summary().unwrap();
        assert_eq!(s.requesters, 2);
        assert!((s.total_requested_mw - 3_000.0).abs() < 1e-9);
        assert!(s.total_granted_mw <= 4_000.0 + 1e-9);
    }

    #[test]
    fn duplicate_submission_supersedes() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()));
        gm.submit(PowerRequest::new(5, 3_000.0));
        gm.submit(PowerRequest::new(5, 100.0));
        assert_eq!(gm.pending_requests(), 1);
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 1);
        assert!((grants[0].milliwatts - 100.0).abs() < 1e-9);
    }

    #[test]
    fn grants_sorted_by_core() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()));
        for core in [9u16, 2, 7, 0] {
            gm.submit(PowerRequest::new(core, 500.0));
        }
        let grants = gm.run_epoch(&model);
        let cores: Vec<u16> = grants.iter().map(|g| g.core).collect();
        assert_eq!(cores, vec![0, 2, 7, 9]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(1_000.0, Box::new(GreedyAllocator::new()));
        gm.submit(PowerRequest::new(0, 1.0));
        gm.run_epoch(&model);
        gm.submit(PowerRequest::new(1, 1.0));
        gm.reset();
        assert_eq!(gm.pending_requests(), 0);
        assert_eq!(gm.epochs_run(), 0);
        assert!(gm.last_summary().is_none());
    }

    #[test]
    fn history_accumulates_and_is_bounded_logically() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(2_000.0, Box::new(GreedyAllocator::new()));
        for i in 0..5 {
            gm.submit(PowerRequest::new(0, 100.0 * f64::from(i)));
            gm.run_epoch(&model);
        }
        let h = gm.history();
        assert_eq!(h.len(), 5);
        assert_eq!(h[0].epoch, 0);
        assert_eq!(h[4].epoch, 4);
        assert!((h[3].total_requested_mw - 300.0).abs() < 1e-9);
        gm.reset();
        assert!(gm.history().is_empty());
    }

    #[test]
    fn unhardened_manager_ignores_silent_cores() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()));
        gm.submit(PowerRequest::new(0, 1_000.0));
        gm.submit(PowerRequest::new(1, 1_000.0));
        gm.run_epoch(&model);
        gm.submit(PowerRequest::new(1, 1_000.0));
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].core, 1);
        assert_eq!(gm.degradation(), DegradationCounters::default());
    }

    #[test]
    fn timeout_holds_last_grant() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()))
            .with_hardening(HardeningConfig::default());
        gm.submit(PowerRequest::new(0, 1_500.0));
        gm.submit(PowerRequest::new(1, 1_500.0));
        let first = gm.run_epoch(&model);
        let core0_grant = first[0].milliwatts;
        assert!(core0_grant > 0.0);

        // Core 0's request is lost this epoch; the manager synthesizes it.
        gm.submit(PowerRequest::new(1, 1_500.0));
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].core, 0);
        assert!((grants[0].milliwatts - core0_grant).abs() < 1e-9);
        assert_eq!(gm.degradation().timeouts, 1);
        assert_eq!(gm.last_summary().unwrap().requesters, 2);
    }

    #[test]
    fn stale_hold_decays_to_floor() {
        let model = PowerModel::default_45nm();
        let cfg = HardeningConfig {
            hold_epochs: 1,
            decay: 0.5,
            floor_mw: 100.0,
        };
        let mut gm =
            GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new())).with_hardening(cfg);
        gm.submit(PowerRequest::new(0, 1_600.0));
        let held = gm.run_epoch(&model)[0].milliwatts;

        let mut last = held;
        for epoch in 0..20 {
            let grants = gm.run_epoch(&model);
            assert_eq!(grants.len(), 1, "silent core still served");
            let g = grants[0].milliwatts;
            if epoch == 0 {
                // Within the hold window: value unchanged.
                assert!((g - held).abs() < 1e-9);
            } else {
                assert!(g <= last + 1e-9, "decay must be monotone");
            }
            last = g;
        }
        // Geometric decay toward the floor converges.
        assert!((last - cfg.floor_mw).abs() < 1.0, "grant {last} != floor");
        assert_eq!(gm.degradation().timeouts, 20);
    }

    #[test]
    fn reappearing_core_resets_the_hold() {
        let model = PowerModel::default_45nm();
        let cfg = HardeningConfig {
            hold_epochs: 0,
            decay: 0.0,
            floor_mw: 0.0,
        };
        let mut gm =
            GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new())).with_hardening(cfg);
        gm.submit(PowerRequest::new(0, 1_600.0));
        gm.run_epoch(&model);
        // Instantly decayed to the floor while silent.
        assert!(gm.run_epoch(&model)[0].milliwatts.abs() < 1e-9);
        // The core comes back; its hold refreshes from the new grant.
        gm.submit(PowerRequest::new(0, 1_600.0));
        let g = gm.run_epoch(&model)[0].milliwatts;
        assert!(g > 1_000.0);
        assert!((gm.run_epoch(&model)[0].milliwatts).abs() < 1e-9);
    }

    #[test]
    fn implausible_requests_are_clamped() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(100_000.0, Box::new(GreedyAllocator::new()))
            .with_hardening(HardeningConfig::default());
        gm.submit(PowerRequest::new(0, f64::NAN));
        gm.submit(PowerRequest::new(1, f64::INFINITY));
        gm.submit(PowerRequest::new(2, -50.0));
        gm.submit(PowerRequest::new(3, 1_000.0));
        let grants = gm.run_epoch(&model);
        assert_eq!(gm.degradation().clamps, 3);
        assert!(grants[0].milliwatts.abs() < 1e-9, "NaN earns nothing");
        assert!(
            grants[1].milliwatts <= model.peak_power_mw() + 1e-9,
            "infinite request capped at the envelope"
        );
        assert!(grants[2].milliwatts.abs() < 1e-9);
        assert!((grants[3].milliwatts - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_requests_are_tallied_and_reset_clears_state() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()))
            .with_hardening(HardeningConfig::default());
        gm.note_rejected_request();
        gm.note_rejected_request();
        assert_eq!(gm.degradation().rejects, 2);
        gm.submit(PowerRequest::new(0, 1_000.0));
        gm.run_epoch(&model);
        gm.reset();
        assert_eq!(gm.degradation(), DegradationCounters::default());
        // Hold state cleared too: silence after reset synthesizes nothing.
        let grants = gm.run_epoch(&model);
        assert!(grants.is_empty());
    }

    #[test]
    fn disabling_hardening_drops_hold_state() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()))
            .with_hardening(HardeningConfig::default());
        gm.submit(PowerRequest::new(0, 1_000.0));
        gm.run_epoch(&model);
        gm.set_hardening(None);
        assert!(gm.run_epoch(&model).is_empty());
        assert!(gm.hardening().is_none());
    }

    #[test]
    fn negative_budget_clamped_to_zero() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(-5.0, Box::new(GreedyAllocator::new()));
        assert_eq!(gm.budget_mw(), 0.0);
        gm.submit(PowerRequest::new(0, 100.0));
        let grants = gm.run_epoch(&model);
        assert!(grants[0].milliwatts.abs() < 1e-12);
    }
}
