use crate::alloc::PowerAllocator;
use crate::model::PowerModel;
use crate::request::{PowerGrant, PowerRequest};

/// Aggregate outcome of one budgeting epoch (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSummary {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Number of distinct requesting cores.
    pub requesters: usize,
    /// Sum of (possibly tampered) requests the manager saw, in mW.
    pub total_requested_mw: f64,
    /// Sum of issued grants, in mW.
    pub total_granted_mw: f64,
}

/// The global manager core: collects `POWER_REQ` values and divides the
/// chip's power budget among requesters once per budgeting epoch
/// (Section II-A of the paper).
///
/// The manager is transport-agnostic: the many-core system layer feeds it
/// the payloads of delivered `POWER_REQ` packets via [`GlobalManager::submit`]
/// and ships the returned grants back as `POWER_GRANT` packets. The manager
/// trusts every value it receives — it has no mechanism to detect that a
/// request was modified in flight, which is the vulnerability under study.
pub struct GlobalManager {
    budget_mw: f64,
    allocator: Box<dyn PowerAllocator>,
    pending: Vec<PowerRequest>,
    epoch: u64,
    last_summary: Option<EpochSummary>,
    history: Vec<EpochSummary>,
}

/// Epoch summaries retained by [`GlobalManager::history`].
const HISTORY_CAPACITY: usize = 1024;

impl GlobalManager {
    /// Creates a manager with a chip-level budget (mW) and a policy.
    #[must_use]
    pub fn new(budget_mw: f64, allocator: Box<dyn PowerAllocator>) -> Self {
        GlobalManager {
            budget_mw: budget_mw.max(0.0),
            allocator,
            pending: Vec::new(),
            epoch: 0,
            last_summary: None,
            history: Vec::new(),
        }
    }

    /// The chip-level budget in mW.
    #[must_use]
    pub fn budget_mw(&self) -> f64 {
        self.budget_mw
    }

    /// Name of the active allocation policy.
    #[must_use]
    pub fn allocator_name(&self) -> &'static str {
        self.allocator.name()
    }

    /// Records a request received this epoch. A second request from the same
    /// core within one epoch supersedes the first.
    pub fn submit(&mut self, request: PowerRequest) {
        if let Some(existing) = self.pending.iter_mut().find(|r| r.core == request.core) {
            *existing = request;
        } else {
            self.pending.push(request);
        }
    }

    /// Number of requests waiting for the next epoch.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Closes the epoch: runs the allocator over all pending requests and
    /// returns the grants (sorted by core id). Pending state is cleared.
    pub fn run_epoch(&mut self, model: &PowerModel) -> Vec<PowerGrant> {
        self.pending.sort_by_key(|r| r.core);
        let mut grants = self
            .allocator
            .allocate(&self.pending, self.budget_mw, model);
        grants.sort_by_key(|g| g.core);
        let summary = EpochSummary {
            epoch: self.epoch,
            requesters: self.pending.len(),
            total_requested_mw: self.pending.iter().map(|r| r.milliwatts.max(0.0)).sum(),
            total_granted_mw: grants.iter().map(|g| g.milliwatts).sum(),
        };
        self.last_summary = Some(summary);
        if self.history.len() == HISTORY_CAPACITY {
            self.history.remove(0);
        }
        self.history.push(summary);
        self.epoch += 1;
        self.pending.clear();
        grants
    }

    /// Summaries of the most recent epochs (up to 1024), oldest first —
    /// the time series behind demand/grant trend plots and the anomaly
    /// detector's training data.
    #[must_use]
    pub fn history(&self) -> &[EpochSummary] {
        &self.history
    }

    /// Summary of the most recent epoch, if any ran.
    #[must_use]
    pub fn last_summary(&self) -> Option<EpochSummary> {
        self.last_summary
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Resets allocator controller state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.allocator.reset();
        self.pending.clear();
        self.epoch = 0;
        self.last_summary = None;
        self.history.clear();
    }
}

impl std::fmt::Debug for GlobalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalManager")
            .field("budget_mw", &self.budget_mw)
            .field("allocator", &self.allocator.name())
            .field("pending", &self.pending.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{FairShareAllocator, GreedyAllocator};

    #[test]
    fn epoch_clears_pending_and_counts() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(4_000.0, Box::new(FairShareAllocator::new()));
        gm.submit(PowerRequest::new(0, 1_000.0));
        gm.submit(PowerRequest::new(1, 2_000.0));
        assert_eq!(gm.pending_requests(), 2);
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 2);
        assert_eq!(gm.pending_requests(), 0);
        assert_eq!(gm.epochs_run(), 1);
        let s = gm.last_summary().unwrap();
        assert_eq!(s.requesters, 2);
        assert!((s.total_requested_mw - 3_000.0).abs() < 1e-9);
        assert!(s.total_granted_mw <= 4_000.0 + 1e-9);
    }

    #[test]
    fn duplicate_submission_supersedes() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()));
        gm.submit(PowerRequest::new(5, 3_000.0));
        gm.submit(PowerRequest::new(5, 100.0));
        assert_eq!(gm.pending_requests(), 1);
        let grants = gm.run_epoch(&model);
        assert_eq!(grants.len(), 1);
        assert!((grants[0].milliwatts - 100.0).abs() < 1e-9);
    }

    #[test]
    fn grants_sorted_by_core() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(10_000.0, Box::new(GreedyAllocator::new()));
        for core in [9u16, 2, 7, 0] {
            gm.submit(PowerRequest::new(core, 500.0));
        }
        let grants = gm.run_epoch(&model);
        let cores: Vec<u16> = grants.iter().map(|g| g.core).collect();
        assert_eq!(cores, vec![0, 2, 7, 9]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(1_000.0, Box::new(GreedyAllocator::new()));
        gm.submit(PowerRequest::new(0, 1.0));
        gm.run_epoch(&model);
        gm.submit(PowerRequest::new(1, 1.0));
        gm.reset();
        assert_eq!(gm.pending_requests(), 0);
        assert_eq!(gm.epochs_run(), 0);
        assert!(gm.last_summary().is_none());
    }

    #[test]
    fn history_accumulates_and_is_bounded_logically() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(2_000.0, Box::new(GreedyAllocator::new()));
        for i in 0..5 {
            gm.submit(PowerRequest::new(0, 100.0 * f64::from(i)));
            gm.run_epoch(&model);
        }
        let h = gm.history();
        assert_eq!(h.len(), 5);
        assert_eq!(h[0].epoch, 0);
        assert_eq!(h[4].epoch, 4);
        assert!((h[3].total_requested_mw - 300.0).abs() < 1e-9);
        gm.reset();
        assert!(gm.history().is_empty());
    }

    #[test]
    fn negative_budget_clamped_to_zero() {
        let model = PowerModel::default_45nm();
        let mut gm = GlobalManager::new(-5.0, Box::new(GreedyAllocator::new()));
        assert_eq!(gm.budget_mw(), 0.0);
        gm.submit(PowerRequest::new(0, 100.0));
        let grants = gm.run_epoch(&model);
        assert!(grants[0].milliwatts.abs() < 1e-12);
    }
}
