//! Power/frequency modelling and global-manager power budgeting for
//! many-core chips.
//!
//! This crate is the *power budgeting scheme* the SOCC 2018 Trojan paper
//! attacks (Section II-A): cores request power each budgeting epoch, a
//! designated **global manager** core collects the requests and divides a
//! fixed chip-level budget among them, and each core then runs at the
//! highest DVFS level its granted power affords.
//!
//! Four allocation strategies are provided, mirroring the strategy families
//! cited by the paper — a greedy heuristic (à la SmartCap \[8\]), a
//! proportional-share policy (market-style \[6\]), a PI controller
//! (PGCapping \[12\]) and a dynamic-programming optimal allocator
//! (fine-grained runtime budgeting \[9\]). All of them share one property the
//! attack exploits: *no core is ever granted more than it requested*, so a
//! tampered (lowered) request directly starves its sender.
//!
//! ```
//! use htpb_power::{GlobalManager, GreedyAllocator, PowerModel, PowerRequest};
//!
//! let model = PowerModel::default_45nm();
//! let mut gm = GlobalManager::new(5_000.0, Box::new(GreedyAllocator::new()));
//! gm.submit(PowerRequest::new(0, 2_000.0));
//! gm.submit(PowerRequest::new(1, 4_000.0));
//! let grants = gm.run_epoch(&model);
//! let total: f64 = grants.iter().map(|g| g.milliwatts).sum();
//! assert!(total <= 5_000.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
mod manager;
mod model;
mod request;

pub use alloc::{
    audit_grant_contract, AllocatorKind, DpAllocator, FairShareAllocator, GreedyAllocator,
    MarketAllocator, PiAllocator, PowerAllocator,
};
pub use error::PowerError;
pub use manager::{DegradationCounters, EpochSummary, GlobalManager, HardeningConfig};
pub use model::{DvfsTable, FrequencyLevel, PowerModel, RequestEnvelope};
pub use request::{PowerGrant, PowerRequest};
