use std::fmt;

/// Errors produced by the power-budgeting subsystem.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A DVFS table was constructed with no levels, unsorted frequencies, or
    /// non-positive frequency/voltage values.
    InvalidDvfsTable {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A budget or request value was negative or not finite.
    InvalidPowerValue {
        /// The offending value in milliwatts.
        milliwatts: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidDvfsTable { reason } => {
                write!(f, "invalid DVFS table: {reason}")
            }
            PowerError::InvalidPowerValue { milliwatts } => {
                write!(f, "invalid power value: {milliwatts} mW")
            }
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            PowerError::InvalidDvfsTable {
                reason: "no levels"
            }
            .to_string(),
            "invalid DVFS table: no levels"
        );
        assert_eq!(
            PowerError::InvalidPowerValue { milliwatts: -3.0 }.to_string(),
            "invalid power value: -3 mW"
        );
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(PowerError::InvalidPowerValue {
            milliwatts: f64::NAN,
        });
        assert!(e.source().is_none());
    }
}
