use crate::error::PowerError;

/// An index into a [`DvfsTable`]: level 0 is the slowest operating point.
///
/// The paper's Definition 4 writes the available frequency levels as
/// τ₁ < τ₂ < … < τ_s; `FrequencyLevel(i)` corresponds to τ_{i+1}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrequencyLevel(pub u8);

impl FrequencyLevel {
    /// The lowest operating point.
    pub const MIN: FrequencyLevel = FrequencyLevel(0);
}

/// The discrete voltage/frequency operating points a core may run at.
///
/// "Each core can operate at any of the preset frequencies, and a higher
/// frequency leads to higher performance at a cost of higher power
/// consumption" (Section II-A).
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    freqs_ghz: Vec<f64>,
    volts: Vec<f64>,
}

impl DvfsTable {
    /// Creates a table from parallel frequency (GHz) and voltage (V) lists,
    /// which must be strictly increasing and positive.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidDvfsTable`] if the lists are empty,
    /// lengths differ, values are non-positive, or not strictly increasing.
    pub fn new(freqs_ghz: Vec<f64>, volts: Vec<f64>) -> Result<Self, PowerError> {
        if freqs_ghz.is_empty() {
            return Err(PowerError::InvalidDvfsTable {
                reason: "no levels",
            });
        }
        if freqs_ghz.len() != volts.len() {
            return Err(PowerError::InvalidDvfsTable {
                reason: "frequency and voltage lists differ in length",
            });
        }
        if freqs_ghz.len() > u8::MAX as usize + 1 {
            return Err(PowerError::InvalidDvfsTable {
                reason: "more than 256 levels",
            });
        }
        for w in [&freqs_ghz, &volts] {
            if w.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(PowerError::InvalidDvfsTable {
                    reason: "non-positive or non-finite value",
                });
            }
            if w.windows(2).any(|p| p[1] <= p[0]) {
                return Err(PowerError::InvalidDvfsTable {
                    reason: "levels must be strictly increasing",
                });
            }
        }
        Ok(DvfsTable { freqs_ghz, volts })
    }

    /// The six-level table used throughout the reproduction:
    /// 0.5–3.0 GHz in 0.5 GHz steps with a linear voltage ramp.
    #[must_use]
    pub fn default_six_level() -> Self {
        let freqs: Vec<f64> = (1..=6).map(|i| i as f64 * 0.5).collect();
        let volts: Vec<f64> = freqs.iter().map(|f| 0.60 + 0.15 * f).collect();
        DvfsTable::new(freqs, volts).expect("static table is valid")
    }

    /// Number of levels (`s` in Definition 4).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.freqs_ghz.len()
    }

    /// The highest operating point.
    #[must_use]
    pub fn max_level(&self) -> FrequencyLevel {
        FrequencyLevel((self.levels() - 1) as u8)
    }

    /// Frequency (GHz) of a level.
    ///
    /// # Panics
    ///
    /// Panics if the level is outside the table.
    #[must_use]
    pub fn freq_ghz(&self, level: FrequencyLevel) -> f64 {
        self.freqs_ghz[level.0 as usize]
    }

    /// Supply voltage (V) of a level.
    ///
    /// # Panics
    ///
    /// Panics if the level is outside the table.
    #[must_use]
    pub fn volts(&self, level: FrequencyLevel) -> f64 {
        self.volts[level.0 as usize]
    }

    /// Iterates over all levels from slowest to fastest.
    pub fn iter_levels(&self) -> impl Iterator<Item = FrequencyLevel> {
        (0..self.levels()).map(|i| FrequencyLevel(i as u8))
    }
}

/// The per-core power model: `P(f) = P_static + C_eff · V(f)² · f`.
///
/// Power values are in **milliwatts** throughout, matching the payload unit
/// of `POWER_REQ` packets.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    table: DvfsTable,
    /// Leakage/static power per core in mW.
    static_mw: f64,
    /// Effective switched capacitance coefficient: dynamic mW per V²·GHz.
    ceff: f64,
}

impl PowerModel {
    /// Creates a model over `table`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidPowerValue`] if `static_mw` or `ceff` is
    /// negative or not finite.
    pub fn new(table: DvfsTable, static_mw: f64, ceff: f64) -> Result<Self, PowerError> {
        for v in [static_mw, ceff] {
            if !v.is_finite() || v < 0.0 {
                return Err(PowerError::InvalidPowerValue { milliwatts: v });
            }
        }
        Ok(PowerModel {
            table,
            static_mw,
            ceff,
        })
    }

    /// A 45 nm-flavoured default: six DVFS levels, 200 mW static power and a
    /// C_eff giving ≈2.5 W per core at the top level — the regime where a
    /// 256-core chip cannot run every core at peak inside a realistic
    /// socket budget, which is exactly why power budgeting exists
    /// (Section I of the paper).
    #[must_use]
    pub fn default_45nm() -> Self {
        PowerModel::new(DvfsTable::default_six_level(), 200.0, 700.0)
            .expect("static constants are valid")
    }

    /// The DVFS table.
    #[must_use]
    pub fn table(&self) -> &DvfsTable {
        &self.table
    }

    /// Power draw (mW) of a core running at `level`.
    #[must_use]
    pub fn power_mw(&self, level: FrequencyLevel) -> f64 {
        let f = self.table.freq_ghz(level);
        let v = self.table.volts(level);
        self.static_mw + self.ceff * v * v * f
    }

    /// Power draw (mW) at the top level — what a core would request to run
    /// flat-out.
    #[must_use]
    pub fn peak_power_mw(&self) -> f64 {
        self.power_mw(self.table.max_level())
    }

    /// Power draw (mW) at the bottom level — the floor any powered core pays.
    #[must_use]
    pub fn min_power_mw(&self) -> f64 {
        self.power_mw(FrequencyLevel::MIN)
    }

    /// The highest level whose power fits within `grant_mw`, or `None` if the
    /// grant cannot even sustain the lowest level (the core is then clamped
    /// to the lowest level anyway — a chip cannot power-gate below retention
    /// in this model — but callers can distinguish the starved case).
    #[must_use]
    pub fn level_for_grant(&self, grant_mw: f64) -> Option<FrequencyLevel> {
        let mut chosen = None;
        for level in self.table.iter_levels() {
            if self.power_mw(level) <= grant_mw {
                chosen = Some(level);
            } else {
                break;
            }
        }
        chosen
    }

    /// The plausibility envelope of an honest per-core power request under
    /// this model: a core asks for somewhere between zero (idle /
    /// power-gated) and its top operating point's draw. Anything outside —
    /// negative, above peak, or non-finite — cannot be an honest request
    /// and is either transport corruption or an attack.
    ///
    /// This is the single source of envelope logic shared by the manager's
    /// plausibility clamp and the defense layer's anomaly detector.
    #[must_use]
    pub fn request_envelope(&self) -> RequestEnvelope {
        RequestEnvelope {
            min_mw: 0.0,
            max_mw: self.peak_power_mw(),
        }
    }
}

/// The closed interval of plausible per-core request values (mW), derived
/// from a [`PowerModel`] via [`PowerModel::request_envelope`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEnvelope {
    /// Lowest plausible request (idle).
    pub min_mw: f64,
    /// Highest plausible request (the top DVFS level's draw).
    pub max_mw: f64,
}

impl RequestEnvelope {
    /// Whether `mw` is a plausible honest request.
    #[must_use]
    pub fn contains(&self, mw: f64) -> bool {
        mw.is_finite() && mw >= self.min_mw && mw <= self.max_mw
    }

    /// Pulls `mw` into the envelope: `NaN` lands on the floor (a corrupted
    /// value earns nothing), everything else clamps to the interval.
    #[must_use]
    pub fn clamp(&self, mw: f64) -> f64 {
        if mw.is_nan() {
            self.min_mw
        } else {
            mw.clamp(self.min_mw, self.max_mw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_has_six_increasing_levels() {
        let t = DvfsTable::default_six_level();
        assert_eq!(t.levels(), 6);
        let freqs: Vec<f64> = t.iter_levels().map(|l| t.freq_ghz(l)).collect();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
        assert!((t.freq_ghz(t.max_level()) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_bad_input() {
        assert!(DvfsTable::new(vec![], vec![]).is_err());
        assert!(DvfsTable::new(vec![1.0, 2.0], vec![1.0]).is_err());
        assert!(DvfsTable::new(vec![2.0, 1.0], vec![0.8, 0.9]).is_err());
        assert!(DvfsTable::new(vec![1.0, 1.0], vec![0.8, 0.9]).is_err());
        assert!(DvfsTable::new(vec![-1.0, 1.0], vec![0.8, 0.9]).is_err());
        assert!(DvfsTable::new(vec![f64::NAN], vec![0.8]).is_err());
    }

    #[test]
    fn power_is_monotonic_in_level() {
        let m = PowerModel::default_45nm();
        let powers: Vec<f64> = m.table().iter_levels().map(|l| m.power_mw(l)).collect();
        assert!(powers.windows(2).all(|w| w[1] > w[0]));
        assert!(m.peak_power_mw() > 2_000.0 && m.peak_power_mw() < 3_000.0);
        assert!(m.min_power_mw() > 0.0);
    }

    #[test]
    fn level_for_grant_boundaries() {
        let m = PowerModel::default_45nm();
        // A grant below the minimum level's power starves the core.
        assert_eq!(m.level_for_grant(m.min_power_mw() - 1.0), None);
        // Exactly the minimum level's power yields level 0.
        assert_eq!(m.level_for_grant(m.min_power_mw()), Some(FrequencyLevel(0)));
        // A huge grant yields the top level.
        assert_eq!(m.level_for_grant(1e9), Some(m.table().max_level()));
        // Grants between two levels round down.
        let p2 = m.power_mw(FrequencyLevel(2));
        let p3 = m.power_mw(FrequencyLevel(3));
        assert_eq!(m.level_for_grant((p2 + p3) / 2.0), Some(FrequencyLevel(2)));
    }

    #[test]
    fn envelope_classifies_and_clamps() {
        let m = PowerModel::default_45nm();
        let env = m.request_envelope();
        assert!(env.contains(0.0));
        assert!(env.contains(m.peak_power_mw()));
        assert!(!env.contains(m.peak_power_mw() + 1.0));
        assert!(!env.contains(-1.0));
        assert!(!env.contains(f64::NAN));
        assert!(!env.contains(f64::INFINITY));
        assert_eq!(env.clamp(f64::NAN), 0.0);
        assert_eq!(env.clamp(f64::NEG_INFINITY), 0.0);
        assert_eq!(env.clamp(f64::INFINITY), m.peak_power_mw());
        assert_eq!(env.clamp(-5.0), 0.0);
        assert_eq!(env.clamp(123.0), 123.0);
    }

    #[test]
    fn model_rejects_negative_constants() {
        let t = DvfsTable::default_six_level();
        assert!(PowerModel::new(t.clone(), -1.0, 100.0).is_err());
        assert!(PowerModel::new(t, 1.0, f64::INFINITY).is_err());
    }
}
