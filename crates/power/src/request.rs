/// A power-budget request as received by the global manager.
///
/// On the wire this is the payload of a `POWER_REQ` packet (Fig. 1a); the
/// core id corresponds to the packet's source address. The global manager
/// has no way to verify the value — which is precisely the vulnerability the
/// Trojan exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerRequest {
    /// Requesting core (source address of the `POWER_REQ` packet).
    pub core: u16,
    /// Requested power in milliwatts, as carried in the packet payload.
    pub milliwatts: f64,
}

impl PowerRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(core: u16, milliwatts: f64) -> Self {
        PowerRequest { core, milliwatts }
    }
}

/// A power grant issued by the global manager for one budgeting epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGrant {
    /// Core the grant is addressed to.
    pub core: u16,
    /// Granted power in milliwatts.
    pub milliwatts: f64,
}

impl PowerGrant {
    /// Creates a grant.
    #[must_use]
    pub fn new(core: u16, milliwatts: f64) -> Self {
        PowerGrant { core, milliwatts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_store_fields() {
        let r = PowerRequest::new(9, 1234.5);
        assert_eq!(r.core, 9);
        assert!((r.milliwatts - 1234.5).abs() < 1e-12);
        let g = PowerGrant::new(3, 42.0);
        assert_eq!(g.core, 3);
        assert!((g.milliwatts - 42.0).abs() < 1e-12);
    }
}
