//! Property-based verification of the allocator contract shared by all four
//! budgeting policies: grants are per-request bounded, budget-bounded and
//! non-negative — the invariants the false-data attack relies on.

use proptest::prelude::*;

use htpb_power::{
    DpAllocator, FairShareAllocator, GreedyAllocator, MarketAllocator, PiAllocator, PowerAllocator,
    PowerModel, PowerRequest,
};

fn arb_requests() -> impl Strategy<Value = Vec<PowerRequest>> {
    proptest::collection::vec(0.0f64..6_000.0, 0..32).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(i, v)| PowerRequest::new(i as u16, v))
            .collect()
    })
}

fn check_contract(
    allocator: &mut dyn PowerAllocator,
    requests: &[PowerRequest],
    budget: f64,
) -> Result<(), TestCaseError> {
    let model = PowerModel::default_45nm();
    // Run a few epochs so stateful controllers (PI) are also exercised
    // mid-transient.
    for _ in 0..5 {
        let grants = allocator.allocate(requests, budget, &model);
        prop_assert_eq!(grants.len(), requests.len(), "{}", allocator.name());
        let mut total = 0.0;
        for (g, r) in grants.iter().zip(requests) {
            prop_assert_eq!(g.core, r.core);
            prop_assert!(g.milliwatts >= 0.0, "{} negative grant", allocator.name());
            prop_assert!(
                g.milliwatts <= r.milliwatts + 1e-6,
                "{} granted {} for request {}",
                allocator.name(),
                g.milliwatts,
                r.milliwatts
            );
            total += g.milliwatts;
        }
        prop_assert!(
            total <= budget + 1e-6,
            "{} total {} over budget {}",
            allocator.name(),
            total,
            budget
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_contract(requests in arb_requests(), budget in 0.0f64..100_000.0) {
        check_contract(&mut GreedyAllocator::new(), &requests, budget)?;
    }

    #[test]
    fn fair_share_contract(requests in arb_requests(), budget in 0.0f64..100_000.0) {
        check_contract(&mut FairShareAllocator::new(), &requests, budget)?;
    }

    #[test]
    fn pi_contract(requests in arb_requests(), budget in 0.0f64..100_000.0) {
        check_contract(&mut PiAllocator::default(), &requests, budget)?;
    }

    #[test]
    fn dp_contract(requests in arb_requests(), budget in 0.0f64..100_000.0) {
        check_contract(&mut DpAllocator::default(), &requests, budget)?;
    }

    #[test]
    fn market_contract(requests in arb_requests(), budget in 0.0f64..100_000.0) {
        check_contract(&mut MarketAllocator::default(), &requests, budget)?;
    }

    /// Monotonicity-in-request for the stateless policies: lowering one
    /// request never increases that requester's grant. This is the formal
    /// core of the attack: tampering a request downward can only hurt the
    /// victim.
    #[test]
    fn lowering_a_request_never_helps(
        requests in arb_requests().prop_filter("nonempty", |r| !r.is_empty()),
        victim_scale in 0.0f64..1.0,
        budget in 100.0f64..50_000.0,
    ) {
        let model = PowerModel::default_45nm();
        for mk in [
            || Box::new(GreedyAllocator::new()) as Box<dyn PowerAllocator>,
            || Box::new(FairShareAllocator::new()) as Box<dyn PowerAllocator>,
            || Box::new(DpAllocator::default()) as Box<dyn PowerAllocator>,
            || Box::new(MarketAllocator::default()) as Box<dyn PowerAllocator>,
        ] {
            let mut clean_alloc = mk();
            let clean = clean_alloc.allocate(&requests, budget, &model);
            let mut tampered_reqs = requests.clone();
            tampered_reqs[0].milliwatts *= victim_scale;
            let mut tampered_alloc = mk();
            let tampered = tampered_alloc.allocate(&tampered_reqs, budget, &model);
            prop_assert!(
                tampered[0].milliwatts <= clean[0].milliwatts + 1e-6,
                "{}: victim grant rose from {} to {} after tampering",
                clean_alloc.name(),
                clean[0].milliwatts,
                tampered[0].milliwatts
            );
        }
    }
}
