//! Drivers for every experiment in the paper's evaluation (Section V).

use htpb_attack::{
    sensitivity_phi, AttackOutcome, AttackSample, Mix, Placement, PlacementOptimizer,
    PlacementStrategy,
};
use htpb_faults::{FaultCounters, FaultPlan};
use htpb_manycore::{AppRole, ManyCoreSystem, PerformanceReport, SystemBuilder};
use htpb_noc::{Mesh2d, Network, NetworkConfig, NodeId, Packet, RoutingKind};
use htpb_power::{AllocatorKind, DegradationCounters, DvfsTable, HardeningConfig};
use htpb_trojan::{ActivationSchedule, BoostRule, TamperRule, TrojanFleet, TrojanMode};

use crate::series::Series;

/// Where the global manager sits — the locations compared in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerLocation {
    /// The node closest to the chip's geometric center.
    Center,
    /// The (0, 0) corner node.
    Corner,
    /// An explicit node.
    At(NodeId),
}

impl ManagerLocation {
    /// Resolves the location on a concrete mesh.
    #[must_use]
    pub fn resolve(self, mesh: Mesh2d) -> NodeId {
        match self {
            ManagerLocation::Center => mesh.center(),
            ManagerLocation::Corner => mesh.corner(),
            ManagerLocation::At(n) => n,
        }
    }
}

/// The infection-rate measurement rig used by Fig. 3 and Fig. 4: every
/// non-manager node sends power requests to the manager through a NoC with
/// implanted, always-on Trojans, and the infection rate is the fraction of
/// delivered requests that arrived tampered (Section V-B).
#[derive(Debug, Clone)]
pub struct InfectionExperiment {
    mesh: Mesh2d,
    manager: NodeId,
    routing: RoutingKind,
    rounds: u32,
}

impl InfectionExperiment {
    /// Creates the rig for a chip of `nodes` nodes (64/128/256/512 in the
    /// paper), manager at the center, XY routing, one request round.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` cannot form a mesh (zero or > 65536).
    #[must_use]
    pub fn new(nodes: u32) -> Self {
        let mesh = Mesh2d::with_nodes(nodes).expect("valid node count");
        InfectionExperiment {
            mesh,
            manager: mesh.center(),
            routing: RoutingKind::Xy,
            rounds: 1,
        }
    }

    /// Places the manager.
    #[must_use]
    pub fn manager(mut self, at: ManagerLocation) -> Self {
        self.manager = at.resolve(self.mesh);
        self
    }

    /// Selects the routing algorithm.
    #[must_use]
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Number of request rounds (epochs) to average over. One suffices for
    /// deterministic XY routing; adaptive routing benefits from more.
    #[must_use]
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// The mesh in use.
    #[must_use]
    pub fn mesh(&self) -> Mesh2d {
        self.mesh
    }

    /// The manager node in use.
    #[must_use]
    pub fn manager_node(&self) -> NodeId {
        self.manager
    }

    /// Materialises a placement of `m` Trojans, never on the manager's own
    /// router (an attacker would not waste silicon where detection risk is
    /// highest; Fig. 3/4 sweep HTs across worker routers).
    #[must_use]
    pub fn placement(&self, m: usize, strategy: &PlacementStrategy) -> Placement {
        Placement::generate(self.mesh, m, strategy, &[self.manager])
    }

    /// Runs the rig and returns the measured infection rate.
    #[must_use]
    pub fn measure(&self, placement: &Placement) -> f64 {
        let mut fleet = TrojanFleet::new(placement.nodes(), TamperRule::Zero);
        fleet.configure_all(&[], self.manager, true);
        let mut net = Network::with_inspector(
            NetworkConfig::new(self.mesh).with_routing(self.routing),
            fleet,
        );
        for round in 0..self.rounds {
            for src in self.mesh.iter_nodes() {
                if src == self.manager {
                    continue;
                }
                let payload = 1_000 + u32::from(src.0) + round * 7;
                net.inject(Packet::power_request(src, self.manager, payload))
                    .expect("infection rig injection");
            }
            assert!(
                net.run_until_idle(4_000_000),
                "infection rig failed to drain"
            );
        }
        net.stats().infection_rate()
    }

    /// Averages [`InfectionExperiment::measure`] over random placements.
    #[must_use]
    pub fn measure_random_avg(&self, m: usize, seeds: &[u64]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let sum: f64 = seeds
            .iter()
            .map(|&seed| self.measure(&self.placement(m, &PlacementStrategy::Random { seed })))
            .sum();
        sum / seeds.len() as f64
    }
}

/// The legend label Fig. 3 uses for a manager location.
#[must_use]
pub fn fig3_label(manager: ManagerLocation) -> &'static str {
    match manager {
        ManagerLocation::Center => "The global manager in the center",
        ManagerLocation::Corner => "The global manager in one corner",
        ManagerLocation::At(_) => "The global manager at a custom node",
    }
}

/// One data point of a Fig. 3 curve: the random-placement-averaged
/// infection rate for `ht_count` Trojans. Points are independent of each
/// other, so a job scheduler may compute them in any order or in parallel
/// and still reassemble the exact sequential curve.
#[must_use]
pub fn fig3_point(nodes: u32, manager: ManagerLocation, ht_count: usize, seeds: &[u64]) -> f64 {
    InfectionExperiment::new(nodes)
        .manager(manager)
        .measure_random_avg(ht_count, seeds)
}

/// Fig. 3 — one curve of infection rate vs. number of (randomly placed)
/// Trojans for a given manager location. The paper shows sizes 64 (HT count
/// 0–30) and 512 (0–60).
#[must_use]
pub fn fig3_series(
    nodes: u32,
    manager: ManagerLocation,
    ht_counts: &[usize],
    seeds: &[u64],
) -> Series {
    let mut series = Series::new(fig3_label(manager));
    for &m in ht_counts {
        series.push(m as f64, fig3_point(nodes, manager, m, seeds));
    }
    series
}

/// Fig. 4 — one curve of infection rate vs. system size for a given HT
/// distribution, with the Trojan count a fixed fraction `1/denominator` of
/// the system size (the paper uses 1/16 and 1/8). Manager at the center.
#[must_use]
pub fn fig4_series(
    sizes: &[u32],
    strategy_label: &str,
    strategy_for: impl Fn(u64) -> PlacementStrategy,
    denominator: u32,
    seeds: &[u64],
) -> Series {
    let mut series = Series::new(strategy_label);
    for &nodes in sizes {
        series.push(
            f64::from(nodes),
            fig4_point(nodes, &strategy_for, denominator, seeds),
        );
    }
    series
}

/// One data point of a Fig. 4 curve: the infection rate on a chip of
/// `nodes` nodes with `nodes / denominator` Trojans placed by
/// `strategy_for` (seed-averaged for random strategies). Independent per
/// point — see [`fig3_point`].
#[must_use]
pub fn fig4_point(
    nodes: u32,
    strategy_for: &impl Fn(u64) -> PlacementStrategy,
    denominator: u32,
    seeds: &[u64],
) -> f64 {
    let exp = InfectionExperiment::new(nodes).manager(ManagerLocation::Center);
    let m = (nodes / denominator).max(1) as usize;
    match strategy_for(0) {
        PlacementStrategy::Random { .. } => exp.measure_random_avg(m, seeds),
        _ => exp.measure(&exp.placement(m, &strategy_for(0))),
    }
}

/// Configuration of a full attack campaign (the Fig. 5 / Fig. 6 rig): a
/// benchmark mix on a many-core chip with a Trojan fleet, compared against
/// the same chip clean.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Chip size in nodes (the paper uses 256 for Section V-C).
    pub nodes: u32,
    /// The benchmark mix (Table III).
    pub mix: Mix,
    /// Manager location.
    pub manager: ManagerLocation,
    /// Allocation policy.
    pub allocator: AllocatorKind,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Budgeting epoch length in cycles; `None` picks `max(1000, 4·nodes)`.
    pub epoch_cycles: Option<u64>,
    /// Chip budget as a fraction of honest demand.
    pub budget_fraction: f64,
    /// Epochs of warm-up before measurement.
    pub warmup_epochs: u64,
    /// Epochs measured. Keep it a multiple of 10 so duty-cycled activation
    /// covers whole schedule periods.
    pub measure_epochs: u64,
    /// Trojan payload rewrite rule.
    pub tamper_rule: TamperRule,
    /// Optional attacker-side boost extension: infected routers also
    /// inflate the attacker's own requests (paper intro: malicious
    /// requests "will be increased"). `None` reproduces the Fig. 2 circuit
    /// exactly.
    pub ht_boost: Option<BoostRule>,
    /// DoS class of the implanted Trojans: the paper's false-data rewrite
    /// (default), or the Section II-B packet-drop baseline.
    pub ht_mode: TrojanMode,
    /// Trojan placement; `None` places a tight 5-Trojan cluster on the
    /// manager's neighbourhood (full route coverage).
    pub placement: Option<Placement>,
    /// Background memory traffic on/off.
    pub memory_traffic: bool,
    /// Detailed cache/coherence model instead of the rate-based one.
    pub detailed_caches: bool,
    /// RNG seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// Defaults mirroring Section V-C: 256 nodes, manager at the center,
    /// fair-share allocation (the policy family the attack subverts most
    /// visibly), XY routing, scarce (60%) budget.
    #[must_use]
    pub fn new(mix: Mix) -> Self {
        CampaignConfig {
            nodes: 256,
            mix,
            manager: ManagerLocation::Center,
            allocator: AllocatorKind::FairShare,
            routing: RoutingKind::Xy,
            epoch_cycles: None,
            budget_fraction: 0.6,
            warmup_epochs: 2,
            measure_epochs: 10,
            tamper_rule: TamperRule::Zero,
            ht_boost: None,
            ht_mode: TrojanMode::FalseData,
            placement: None,
            memory_traffic: true,
            detailed_caches: false,
            seed: 0xA77AC,
        }
    }

    /// Shrinks the rig for fast tests: a 64-node chip and shorter epochs.
    #[must_use]
    pub fn small(mix: Mix) -> Self {
        let mut c = CampaignConfig::new(mix);
        c.nodes = 64;
        c.epoch_cycles = Some(600);
        c
    }

    /// The smallest meaningful rig (32 nodes, short epochs, 5 measured
    /// epochs at the cost of duty-cycle resolution) — for microbenchmarks
    /// where wall-clock per iteration matters more than fidelity.
    #[must_use]
    pub fn tiny(mix: Mix) -> Self {
        let mut c = CampaignConfig::new(mix);
        c.nodes = 32;
        c.epoch_cycles = Some(400);
        c.warmup_epochs = 1;
        c.measure_epochs = 5;
        c
    }

    fn epoch(&self) -> u64 {
        self.epoch_cycles
            .unwrap_or_else(|| (4 * u64::from(self.nodes)).max(1_000))
    }

    /// Canonical id of this configuration's **clean baseline**: a stable
    /// string over exactly the fields that determine the Trojan-free run
    /// (Λ of Definition 2). Attack-side knobs — `tamper_rule`, `ht_boost`,
    /// `ht_mode`, `placement` — are deliberately excluded: they cannot
    /// influence a fleet-free chip, so every duty point and placement
    /// variant of one configuration shares a single baseline. Callers hash
    /// this id to content-address memoized baselines across jobs.
    #[must_use]
    pub fn baseline_id(&self) -> String {
        let manager = match self.manager {
            ManagerLocation::Center => "center".to_string(),
            ManagerLocation::Corner => "corner".to_string(),
            ManagerLocation::At(n) => format!("at{}", n.0),
        };
        let routing = match self.routing {
            RoutingKind::Xy => "xy",
            RoutingKind::OddEven => "oddeven",
            RoutingKind::WestFirst => "westfirst",
        };
        format!(
            "baseline-n{}-{}-{}-{}-{}-e{}-b{:016x}-w{}-m{}-mem{}-dc{}-s{:x}",
            self.nodes,
            self.mix.name(),
            manager,
            self.allocator.name(),
            routing,
            self.epoch(),
            // Bit pattern, not a decimal rendering: two fractions that
            // print alike but differ in the last ulp must not share a
            // baseline.
            self.budget_fraction.to_bits(),
            self.warmup_epochs,
            self.measure_epochs,
            u8::from(self.memory_traffic),
            u8::from(self.detailed_caches),
            self.seed,
        )
    }

    /// The mesh this configuration's node count resolves to.
    ///
    /// # Panics
    /// Panics if `nodes` does not form a valid 2-D mesh.
    #[must_use]
    pub fn mesh(&self) -> Mesh2d {
        Mesh2d::with_nodes(self.nodes).expect("valid node count")
    }

    fn default_placement(&self, mesh: Mesh2d, manager: NodeId) -> Placement {
        Placement::generate(
            mesh,
            5,
            &PlacementStrategy::ClusterAround { anchor: manager },
            &[],
        )
    }
}

/// The outcome of one campaign: the clean baseline, the attacked run and
/// the derived attack metrics.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Performance on the clean chip (the paper's Λ values).
    pub clean: PerformanceReport,
    /// Performance under attack (the paper's θ values).
    pub attacked: PerformanceReport,
    /// Derived Θ per application plus Q(Δ, Γ).
    pub outcome: AttackOutcome,
}

fn build_system(cfg: &CampaignConfig, fleet: TrojanFleet) -> ManyCoreSystem<TrojanFleet> {
    build_system_opts(cfg, fleet, None)
}

fn build_system_opts(
    cfg: &CampaignConfig,
    fleet: TrojanFleet,
    hardening: Option<HardeningConfig>,
) -> ManyCoreSystem<TrojanFleet> {
    let mesh = cfg.mesh();
    let manager = cfg.manager.resolve(mesh);
    let mut builder = SystemBuilder::new(mesh)
        .manager(manager)
        .workload(cfg.mix.workload_for_mesh(mesh))
        .allocator(cfg.allocator)
        .routing(cfg.routing)
        .epoch_cycles(cfg.epoch())
        .budget_fraction(cfg.budget_fraction)
        .memory_traffic(cfg.memory_traffic)
        .detailed_caches(cfg.detailed_caches)
        .seed(cfg.seed);
    if let Some(h) = hardening {
        builder = builder.hardening(h);
    }
    builder
        .build_with_inspector(fleet)
        .expect("campaign configuration is internally consistent")
}

fn run_to_report(
    cfg: &CampaignConfig,
    system: &mut ManyCoreSystem<TrojanFleet>,
) -> PerformanceReport {
    system.run_epochs(cfg.warmup_epochs);
    system.begin_measurement();
    system.run_epochs(cfg.measure_epochs);
    system.performance_report()
}

/// Runs the clean (Trojan-free) baseline for a campaign configuration —
/// the Λ values of Definition 2. Expensive; reuse it across duty points and
/// placements via [`run_campaign_with_baseline`].
#[must_use]
pub fn run_clean_baseline(cfg: &CampaignConfig) -> PerformanceReport {
    let mut clean_sys = build_system(cfg, TrojanFleet::clean());
    run_to_report(cfg, &mut clean_sys)
}

/// Runs one campaign at a given Trojan duty fraction (1.0 = always on,
/// 0.0 = Trojans dormant) against a clean baseline, returning both reports
/// and the attack metrics.
///
/// The duty cycle models the attacker's alternating ON/OFF `CONFIG_CMD`
/// stream (Section III-B): the schedule period spans 10 budgeting epochs,
/// so a duty of 0.3 attacks ~3 epochs in 10 and the measured infection rate
/// lands near 0.3.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig, duty: f64) -> CampaignResult {
    let clean = run_clean_baseline(cfg);
    run_campaign_with_baseline(cfg, duty, &clean)
}

/// Like [`run_campaign`] but reusing a precomputed clean baseline (the
/// baseline depends on the configuration, not on the placement or duty).
/// Borrowed, not owned: sweeps and regression drivers share one baseline
/// across every duty point and placement without cloning per point.
#[must_use]
pub fn run_campaign_with_baseline(
    cfg: &CampaignConfig,
    duty: f64,
    clean: &PerformanceReport,
) -> CampaignResult {
    let mut attacked_sys = build_attacked_system(cfg, duty, None);
    let attacked = run_to_report(cfg, &mut attacked_sys);

    let outcome = AttackOutcome::compare(&attacked, clean)
        .expect("mixes always contain attackers and victims with live baselines");
    CampaignResult {
        clean: clean.clone(),
        attacked,
        outcome,
    }
}

/// Builds the attacked chip for a campaign: Trojan fleet placed and
/// configured, agents registered, optional manager hardening installed.
fn build_attacked_system(
    cfg: &CampaignConfig,
    duty: f64,
    hardening: Option<HardeningConfig>,
) -> ManyCoreSystem<TrojanFleet> {
    let mesh = cfg.mesh();
    let manager = cfg.manager.resolve(mesh);
    let placement = cfg
        .placement
        .clone()
        .unwrap_or_else(|| cfg.default_placement(mesh, manager));
    let schedule = if duty >= 1.0 {
        ActivationSchedule::AlwaysOn
    } else {
        ActivationSchedule::duty(duty, 10 * cfg.epoch())
    };
    let mut fleet = TrojanFleet::new(placement.nodes(), cfg.tamper_rule)
        .with_schedule(schedule)
        .with_mode(cfg.ht_mode);
    if let Some(boost) = cfg.ht_boost {
        fleet = fleet.with_boost(boost);
    }
    let mut attacked_sys = build_system_opts(cfg, fleet, hardening);
    // Register every attacker-application core as an agent (the attacker
    // broadcasts one CONFIG_CMD per agent core; DESIGN.md §4).
    let agents: Vec<NodeId> = attacked_sys
        .tiles()
        .iter()
        .filter(|t| t.assignment().is_some_and(|a| a.role == AppRole::Malicious))
        .map(|t| t.node())
        .collect();
    attacked_sys
        .inspector_mut()
        .configure_all(&agents, manager, true);
    attacked_sys
}

/// One point of the Fig. 5 / Fig. 6 sweep.
#[derive(Debug, Clone)]
pub struct AttackSweepPoint {
    /// Commanded Trojan duty fraction.
    pub duty: f64,
    /// Measured infection rate (x axis of Fig. 5/6).
    pub infection: f64,
    /// Attack effect Q (y axis of Fig. 5).
    pub q_value: f64,
    /// Per-application Θ (y axis of Fig. 6), in application order.
    pub outcome: AttackOutcome,
}

/// One point of the Fig. 5 / Fig. 6 sweep, self-contained: computes its
/// own clean baseline, so independent points can run in any order or in
/// parallel. Because the baseline is deterministic in `cfg`, the result is
/// bit-identical to the corresponding [`attack_sweep`] entry (which shares
/// one baseline across the sweep as a sequential optimisation).
#[must_use]
pub fn attack_sweep_point(cfg: &CampaignConfig, duty: f64) -> AttackSweepPoint {
    let clean = run_clean_baseline(cfg);
    attack_sweep_point_with_baseline(cfg, duty, &clean)
}

/// Like [`attack_sweep_point`] but against a caller-provided clean
/// baseline. Because the baseline is a pure function of `cfg`, substituting
/// a memoized copy (e.g. from a cross-job baseline cache) yields the
/// bit-identical point.
#[must_use]
pub fn attack_sweep_point_with_baseline(
    cfg: &CampaignConfig,
    duty: f64,
    clean: &PerformanceReport,
) -> AttackSweepPoint {
    let result = run_campaign_with_baseline(cfg, duty, clean);
    AttackSweepPoint {
        duty,
        infection: result.outcome.infection_rate,
        q_value: result.outcome.q_value,
        outcome: result.outcome,
    }
}

/// Sweeps the Trojan duty cycle and reports (infection rate, Q, per-app Θ)
/// per point — the data behind Fig. 5 and Fig. 6. The clean baseline is
/// computed once per call.
#[must_use]
pub fn attack_sweep(cfg: &CampaignConfig, duties: &[f64]) -> Vec<AttackSweepPoint> {
    let clean = run_clean_baseline(cfg);
    duties
        .iter()
        .map(|&duty| attack_sweep_point_with_baseline(cfg, duty, &clean))
        .collect()
}

/// Result of the Section V-C placement comparison: the attack effect with
/// the optimizer's placement vs. randomly placed Trojans.
#[derive(Debug, Clone)]
pub struct OptComparison {
    /// Q with the optimized placement (Eqs. 10–11).
    pub q_optimal: f64,
    /// Mean Q over the random placements.
    pub q_random: f64,
    /// `q_optimal / q_random − 1` (the paper reports ≈+30% for mixes 1–3
    /// and ≈+110% for mix 4 with 16 HTs on 256 nodes).
    pub improvement: f64,
    /// The optimized placement used.
    pub optimal_placement: Placement,
}

/// Compares the optimized placement of `m` Trojans against random
/// placements for one mix (Section V-C, second experiment).
#[must_use]
pub fn optimal_vs_random(cfg: &CampaignConfig, m: usize, random_seeds: &[u64]) -> OptComparison {
    let clean = run_clean_baseline(cfg);
    optimal_vs_random_with(cfg, m, random_seeds, &clean)
}

/// Like [`optimal_vs_random`] but against a caller-provided clean baseline.
/// Placement is not baseline-relevant (see [`CampaignConfig::baseline_id`]),
/// so one report covers the optimized and every random variant.
#[must_use]
pub fn optimal_vs_random_with(
    cfg: &CampaignConfig,
    m: usize,
    random_seeds: &[u64],
    clean: &PerformanceReport,
) -> OptComparison {
    let mesh = cfg.mesh();
    let manager = cfg.manager.resolve(mesh);
    // The optimizer may not use the manager's own router: Fig. 3/4 treat it
    // as off-limits (and a Trojan there is trivially optimal).
    let optimal = PlacementOptimizer::new(mesh, manager, m)
        .exclude(&[manager])
        .optimize();
    // Both variants run at the paper's evaluation ceiling of 0.9 infection
    // (Fig. 5's x axis tops out there): duty-cycling to 0.9 keeps the
    // attacker's stealth margin and keeps Q on the measured part of the
    // curve.
    let duty = 0.9;

    let mut opt_cfg = cfg.clone();
    opt_cfg.placement = Some(optimal.placement.clone());
    let q_optimal = run_campaign_with_baseline(&opt_cfg, duty, clean)
        .outcome
        .q_value;

    let mut q_sum = 0.0;
    for &seed in random_seeds {
        let mut rnd_cfg = cfg.clone();
        rnd_cfg.placement = Some(Placement::generate(
            mesh,
            m,
            &PlacementStrategy::Random { seed },
            &[manager],
        ));
        q_sum += run_campaign_with_baseline(&rnd_cfg, duty, clean)
            .outcome
            .q_value;
    }
    let q_random = q_sum / random_seeds.len().max(1) as f64;
    OptComparison {
        q_optimal,
        q_random,
        improvement: q_optimal / q_random - 1.0,
        optimal_placement: optimal.placement,
    }
}

/// The canonical placement list the Eq.-9 regression sweeps: clusters of
/// 4/8/16 Trojans around the manager, an off-center node and the corner,
/// plus one random placement per size. Deterministic in the mesh, so every
/// job enumerating the regression dataset sees the same placements.
#[must_use]
pub fn regression_placements(mesh: Mesh2d, manager: NodeId) -> Vec<Placement> {
    let mut placements = Vec::new();
    let anchors = [manager, NodeId(mesh.nodes() as u16 / 5), NodeId(0)];
    for m in [4usize, 8, 16] {
        for anchor in anchors {
            placements.push(Placement::generate(
                mesh,
                m,
                &PlacementStrategy::ClusterAround { anchor },
                &[manager],
            ));
        }
        placements.push(Placement::generate(
            mesh,
            m,
            &PlacementStrategy::Random { seed: m as u64 },
            &[manager],
        ));
    }
    placements
}

/// Builds the Eq.-9 regression dataset: for each mix and each placement
/// variant, runs a full campaign at the paper's evaluation ceiling (0.9
/// duty, matching Fig. 5's 0.9-infection axis) and records
/// (ρ, η, m, ΣΦ_victims, ΣΦ_attackers, Q).
#[must_use]
pub fn regression_dataset(
    base: &CampaignConfig,
    mixes: &[Mix],
    placements: &[Placement],
) -> Vec<AttackSample> {
    regression_dataset_with(base, mixes, placements, |cfg| {
        std::sync::Arc::new(run_clean_baseline(cfg))
    })
}

/// Like [`regression_dataset`] but resolving each mix's clean baseline
/// through `baseline_for` (e.g. a cross-job memoization cache). The
/// callback receives the per-mix configuration *before* any placement is
/// attached, so its [`CampaignConfig::baseline_id`] is the shared one.
#[must_use]
pub fn regression_dataset_with(
    base: &CampaignConfig,
    mixes: &[Mix],
    placements: &[Placement],
    mut baseline_for: impl FnMut(&CampaignConfig) -> std::sync::Arc<PerformanceReport>,
) -> Vec<AttackSample> {
    let table = DvfsTable::default_six_level();
    let mesh = base.mesh();
    let manager = base.manager.resolve(mesh);
    let mut samples = Vec::new();
    for &mix in mixes {
        let phi_attackers: f64 = mix
            .attackers()
            .iter()
            .map(|b| sensitivity_phi(&b.profile(), &table))
            .sum();
        let phi_victims: f64 = mix
            .victims()
            .iter()
            .map(|b| sensitivity_phi(&b.profile(), &table))
            .sum();
        let mut mix_cfg = base.clone();
        mix_cfg.mix = mix;
        let clean = baseline_for(&mix_cfg);
        for placement in placements {
            let mut cfg = mix_cfg.clone();
            cfg.placement = Some(placement.clone());
            let result = run_campaign_with_baseline(&cfg, 0.9, &clean);
            samples.push(AttackSample {
                rho: placement.distance_rho(mesh, manager).unwrap_or(0.0),
                eta: placement.density_eta(mesh).unwrap_or(0.0),
                m: placement.len() as f64,
                phi_victims,
                phi_attackers,
                q: result.outcome.q_value,
            });
        }
    }
    samples
}

/// Configuration of a resilience campaign: a Fig.-5-style attack campaign
/// run on top of a *faulty* NoC (seeded [`FaultPlan`] — link outages,
/// router stalls, bit flips, packet drops), with the global manager
/// optionally hardened against the resulting noise.
///
/// Both arms of the comparison — the Trojan-free baseline and the attacked
/// run — experience the **same** fault plan, so the derived Q isolates the
/// Trojan's effect on the degraded substrate rather than conflating it with
/// transport loss.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// The underlying campaign (mix, allocator, budget, Trojan rig).
    pub campaign: CampaignConfig,
    /// The fault plan injected into both runs.
    pub faults: FaultPlan,
    /// Manager hardening; `None` = the paper's trusting manager.
    pub hardening: Option<HardeningConfig>,
}

impl ResilienceConfig {
    /// A resilience rig over `campaign` with the given faults, manager not
    /// hardened.
    #[must_use]
    pub fn new(campaign: CampaignConfig, faults: FaultPlan) -> Self {
        ResilienceConfig {
            campaign,
            faults,
            hardening: None,
        }
    }

    /// Enables default manager hardening.
    #[must_use]
    pub fn hardened(mut self) -> Self {
        self.hardening = Some(HardeningConfig::default());
        self
    }
}

/// Outcome of one resilience campaign: the usual campaign result plus the
/// ground-truth fault tallies of each arm.
#[derive(Debug, Clone)]
pub struct ResilienceResult {
    /// Baseline, attacked run and attack metrics (as in [`run_campaign`],
    /// but with faults active in both arms).
    pub result: CampaignResult,
    /// Faults actually applied during the Trojan-free baseline.
    pub baseline_faults: FaultCounters,
    /// Faults actually applied during the attacked run.
    pub attacked_faults: FaultCounters,
    /// Manager degradation events (timeouts / rejects / clamps) during the
    /// attacked run's measurement window. All zero without hardening.
    pub degradation: DegradationCounters,
}

/// Runs one resilience campaign at a given Trojan duty fraction (0.0 =
/// Trojans dormant — the pure-faults arm of the sweep).
#[must_use]
pub fn run_resilient_campaign(rcfg: &ResilienceConfig, duty: f64) -> ResilienceResult {
    let cfg = &rcfg.campaign;

    // Baseline: same faults, no Trojan activity.
    let baseline_plan = rcfg.faults.with_fresh_counters();
    let baseline_counters = baseline_plan.counter_handle();
    let mut clean_sys = build_system_opts(cfg, TrojanFleet::clean(), rcfg.hardening);
    clean_sys.set_fault_hook(Box::new(baseline_plan));
    let clean = run_to_report(cfg, &mut clean_sys);

    // Attacked: same faults, Trojans at `duty`.
    let attacked_plan = rcfg.faults.with_fresh_counters();
    let attacked_counters = attacked_plan.counter_handle();
    let mut attacked_sys = build_attacked_system(cfg, duty, rcfg.hardening);
    attacked_sys.set_fault_hook(Box::new(attacked_plan));
    let attacked = run_to_report(cfg, &mut attacked_sys);

    let outcome = AttackOutcome::compare(&attacked, &clean)
        .expect("mixes always contain attackers and victims with live baselines");
    let degradation = DegradationCounters {
        timeouts: attacked.requests_timed_out,
        rejects: attacked.requests_rejected,
        clamps: attacked.requests_clamped,
    };
    ResilienceResult {
        result: CampaignResult {
            clean,
            attacked,
            outcome,
        },
        baseline_faults: baseline_counters.get(),
        attacked_faults: attacked_counters.get(),
        degradation,
    }
}

/// One grid cell of the resilience sweep (fault rate × allocator policy ×
/// hardening) — the data behind the attack-effect-under-faults curves.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    /// Allocation policy of this cell.
    pub allocator: AllocatorKind,
    /// Packet-drop fault rate in parts-per-million.
    pub drop_ppm: u32,
    /// Whether the manager was hardened.
    pub hardened: bool,
    /// Commanded Trojan duty fraction (0.0 = faults only).
    pub duty: f64,
    /// Measured infection rate of the attacked arm.
    pub infection: f64,
    /// Attack effect Q against the equally-faulty baseline.
    pub q_value: f64,
    /// Victim θ sum in the attacked arm.
    pub victim_theta: f64,
    /// Victim θ sum in the faulty-but-clean baseline.
    pub baseline_victim_theta: f64,
    /// Manager degradation events in the attacked arm's window.
    pub degradation: DegradationCounters,
    /// Ground-truth faults applied during the attacked arm.
    pub faults_applied: u64,
}

/// Computes one point of the resilience sweep: a campaign under a seeded
/// packet-drop plan at `drop_ppm`, with or without manager hardening.
/// Independent per point, like [`fig3_point`], so job schedulers can fan
/// the grid out.
#[must_use]
pub fn resilience_point(
    base: &CampaignConfig,
    drop_ppm: u32,
    fault_seed: u64,
    hardened: bool,
    duty: f64,
) -> ResiliencePoint {
    let faults = FaultPlan::new(fault_seed).with_drops(drop_ppm);
    let mut rcfg = ResilienceConfig::new(base.clone(), faults);
    if hardened {
        rcfg = rcfg.hardened();
    }
    let r = run_resilient_campaign(&rcfg, duty);
    ResiliencePoint {
        allocator: base.allocator,
        drop_ppm,
        hardened,
        duty,
        infection: r.result.outcome.infection_rate,
        q_value: r.result.outcome.q_value,
        victim_theta: r.result.attacked.victim_theta(),
        baseline_victim_theta: r.result.clean.victim_theta(),
        degradation: r.degradation,
        faults_applied: r.attacked_faults.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_id_covers_baseline_fields_and_ignores_attack_knobs() {
        let base = CampaignConfig::tiny(Mix::Mix1);
        // Attack-side knobs must not perturb the id: all duty points and
        // placement variants of one config share a single clean baseline.
        let mut attacked = base.clone();
        attacked.tamper_rule = TamperRule::ScalePercent(10);
        attacked.ht_mode = TrojanMode::PacketDrop;
        assert_eq!(base.baseline_id(), attacked.baseline_id());
        // Every baseline-relevant field must perturb it.
        for (label, cfg) in [
            ("nodes", {
                let mut c = base.clone();
                c.nodes = 64;
                c
            }),
            ("mix", CampaignConfig::tiny(Mix::Mix2)),
            ("manager", {
                let mut c = base.clone();
                c.manager = ManagerLocation::Corner;
                c
            }),
            ("allocator", {
                let mut c = base.clone();
                c.allocator = AllocatorKind::Greedy;
                c
            }),
            ("routing", {
                let mut c = base.clone();
                c.routing = RoutingKind::OddEven;
                c
            }),
            ("epoch", {
                let mut c = base.clone();
                c.epoch_cycles = Some(500);
                c
            }),
            ("budget", {
                let mut c = base.clone();
                c.budget_fraction = 0.7;
                c
            }),
            ("measure_epochs", {
                let mut c = base.clone();
                c.measure_epochs += 5;
                c
            }),
            ("seed", {
                let mut c = base.clone();
                c.seed ^= 1;
                c
            }),
        ] {
            assert_ne!(base.baseline_id(), cfg.baseline_id(), "{label}");
        }
    }

    #[test]
    fn shared_baseline_drivers_match_inline_baselines_bit_for_bit() {
        use std::sync::Arc;
        let cfg = CampaignConfig::tiny(Mix::Mix4);
        let clean = run_clean_baseline(&cfg);

        let inline_point = attack_sweep_point(&cfg, 0.5);
        let shared_point = attack_sweep_point_with_baseline(&cfg, 0.5, &clean);
        assert_eq!(
            inline_point.infection.to_bits(),
            shared_point.infection.to_bits()
        );
        assert_eq!(
            inline_point.q_value.to_bits(),
            shared_point.q_value.to_bits()
        );

        let inline_cmp = optimal_vs_random(&cfg, 3, &[1, 2]);
        let shared_cmp = optimal_vs_random_with(&cfg, 3, &[1, 2], &clean);
        assert_eq!(
            inline_cmp.q_optimal.to_bits(),
            shared_cmp.q_optimal.to_bits()
        );
        assert_eq!(inline_cmp.q_random.to_bits(), shared_cmp.q_random.to_bits());

        let mesh = cfg.mesh();
        let manager = cfg.manager.resolve(mesh);
        let placements = regression_placements(mesh, manager);
        let inline_samples = regression_dataset(&cfg, &[Mix::Mix4], &placements[..2]);
        let mut calls = 0;
        let shared_samples = regression_dataset_with(&cfg, &[Mix::Mix4], &placements[..2], |c| {
            calls += 1;
            Arc::new(run_clean_baseline(c))
        });
        assert_eq!(calls, 1, "one baseline per mix, shared across placements");
        assert_eq!(inline_samples.len(), shared_samples.len());
        for (a, b) in inline_samples.iter().zip(&shared_samples) {
            assert_eq!(a.q.to_bits(), b.q.to_bits());
        }
    }

    #[test]
    fn manager_location_resolution() {
        let mesh = Mesh2d::new(8, 8).unwrap();
        assert_eq!(ManagerLocation::Center.resolve(mesh), mesh.center());
        assert_eq!(ManagerLocation::Corner.resolve(mesh), NodeId(0));
        assert_eq!(ManagerLocation::At(NodeId(9)).resolve(mesh), NodeId(9));
    }

    #[test]
    fn zero_trojans_zero_infection() {
        let exp = InfectionExperiment::new(64);
        let p = exp.placement(0, &PlacementStrategy::CenterCluster);
        assert_eq!(exp.measure(&p), 0.0);
    }

    #[test]
    fn infection_grows_with_ht_count() {
        let exp = InfectionExperiment::new(64);
        let few = exp.measure_random_avg(2, &[1, 2]);
        let many = exp.measure_random_avg(24, &[1, 2]);
        assert!(many > few, "many {many} <= few {few}");
        assert!(many > 0.5, "24/64 random Trojans should catch most routes");
    }

    #[test]
    fn corner_manager_has_higher_infection() {
        // Fig. 3's headline: corner placement of the manager lengthens
        // routes and raises infection for the same HT count. The claim is
        // statistical (corner wins ~2/3 of individual placements, by +0.16
        // on average), so it is asserted on an average over a seed window
        // with a comfortable margin for the in-repo RNG stream.
        let seeds: Vec<u64> = (12..20).collect();
        let m = 8;
        let center = InfectionExperiment::new(64)
            .manager(ManagerLocation::Center)
            .measure_random_avg(m, &seeds);
        let corner = InfectionExperiment::new(64)
            .manager(ManagerLocation::Corner)
            .measure_random_avg(m, &seeds);
        assert!(
            corner > center,
            "corner {corner} should exceed center {center}"
        );
    }

    #[test]
    fn analytic_matches_simulation_for_xy() {
        let exp = InfectionExperiment::new(64);
        for seed in [5u64, 9] {
            let p = exp.placement(6, &PlacementStrategy::Random { seed });
            let simulated = exp.measure(&p);
            let analytic = htpb_attack::analytic_infection_rate(
                exp.mesh(),
                exp.manager_node(),
                p.nodes(),
                None,
            );
            assert!(
                (simulated - analytic).abs() < 1e-9,
                "seed {seed}: sim {simulated} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fig3_series_shape() {
        let s = fig3_series(64, ManagerLocation::Center, &[0, 4, 16], &[1, 2]);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.points[0].1, 0.0);
        assert!(s.is_monotonic_nondecreasing());
    }

    #[test]
    fn resilience_point_faults_only_stays_near_baseline() {
        // 1% packet drops and no Trojan: the hardened manager's hold-last-
        // grant keeps victim throughput close to the equally-faulty
        // baseline, Q ≈ 0, and the fault/degradation tallies are live.
        let base = CampaignConfig::tiny(Mix::Mix1);
        let p = resilience_point(&base, 10_000, 0xFA_017, true, 0.0);
        assert!(p.faults_applied > 0, "1% drops over a run must fire");
        assert!(p.infection < 0.05, "dormant Trojans, near-zero infection");
        assert!(
            (p.q_value - 1.0).abs() < 0.35,
            "faults alone should not look like an attack: Q = {}",
            p.q_value
        );
        let ratio = p.victim_theta / p.baseline_victim_theta;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "victim theta ratio {ratio} out of graceful-degradation bound"
        );
    }

    #[test]
    fn resilient_campaign_is_deterministic() {
        let base = CampaignConfig::tiny(Mix::Mix1);
        let run = || {
            let p = resilience_point(&base, 20_000, 7, true, 0.9);
            (
                p.q_value.to_bits(),
                p.infection.to_bits(),
                p.faults_applied,
                p.degradation,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fig4_center_beats_corner_distribution() {
        let sizes = [64u32];
        let center = fig4_series(
            &sizes,
            "HTs around the center",
            |_| PlacementStrategy::CenterCluster,
            16,
            &[1],
        );
        let corner = fig4_series(
            &sizes,
            "HTs in one corner",
            |_| PlacementStrategy::CornerCluster,
            16,
            &[1],
        );
        assert!(center.points[0].1 > corner.points[0].1);
    }
}
