//! Human-readable descriptions of the evaluation platform: the paper's
//! configuration tables rendered from the *actual* defaults in code, so the
//! printed platform can never drift from the simulated one.

use htpb_attack::{sensitivity_phi, Mix};
use htpb_manycore::{Benchmark, SystemConfig};
use htpb_noc::RouterConfig;
use htpb_power::{DvfsTable, PowerModel};

/// Renders the Table-I-equivalent platform configuration.
#[must_use]
pub fn describe_platform(config: &SystemConfig) -> String {
    let router = RouterConfig::default();
    let model = PowerModel::default_45nm();
    let mut s = String::new();
    s.push_str("Platform configuration (cf. paper Table I)\n");
    s.push_str(&format!(
        "  processors           : {} ({}x{} mesh, node {} is the global manager)\n",
        config.mesh.nodes(),
        config.mesh.width(),
        config.mesh.height(),
        config.manager.raw(),
    ));
    s.push_str(&format!(
        "  DVFS                 : {} levels, {:.0} mW – {:.0} mW per core\n",
        model.table().levels(),
        model.min_power_mw(),
        model.peak_power_mw(),
    ));
    s.push_str(&format!(
        "  power budgeting      : {} allocator, epoch {} cycles, budget {}\n",
        config.allocator.name(),
        config.epoch_cycles,
        config.budget_mw.map_or_else(
            || format!("{:.0}% of honest demand", config.budget_fraction * 100.0),
            |mw| format!("{mw:.0} mW")
        ),
    ));
    s.push_str(&format!(
        "  NoC                  : {:?} routing, {} VCs x {}-flit buffers, 2-cycle routers, 1-cycle links\n",
        config.routing, router.vcs, router.buffer_depth,
    ));
    s.push_str(&format!(
        "  memory               : L2 hit {} cycles, memory {} cycles, {} traffic model\n",
        config.l2_hit_latency,
        config.memory_latency,
        if config.detailed_caches {
            "detailed (L1 + MESI directory)"
        } else {
            "rate-based"
        },
    ));
    s
}

/// Renders the Table-II benchmark suite with each profile's key parameters
/// and power-budget sensitivity (Definition 5).
#[must_use]
pub fn describe_benchmarks() -> String {
    let table = DvfsTable::default_six_level();
    let mut s = String::new();
    s.push_str("Benchmark suite (cf. paper Table II)\n");
    s.push_str("  name            CPI_comp  t_mem(ns)  L2/kinstr  sensitivity Phi\n");
    let mut rows: Vec<(Benchmark, f64)> = Benchmark::ALL
        .iter()
        .map(|b| (*b, sensitivity_phi(&b.profile(), &table)))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (b, phi) in rows {
        let p = b.profile();
        s.push_str(&format!(
            "  {:<15} {:>8.2} {:>10.3} {:>10.1} {:>14.3}\n",
            b.name(),
            p.cpi_compute,
            p.mem_ns_per_instr,
            p.l2_accesses_per_kinstr,
            phi,
        ));
    }
    s
}

/// Renders the Table-III mixes.
#[must_use]
pub fn describe_mixes() -> String {
    let mut s = String::new();
    s.push_str("Benchmark combinations (cf. paper Table III)\n");
    for mix in Mix::ALL {
        let attackers: Vec<&str> = mix.attackers().iter().map(|b| b.name()).collect();
        let victims: Vec<&str> = mix.victims().iter().map(|b| b.name()).collect();
        s.push_str(&format!(
            "  {}: attackers [{}], victims [{}]\n",
            mix.name(),
            attackers.join(", "),
            victims.join(", "),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_noc::Mesh2d;

    #[test]
    fn platform_description_reflects_config() {
        let mesh = Mesh2d::new(16, 16).unwrap();
        let mut config = SystemConfig::new(mesh);
        config.budget_mw = Some(123_456.0);
        let s = describe_platform(&config);
        assert!(s.contains("256 (16x16 mesh"));
        assert!(s.contains("123456 mW"));
        assert!(s.contains("greedy allocator"));
        assert!(s.contains("4 VCs x 5-flit buffers"));
    }

    #[test]
    fn benchmark_table_lists_all_eleven_sorted_by_sensitivity() {
        let s = describe_benchmarks();
        for b in Benchmark::ALL {
            assert!(s.contains(b.name()), "{} missing", b.name());
        }
        // Most sensitive (compute-bound) first.
        let swaptions = s.find("swaptions").unwrap();
        let canneal = s.find("canneal").unwrap();
        assert!(swaptions < canneal);
    }

    #[test]
    fn mix_table_matches_table_iii() {
        let s = describe_mixes();
        assert!(
            s.contains("mix-4: attackers [barnes, streamcluster, freqmine], victims [raytrace]")
        );
        assert!(s.contains("mix-3: attackers [canneal]"));
    }
}
