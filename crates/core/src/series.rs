use serde::{Deserialize, Serialize};

/// A labelled (x, y) data series — one line of a paper figure.
///
/// Serialisable so bench harnesses can dump figure data as JSON, and
/// printable as aligned text columns for terminal output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. "GM in the center").
    pub label: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the largest x, if any.
    #[must_use]
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }

    /// Whether y never decreases along x (used by shape checks in tests).
    #[must_use]
    pub fn is_monotonic_nondecreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9)
    }

    /// Renders the series as `x<TAB>y` lines, prefixed by a `# label`
    /// comment — the format the bench binaries print.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut s = format!("# {}\n", self.label);
        for (x, y) in &self.points {
            s.push_str(&format!("{x:.4}\t{y:.4}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_shape_checks() {
        let mut s = Series::new("test");
        s.push(0.0, 0.1);
        s.push(1.0, 0.5);
        s.push(2.0, 0.5);
        assert!(s.is_monotonic_nondecreasing());
        assert_eq!(s.last_y(), Some(0.5));
        s.push(3.0, 0.2);
        assert!(!s.is_monotonic_nondecreasing());
    }

    #[test]
    fn table_format() {
        let mut s = Series::new("lbl");
        s.push(1.0, 2.0);
        let t = s.to_table();
        assert!(t.starts_with("# lbl\n"));
        assert!(t.contains("1.0000\t2.0000"));
    }

    #[test]
    fn clone_and_eq() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        assert_eq!(s.clone(), s);
    }
}
