//! End-to-end experiment facade for the SOCC 2018 reproduction of
//! *"On a New Hardware Trojan Attack on Power Budgeting of Many Core
//! Systems"* (Zhao et al.).
//!
//! This crate ties the substrates together — the flit-level NoC
//! ([`htpb_noc`]), the power-budgeting subsystem ([`htpb_power`]), the
//! tiled many-core simulator ([`htpb_manycore`]), the hardware-Trojan model
//! ([`htpb_trojan`]) and the attack metrics ([`htpb_attack`]) — into the
//! experiments of the paper's evaluation (Section V):
//!
//! | Paper artefact | API |
//! |---|---|
//! | Fig. 3 (infection vs. #HTs, manager location)   | [`experiments::fig3_series`] |
//! | Fig. 4 (infection vs. HT distribution)          | [`experiments::fig4_series`] |
//! | Fig. 5 (Q vs. infection rate per mix)           | [`experiments::attack_sweep`] |
//! | Fig. 6 (per-app Θ vs. infection rate)           | [`experiments::attack_sweep`] |
//! | Section V-C optimal-vs-random placement         | [`experiments::optimal_vs_random`] |
//! | Eq. 9 regression                                | [`experiments::regression_dataset`] |
//! | Section III-D area/power                        | re-exported [`htpb_trojan::area`] |
//!
//! The crate re-exports the most-used types of every layer so downstream
//! code can depend on `htpb_core` alone.
//!
//! ```
//! use htpb_core::{InfectionExperiment, ManagerLocation, PlacementStrategy};
//!
//! let exp = InfectionExperiment::new(64).manager(ManagerLocation::Center);
//! let placement = exp.placement(8, &PlacementStrategy::Random { seed: 1 });
//! let rate = exp.measure(&placement);
//! assert!((0.0..=1.0).contains(&rate));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod platform;
mod series;

pub use experiments::{
    attack_sweep, attack_sweep_point, fig3_label, fig3_point, fig3_series, fig4_point, fig4_series,
    optimal_vs_random, regression_dataset, regression_placements, resilience_point, run_campaign,
    run_campaign_with_baseline, run_clean_baseline, run_resilient_campaign, AttackSweepPoint,
    CampaignConfig, CampaignResult, InfectionExperiment, ManagerLocation, OptComparison,
    ResilienceConfig, ResiliencePoint, ResilienceResult,
};
pub use platform::{describe_benchmarks, describe_mixes, describe_platform};
pub use series::Series;

// Facade re-exports: one `use htpb_core::…` serves most downstream code.
pub use htpb_attack::{
    analytic_infection_rate, attack_effect, density_eta, distance_rho, performance_change,
    sensitivity_phi, virtual_center, AttackModel, AttackOutcome, AttackSample, AttackSurface,
    LinearModel, Mix, Placement, PlacementCandidate, PlacementOptimizer, PlacementStrategy,
};
pub use htpb_defense::{
    AnomalyEvent, DefenseSuite, DetectorConfig, LocalizationReport, ProbeCampaign, ProbePlan,
    RequestAnomalyDetector, SuiteVerdict, TrojanLocalizer,
};
pub use htpb_faults::{FaultCounters, FaultPlan};
pub use htpb_manycore::{
    AppId, AppPerformance, AppRole, Application, Benchmark, BenchmarkProfile, ManyCoreSystem,
    ManycoreError, PerformanceReport, RequestProtection, SystemBuilder, SystemConfig, Workload,
};
pub use htpb_noc::{
    ActivationSignal, Coord, Direction, Mesh2d, Network, NetworkConfig, NocError, NodeId, Packet,
    PacketInspector, PacketKind, RouterConfig, RoutingKind,
};
pub use htpb_power::{
    AllocatorKind, DegradationCounters, DvfsTable, FrequencyLevel, GlobalManager, HardeningConfig,
    PowerAllocator, PowerModel, PowerRequest, RequestEnvelope,
};
pub use htpb_trojan::{
    ActivationSchedule, AreaReport, BoostRule, HardwareTrojan, TamperRule, TrojanFleet, TrojanMode,
    HT_AREA_UM2, HT_POWER_UW, ROUTER_AREA_UM2, ROUTER_POWER_UW,
};
