//! Content-addressed on-disk result cache.
//!
//! Layout: one JSON file per completed job under `<outdir>/.cache/`, named
//! `<kind>-<key>.json` where `key` is the 16-hex-digit FNV-1a hash of the
//! job's canonical id string plus [`SCHEMA_VERSION`]. Because the id
//! encodes every result-affecting parameter, a cache hit is always safe to
//! reuse; changing any parameter (or bumping the schema) changes the key.
//!
//! Writes go through a temp file + rename so an interrupted run never
//! leaves a truncated entry — a killed `repro_all` resumes by rerunning
//! only the jobs whose files are missing. Corrupt or unreadable entries
//! are treated as misses and silently recomputed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::hash::fnv1a64_parts;
use crate::job::{JobOutput, JobSpec};
use crate::json;

/// Bump when the meaning or encoding of any cached result changes; every
/// existing entry then misses and is recomputed.
pub const SCHEMA_VERSION: u32 = 1;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The conventional cache location for an output directory:
    /// `<outdir>/.cache`.
    pub fn for_outdir(outdir: &Path) -> io::Result<ResultCache> {
        ResultCache::open(outdir.join(".cache"))
    }

    /// The cache key of a spec: FNV-1a over (schema version, job id).
    #[must_use]
    pub fn key(spec: &JobSpec) -> u64 {
        fnv1a64_parts(&[&SCHEMA_VERSION.to_string(), &spec.id()])
    }

    /// The on-disk path an entry for `spec` would use.
    #[must_use]
    pub fn entry_path(&self, spec: &JobSpec) -> PathBuf {
        self.dir
            .join(format!("{}-{:016x}.json", spec.kind(), Self::key(spec)))
    }

    /// Loads a cached result. `None` on miss *or* on a corrupt entry.
    #[must_use]
    pub fn load(&self, spec: &JobSpec) -> Option<JobOutput> {
        let text = fs::read_to_string(self.entry_path(spec)).ok()?;
        let value = json::parse(&text).ok()?;
        // The stored id must match, both as a hash-collision guard and so
        // a hand-edited file for the wrong job can't be served.
        if value.get("id")?.as_str()? != spec.id() {
            return None;
        }
        JobOutput::from_json(value.get("output")?)
    }

    /// Stores a result atomically (temp file + rename).
    pub fn store(&self, spec: &JobSpec, output: &JobOutput) -> io::Result<()> {
        let body = json::Value::obj(vec![
            ("schema", json::Value::Int(i64::from(SCHEMA_VERSION))),
            ("id", json::Value::Str(spec.id())),
            ("output", output.to_json()),
        ]);
        let path = self.entry_path(spec);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, body.render() + "\n")?;
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ht_count: usize) -> JobSpec {
        JobSpec::Fig3Point {
            nodes: 64,
            corner: false,
            ht_count,
            seeds: vec![0, 1, 2],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htpb-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        assert_eq!(ResultCache::key(&spec(5)), ResultCache::key(&spec(5)));
        assert_ne!(ResultCache::key(&spec(5)), ResultCache::key(&spec(6)));
    }

    #[test]
    fn store_load_roundtrip_and_miss_on_corruption() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec(5);
        assert_eq!(cache.load(&s), None);
        let out = JobOutput::Rate(0.25);
        cache.store(&s, &out).unwrap();
        assert_eq!(cache.load(&s), Some(out));
        // A different spec misses even with the directory populated.
        assert_eq!(cache.load(&spec(6)), None);
        // Corruption degrades to a miss, not an error.
        fs::write(cache.entry_path(&s), "{not json").unwrap();
        assert_eq!(cache.load(&s), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
