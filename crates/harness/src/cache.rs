//! Content-addressed on-disk result cache.
//!
//! Layout: one JSON file per completed job under `<outdir>/.cache/`, named
//! `<kind>-<key>.json` where `key` is the 16-hex-digit FNV-1a hash of the
//! job's canonical id string plus [`SCHEMA_VERSION`]. Because the id
//! encodes every result-affecting parameter, a cache hit is always safe to
//! reuse; changing any parameter (or bumping the schema) changes the key.
//!
//! Writes go through [`crate::fs::commit_file`] (unique temp file, fsync,
//! rename, dir-fsync), so an interrupted run never leaves a truncated
//! entry and two processes racing on the same entry both succeed. Each
//! entry carries an FNV-1a-64 checksum of its payload, verified on load;
//! corrupt, doctored or unreadable entries degrade to a miss and are
//! recomputed. [`ResultCache::invalidate`] removes an entry outright —
//! recovery uses it to distrust the on-disk state of jobs whose journal
//! shows a `job_start` with no `job_done`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::fs::{commit_file, std_fs, Fs};
use crate::hash::{fnv1a64, fnv1a64_parts};
use crate::job::{JobOutput, JobSpec};
use crate::json;

/// Bump when the meaning or encoding of any cached result changes; every
/// existing entry then misses and is recomputed. v2: entries are
/// checksummed and committed durably.
pub const SCHEMA_VERSION: u32 = 2;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    fs: Arc<dyn Fs>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        ResultCache::open_with_fs(dir, std_fs())
    }

    /// Opens the cache on an explicit [`Fs`] (fault-injection tests).
    pub fn open_with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn Fs>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        Ok(ResultCache { dir, fs })
    }

    /// The conventional cache location for an output directory:
    /// `<outdir>/.cache`.
    pub fn for_outdir(outdir: &Path) -> io::Result<ResultCache> {
        ResultCache::open(outdir.join(".cache"))
    }

    /// The cache key of a spec: FNV-1a over (schema version, job id).
    #[must_use]
    pub fn key(spec: &JobSpec) -> u64 {
        fnv1a64_parts(&[&SCHEMA_VERSION.to_string(), &spec.id()])
    }

    /// The on-disk path an entry for `spec` would use.
    #[must_use]
    pub fn entry_path(&self, spec: &JobSpec) -> PathBuf {
        self.dir
            .join(format!("{}-{:016x}.json", spec.kind(), Self::key(spec)))
    }

    /// Loads a cached result. `None` on miss *or* on a corrupt entry
    /// (bad JSON, checksum mismatch, or an id that doesn't match).
    #[must_use]
    pub fn load(&self, spec: &JobSpec) -> Option<JobOutput> {
        let bytes = self.fs.read(&self.entry_path(spec)).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        let value = json::parse(&text).ok()?;
        // The stored id must match, both as a hash-collision guard and so
        // a hand-edited file for the wrong job can't be served.
        if value.get("id")?.as_str()? != spec.id() {
            return None;
        }
        let payload = value.get("output")?;
        let stored = value.get("fnv")?.as_str()?;
        if stored != format!("{:016x}", fnv1a64(payload.render().as_bytes())) {
            return None;
        }
        JobOutput::from_json(payload)
    }

    /// Stores a result durably via the commit protocol. The entry embeds
    /// an FNV-1a-64 checksum of the rendered output payload.
    pub fn store(&self, spec: &JobSpec, output: &JobOutput) -> io::Result<()> {
        let payload = output.to_json();
        let digest = format!("{:016x}", fnv1a64(payload.render().as_bytes()));
        let body = json::Value::obj(vec![
            ("schema", json::Value::Int(i64::from(SCHEMA_VERSION))),
            ("id", json::Value::Str(spec.id())),
            ("fnv", json::Value::Str(digest)),
            ("output", payload),
        ]);
        commit_file(
            self.fs.as_ref(),
            &self.entry_path(spec),
            (body.render() + "\n").as_bytes(),
        )
    }

    /// Removes the entry for `spec`, if any. Recovery calls this for
    /// every interrupted job (`job_start` without `job_done`): state
    /// written by a process that died mid-job is never trusted, even if
    /// the entry happens to read back clean.
    pub fn invalidate(&self, spec: &JobSpec) -> io::Result<()> {
        self.fs.remove_file(&self.entry_path(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn spec(ht_count: usize) -> JobSpec {
        JobSpec::Fig3Point {
            nodes: 64,
            corner: false,
            ht_count,
            seeds: vec![0, 1, 2],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htpb-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        assert_eq!(ResultCache::key(&spec(5)), ResultCache::key(&spec(5)));
        assert_ne!(ResultCache::key(&spec(5)), ResultCache::key(&spec(6)));
    }

    #[test]
    fn store_load_roundtrip_and_miss_on_corruption() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec(5);
        assert_eq!(cache.load(&s), None);
        let out = JobOutput::Rate(0.25);
        cache.store(&s, &out).unwrap();
        assert_eq!(cache.load(&s), Some(out));
        // A different spec misses even with the directory populated.
        assert_eq!(cache.load(&spec(6)), None);
        // Corruption degrades to a miss, not an error.
        fs::write(cache.entry_path(&s), "{not json").unwrap();
        assert_eq!(cache.load(&s), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_guards_against_doctored_payload() {
        let dir = tmpdir("checksum");
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec(5);
        cache.store(&s, &JobOutput::Rate(0.25)).unwrap();
        // Flip a payload digit while keeping the JSON valid: the embedded
        // checksum no longer matches, so the entry reads as a miss.
        let path = cache.entry_path(&s);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("0.25"));
        fs::write(&path, text.replace("0.25", "0.26")).unwrap();
        assert_eq!(cache.load(&s), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_forces_a_miss() {
        let dir = tmpdir("invalidate");
        let cache = ResultCache::open(&dir).unwrap();
        let s = spec(5);
        cache.store(&s, &JobOutput::Rate(0.5)).unwrap();
        assert!(cache.load(&s).is_some());
        cache.invalidate(&s).unwrap();
        assert_eq!(cache.load(&s), None);
        // Invalidating a missing entry is not an error.
        cache.invalidate(&s).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
