//! The durable-write choke point: every byte the harness persists goes
//! through [`commit_file`] / [`commit_append`] on an injectable [`Fs`].
//!
//! Crash-safety discipline (ALICE-style): a campaign may be SIGKILLed at
//! any instruction, so no durable file may ever be observable in a torn
//! state. The two commit primitives guarantee that:
//!
//! - [`commit_file`] — *atomic replace*: write a uniquely-named temp file
//!   in the target directory, fsync it, rename it over the target, fsync
//!   the directory. Readers see either the old content or the new content,
//!   never a mixture; a crash at any point leaves at worst a stray
//!   `*.tmp.*` file. The temp name embeds the process id and a per-process
//!   counter, so two processes (or threads) committing the same target
//!   concurrently both succeed — last rename wins with a complete file.
//! - [`commit_append`] — *single durable append*: the record is written
//!   with one `O_APPEND` write and fsynced. A crash can tear at most the
//!   record being written, and only at the tail; the journal's per-record
//!   framing ([`crate::journal`]) detects exactly that.
//!
//! Production uses [`StdFs`]. Tests and the chaos harness inject
//! [`FaultyFs`], which fails deterministic operation indices with ENOSPC,
//! short (torn) writes or failed renames — the property locked by
//! `crates/harness/tests/crash_safety.rs` is that every injected fault
//! leaves the old state or the new state on re-read, never a torn one.
//!
//! **Enforcement:** no other module under `crates/harness/src` may call
//! `File::create`, `fs::write`, `fs::rename` or `OpenOptions` directly
//! (outside `#[cfg(test)]` code, which deliberately corrupts files). The
//! `fs/choke-point` rule of the workspace analyzer (docs/LINTS.md)
//! checks this at the token level; the `choke_point_enforced` test in
//! `tests/crash_safety.rs` runs that rule, and this file is the single
//! waived-by-scope exception.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Filesystem operations the harness needs for durable state. Implemented
/// by [`StdFs`] in production and [`FaultyFs`] under fault injection.
///
/// The trait captures *write-side* semantics precisely (what is durable
/// when) so the commit protocol can be tested against an adversarial
/// implementation; reads are included so corrupt-entry handling can be
/// driven through the same injector.
pub trait Fs: Send + Sync + std::fmt::Debug {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates `path`, writes `bytes`, fsyncs the file.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path` (creating it if needed) with a single
    /// `O_APPEND` write, then fsyncs the file.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` onto `to` (atomic replace on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs a directory so a preceding rename/create in it is durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Recursively creates a directory.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file; `Ok` if it does not exist.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: real I/O with real fsyncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl Fs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to make a rename in it durable. On platforms where directories
        // cannot be opened (Windows), skip — rename metadata is already
        // durable enough there.
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// The shared production instance, cloned into every component that does
/// not get an explicit [`Fs`] injected.
#[must_use]
pub fn std_fs() -> Arc<dyn Fs> {
    Arc::new(StdFs)
}

/// Per-process counter making concurrent temp names unique (two threads of
/// one process committing the same target must not collide either).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The unique temp path a [`commit_file`] for `path` uses.
fn tmp_path_for(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file = path.file_name().map_or_else(
        || "commit".to_string(),
        |f| f.to_string_lossy().into_owned(),
    );
    path.with_file_name(format!(".{file}.tmp.{}.{n}", std::process::id()))
}

/// Atomically replaces `path` with `bytes`: unique temp file in the same
/// directory, fsync, rename over the target, fsync the directory. On any
/// error the temp file is removed (best effort) and `path` is untouched.
pub fn commit_file(fs: &dyn Fs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path_for(path);
    let commit = (|| {
        fs.write_file(&tmp, bytes)?;
        fs.rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs.sync_dir(parent)?;
            }
        }
        Ok(())
    })();
    if commit.is_err() {
        let _ = fs.remove_file(&tmp);
    }
    commit
}

/// Durably appends one record to `path` (single `O_APPEND` write + fsync).
/// A crash can tear at most this record, and only at the file's tail.
pub fn commit_append(fs: &dyn Fs, path: &Path, record: &[u8]) -> io::Result<()> {
    fs.append(path, record)
}

/// One injected filesystem fault, applied to a specific operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFault {
    /// The operation fails up front (ENOSPC); no bytes reach the disk.
    Enospc,
    /// A write persists only the first `keep` bytes, then fails — the torn
    /// write a power cut mid-`write(2)` can leave.
    ShortWrite {
        /// Bytes that do land before the failure.
        keep: usize,
    },
    /// A rename fails after the temp file was written (crash between the
    /// `write` and the `rename`): the target keeps its old content and the
    /// temp file is left behind.
    FailRename,
}

/// Deterministic fault injector wrapping an inner [`Fs`].
///
/// Every mutating operation (write/append/rename) increments an operation
/// counter; when the counter matches a scheduled `(op_index, fault)` entry
/// the fault is applied instead. Reads, syncs and directory operations
/// pass through (they cannot tear state). The schedule is explicit data,
/// so a failing case replays exactly.
#[derive(Debug)]
pub struct FaultyFs {
    inner: Arc<dyn Fs>,
    schedule: Mutex<Vec<(u64, FsFault)>>,
    op: AtomicU64,
}

impl FaultyFs {
    /// Wraps `inner` with a fault schedule of `(operation index, fault)`
    /// pairs. Operation indices count mutating calls (write_file, append,
    /// rename) starting from 0.
    #[must_use]
    pub fn new(inner: Arc<dyn Fs>, schedule: Vec<(u64, FsFault)>) -> FaultyFs {
        FaultyFs {
            inner,
            schedule: Mutex::new(schedule),
            op: AtomicU64::new(0),
        }
    }

    /// Mutating operations performed (or faulted) so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.op.load(Ordering::Relaxed)
    }

    /// The fault scheduled for the current operation, if any.
    fn take_fault(&self) -> Option<FsFault> {
        let index = self.op.fetch_add(1, Ordering::Relaxed);
        let mut schedule = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
        let at = schedule.iter().position(|(i, _)| *i == index)?;
        Some(schedule.swap_remove(at).1)
    }
}

fn enospc() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "injected: no space left")
}

impl Fs for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.take_fault() {
            None => self.inner.write_file(path, bytes),
            Some(FsFault::Enospc | FsFault::FailRename) => Err(enospc()),
            Some(FsFault::ShortWrite { keep }) => {
                let keep = keep.min(bytes.len());
                let _ = self.inner.write_file(path, &bytes[..keep]);
                Err(enospc())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.take_fault() {
            None => self.inner.append(path, bytes),
            Some(FsFault::Enospc | FsFault::FailRename) => Err(enospc()),
            Some(FsFault::ShortWrite { keep }) => {
                let keep = keep.min(bytes.len());
                let _ = self.inner.append(path, &bytes[..keep]);
                Err(enospc())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.take_fault() {
            None => self.inner.rename(from, to),
            // Any scheduled fault on a rename means the rename did not
            // happen: old target content survives, temp file remains.
            Some(_) => Err(enospc()),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("htpb-fs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn commit_file_replaces_atomically_and_leaves_no_tmp() {
        let dir = tmpdir("commit");
        let fs = StdFs;
        let target = dir.join("entry.json");
        commit_file(&fs, &target, b"old").unwrap();
        assert_eq!(fs.read(&target).unwrap(), b"old");
        commit_file(&fs, &target, b"new content").unwrap();
        assert_eq!(fs.read(&target).unwrap(), b"new content");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_commits_to_one_target_both_succeed() {
        let dir = tmpdir("race");
        let target = dir.join("entry.json");
        std::thread::scope(|scope| {
            for payload in [&b"aaaaaaaa"[..], &b"bbbbbbbb"[..]] {
                let target = target.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        commit_file(&StdFs, &target, payload).unwrap();
                    }
                });
            }
        });
        let last = StdFs.read(&target).unwrap();
        assert!(last == b"aaaaaaaa" || last == b"bbbbbbbb", "torn: {last:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_fs_applies_scheduled_faults_once() {
        let dir = tmpdir("faulty");
        let fs = FaultyFs::new(
            Arc::new(StdFs),
            vec![(0, FsFault::Enospc), (2, FsFault::ShortWrite { keep: 2 })],
        );
        let a = dir.join("a");
        assert!(fs.write_file(&a, b"first").is_err(), "op 0 faults");
        assert!(fs.write_file(&a, b"second").is_ok(), "op 1 clean");
        assert!(fs.write_file(&a, b"third").is_err(), "op 2 short-writes");
        assert_eq!(fs.read(&a).unwrap(), b"th", "short write left a torn file");
        assert!(fs.write_file(&a, b"fourth").is_ok(), "schedule exhausted");
        assert_eq!(fs.ops(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rename_keeps_old_target_and_cleans_tmp() {
        let dir = tmpdir("failrename");
        let target = dir.join("entry.json");
        commit_file(&StdFs, &target, b"old").unwrap();
        // Op 0 = temp write (clean), op 1 = rename (faulted).
        let fs = FaultyFs::new(Arc::new(StdFs), vec![(1, FsFault::FailRename)]);
        assert!(commit_file(&fs, &target, b"new").is_err());
        assert_eq!(StdFs.read(&target).unwrap(), b"old", "old state survives");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
