//! `htpb-harness` — parallel, resumable experiment-campaign orchestration
//! for the SOCC 2018 hardware-Trojan power-budgeting reproduction.
//!
//! The crate turns the experiment drivers of `htpb_core::experiments` into
//! first-class, schedulable **jobs**:
//!
//! - [`JobSpec`] / [`JobOutput`] — one experiment point as a pure function
//!   of its parameters and seeds ([`job`]);
//! - [`run_jobs`] — a fixed-size worker pool with per-job
//!   `catch_unwind` isolation; results return in job order, so parallel
//!   campaigns are byte-identical to sequential ones ([`runner`]);
//! - [`ResultCache`] — a content-addressed on-disk cache under
//!   `<outdir>/.cache/`; re-runs skip completed points and interrupted
//!   campaigns resume ([`cache`]);
//! - [`BaselineCache`] — cross-job memoization of clean baseline
//!   campaigns (in-process + on-disk), so per-point sweep jobs share one
//!   baseline per configuration instead of recomputing it ([`baseline`]);
//! - [`Journal`] — an append-only, checksummed run journal at
//!   `<outdir>/journal.jsonl` with per-job lifecycle events and per-stage
//!   timings ([`journal`]);
//! - [`commit_file`] / [`commit_append`] — the durable-write choke points
//!   (tmp + fsync + rename + dir-fsync) every artefact, cache entry and
//!   journal record goes through, over an injectable [`Fs`] so tests can
//!   schedule `ENOSPC`, short writes and torn renames ([`fs`]);
//! - [`Campaign`] — crash-safe campaign lifecycle: journal-driven
//!   recovery of interrupted jobs, checkpointed resume, durable artefact
//!   emission and post-run verification ([`campaign`]);
//! - [`run_repro`] / [`run_repro_sequential`] — the whole `repro_all`
//!   campaign planned as jobs, plus the legacy sequential reference path
//!   ([`repro`]);
//! - [`run_resilience_sweep`] — the fault-injection campaign: attack
//!   effect and graceful degradation across *fault rate × allocator ×
//!   hardening* ([`resilience`]);
//! - [`HarnessArgs`] — the shared `--jobs` / `--no-cache` / `--resume` /
//!   `--job-timeout` / `--retries` / `--metrics` flag parser ([`cli`]);
//! - [`obs`] — pool-level metrics (job latency, queue depth, cache hit
//!   rates) and the `metrics.prom` / `run_end` JSON / stderr expositions
//!   of the `htpb-obs` registry (see `docs/OBSERVABILITY.md`).
//!
//! See `docs/HARNESS.md` for the job model, cache layout and journal
//! schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod campaign;
pub mod cli;
pub mod fs;
pub mod hash;
pub mod job;
pub mod journal;
pub mod json;
pub mod obs;
pub mod repro;
pub mod resilience;
pub mod runner;

pub use baseline::BaselineCache;
pub use cache::{ResultCache, SCHEMA_VERSION};
pub use campaign::{verify_artefacts, Campaign, VerifyReport};
pub use cli::HarnessArgs;
pub use fs::{commit_append, commit_file, std_fs, FaultyFs, Fs, FsFault, StdFs};
pub use job::{CampaignScale, Fig4Strategy, JobOutput, JobSpec};
pub use journal::{Journal, StageTally};
pub use repro::{
    cache_for, ensure_outdir, run_repro, run_repro_sequential, ReproOutcome, ReproPlan, ReproScale,
};
pub use resilience::{run_resilience_plan, run_resilience_sweep, ResiliencePlan};
pub use runner::{retry_delay_ms, run_jobs, JobReport, RunOptions};
