//! The full-reproduction campaign (`repro_all`) expressed as harness jobs.
//!
//! [`ReproPlan::plan`] enumerates every figure/table of the paper as
//! independent [`JobSpec`]s; [`run_repro`] executes them on the worker pool
//! (cached, journalled, resumable) and [`run_repro_sequential`] computes the
//! same artefacts through the legacy whole-series drivers. Both paths feed
//! one shared emission routine, and every job is a pure function of its
//! spec, so the two produce **byte-identical** TSVs and `SUMMARY.txt` — the
//! property `integration_harness.rs` locks in.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;

use htpb_attack::{AttackModel, AttackSample, Mix};
use htpb_core::experiments::{
    attack_sweep, fig3_label, fig3_series, fig4_series, optimal_vs_random, regression_dataset,
    regression_placements, ManagerLocation,
};
use htpb_core::Series;
use htpb_trojan::AreaReport;

use crate::cache::ResultCache;
use crate::campaign::Campaign;
use crate::fs::std_fs;
use crate::job::{CampaignScale, Fig4Strategy, JobOutput, JobSpec};
use crate::json::Value;
use crate::runner::{JobReport, RunOptions};

/// Campaign scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReproScale {
    /// Seconds-scale, for integration tests.
    Tiny,
    /// The historical `--quick` smoke reproduction (~1 min).
    Quick,
    /// Full paper scale.
    Paper,
}

impl ReproScale {
    /// The label the summary header uses.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReproScale::Tiny => "tiny",
            ReproScale::Quick => "quick",
            ReproScale::Paper => "paper scale",
        }
    }

    fn fig3_sizes(self) -> Vec<u32> {
        match self {
            ReproScale::Tiny => vec![16],
            ReproScale::Quick => vec![64],
            ReproScale::Paper => vec![64, 512],
        }
    }

    fn fig3_counts(self, nodes: u32) -> Vec<usize> {
        match self {
            ReproScale::Tiny => vec![0, 3, 6],
            _ => {
                let max = if nodes <= 64 { 30 } else { 60 };
                (0..=max).step_by(5).collect()
            }
        }
    }

    fn fig34_seeds(self) -> Vec<u64> {
        let n = match self {
            ReproScale::Tiny => 2,
            ReproScale::Quick => 3,
            ReproScale::Paper => 8,
        };
        (0..n).collect()
    }

    fn fig4_sizes(self) -> Vec<u32> {
        match self {
            ReproScale::Tiny => vec![16, 36],
            ReproScale::Quick => vec![64, 128],
            ReproScale::Paper => vec![64, 128, 256, 512],
        }
    }

    fn campaign_scale(self) -> CampaignScale {
        match self {
            ReproScale::Tiny => CampaignScale::Tiny,
            ReproScale::Quick => CampaignScale::Small,
            ReproScale::Paper => CampaignScale::Paper,
        }
    }

    fn sweep_mixes(self) -> Vec<Mix> {
        match self {
            ReproScale::Tiny => vec![Mix::Mix1, Mix::Mix4],
            _ => Mix::ALL.to_vec(),
        }
    }

    fn duty_tenths(self) -> Vec<u32> {
        match self {
            ReproScale::Tiny => vec![0, 5, 9],
            _ => (0..=9).collect(),
        }
    }

    fn opt_mixes(self) -> Vec<Mix> {
        match self {
            ReproScale::Tiny => vec![Mix::Mix1],
            _ => Mix::ALL.to_vec(),
        }
    }

    fn opt_seeds(self) -> Vec<u64> {
        let end = match self {
            ReproScale::Tiny => 101,
            ReproScale::Quick => 102,
            ReproScale::Paper => 105,
        };
        (100..end).collect()
    }

    fn opt_m(self) -> usize {
        match self {
            ReproScale::Tiny => 4,
            ReproScale::Quick => 8,
            ReproScale::Paper => 16,
        }
    }

    fn reg_mixes(self) -> Vec<Mix> {
        match self {
            ReproScale::Tiny | ReproScale::Quick => vec![Mix::Mix1, Mix::Mix3],
            ReproScale::Paper => Mix::ALL.to_vec(),
        }
    }

    fn reg_nodes(self) -> u32 {
        match self {
            ReproScale::Tiny => 32,
            ReproScale::Quick => 64,
            ReproScale::Paper => 128,
        }
    }

    /// The regression's base configuration: historically always
    /// [`CampaignConfig::new`] with the node count overridden; tiny runs
    /// shrink the epochs too.
    fn reg_campaign_scale(self) -> CampaignScale {
        match self {
            ReproScale::Tiny => CampaignScale::Tiny,
            _ => CampaignScale::Paper,
        }
    }
}

struct Fig3Panel {
    nodes: u32,
    counts: Vec<usize>,
    center: Vec<usize>,
    corner: Vec<usize>,
}

struct Fig4Panel {
    denominator: u32,
    sizes: Vec<u32>,
    curves: Vec<(Fig4Strategy, Vec<usize>)>,
}

struct SweepPanel {
    mix: Mix,
    idx: Vec<usize>,
}

struct OptPanel {
    mix: Mix,
    idx: usize,
}

/// The job list for a full reproduction, plus the bookkeeping needed to
/// reassemble the sequential artefacts from per-job results.
pub struct ReproPlan {
    /// Scale the plan was built for.
    pub scale: ReproScale,
    /// All jobs, in deterministic order.
    pub jobs: Vec<JobSpec>,
    fig3: Vec<Fig3Panel>,
    fig4: Vec<Fig4Panel>,
    sweeps: Vec<SweepPanel>,
    opts: Vec<OptPanel>,
    regression: Vec<usize>,
}

impl ReproPlan {
    /// Enumerates every artefact of the paper as independent jobs.
    #[must_use]
    pub fn plan(scale: ReproScale) -> ReproPlan {
        let mut jobs = Vec::new();

        let seeds = scale.fig34_seeds();
        let mut fig3 = Vec::new();
        for nodes in scale.fig3_sizes() {
            let counts = scale.fig3_counts(nodes);
            let mut panel = Fig3Panel {
                nodes,
                counts: counts.clone(),
                center: Vec::new(),
                corner: Vec::new(),
            };
            for corner in [false, true] {
                for &ht_count in &counts {
                    let idx = jobs.len();
                    jobs.push(JobSpec::Fig3Point {
                        nodes,
                        corner,
                        ht_count,
                        seeds: seeds.clone(),
                    });
                    if corner {
                        panel.corner.push(idx);
                    } else {
                        panel.center.push(idx);
                    }
                }
            }
            fig3.push(panel);
        }

        let mut fig4 = Vec::new();
        let sizes = scale.fig4_sizes();
        for denominator in [16u32, 8] {
            let mut panel = Fig4Panel {
                denominator,
                sizes: sizes.clone(),
                curves: Vec::new(),
            };
            for strategy in [
                Fig4Strategy::Center,
                Fig4Strategy::Random,
                Fig4Strategy::Corner,
            ] {
                let mut idx = Vec::new();
                for &nodes in &sizes {
                    idx.push(jobs.len());
                    jobs.push(JobSpec::Fig4Point {
                        nodes,
                        strategy,
                        denominator,
                        seeds: seeds.clone(),
                    });
                }
                panel.curves.push((strategy, idx));
            }
            fig4.push(panel);
        }

        let campaign_scale = scale.campaign_scale();
        let mut sweeps = Vec::new();
        for mix in scale.sweep_mixes() {
            let mut idx = Vec::new();
            for duty_tenths in scale.duty_tenths() {
                idx.push(jobs.len());
                jobs.push(JobSpec::SweepPoint {
                    mix,
                    scale: campaign_scale,
                    duty_tenths,
                });
            }
            sweeps.push(SweepPanel { mix, idx });
        }

        let mut opts = Vec::new();
        for mix in scale.opt_mixes() {
            opts.push(OptPanel {
                mix,
                idx: jobs.len(),
            });
            jobs.push(JobSpec::OptCompare {
                mix,
                scale: campaign_scale,
                m: scale.opt_m(),
                seeds: scale.opt_seeds(),
            });
        }

        let mut regression = Vec::new();
        for mix in scale.reg_mixes() {
            regression.push(jobs.len());
            jobs.push(JobSpec::RegressionMix {
                mix,
                scale: scale.reg_campaign_scale(),
                nodes: scale.reg_nodes(),
            });
        }

        ReproPlan {
            scale,
            jobs,
            fig3,
            fig4,
            sweeps,
            opts,
            regression,
        }
    }

    /// Reassembles the sequential artefacts from per-job reports. `Err`
    /// lists the ids of failed jobs (the campaign still ran to completion;
    /// the artefacts just cannot be emitted with holes in them).
    fn assemble(&self, reports: &[JobReport]) -> Result<Artefacts, Vec<String>> {
        let failed: Vec<String> = reports
            .iter()
            .filter(|r| r.output.is_err())
            .map(|r| r.spec.id())
            .collect();
        if !failed.is_empty() {
            return Err(failed);
        }
        let rate = |i: usize| -> f64 {
            match reports[i].expect_output() {
                JobOutput::Rate(x) => *x,
                other => panic!("job {i}: expected rate, got {other:?}"),
            }
        };

        let fig3 = self
            .fig3
            .iter()
            .map(|p| {
                let series_for = |idx: &[usize], corner: bool| {
                    let loc = if corner {
                        ManagerLocation::Corner
                    } else {
                        ManagerLocation::Center
                    };
                    let mut s = Series::new(fig3_label(loc));
                    for (&m, &i) in p.counts.iter().zip(idx) {
                        s.push(m as f64, rate(i));
                    }
                    s
                };
                (
                    p.nodes,
                    series_for(&p.center, false),
                    series_for(&p.corner, true),
                )
            })
            .collect();

        let fig4 = self
            .fig4
            .iter()
            .map(|p| {
                let curves = p
                    .curves
                    .iter()
                    .map(|(strategy, idx)| {
                        let mut s = Series::new(strategy.label());
                        for (&nodes, &i) in p.sizes.iter().zip(idx) {
                            s.push(f64::from(nodes), rate(i));
                        }
                        s
                    })
                    .collect();
                (p.denominator, curves)
            })
            .collect();

        let fig5 = self
            .sweeps
            .iter()
            .map(|p| {
                let mut q_series = Series::new(p.mix.name());
                let mut theta: Vec<Series> = Vec::new();
                for (k, &i) in p.idx.iter().enumerate() {
                    let JobOutput::Sweep {
                        infection,
                        q,
                        changes,
                        ..
                    } = reports[i].expect_output()
                    else {
                        panic!("job {i}: expected sweep point")
                    };
                    if k == 0 {
                        theta = (0..changes.len())
                            .map(|a| Series::new(format!("{} app{a}", p.mix.name())))
                            .collect();
                    }
                    q_series.push(*infection, *q);
                    for (a, c) in changes.iter().enumerate() {
                        theta[a].push(*infection, *c);
                    }
                }
                (p.mix, q_series, theta)
            })
            .collect();

        let opt = self
            .opts
            .iter()
            .map(|p| {
                let JobOutput::Opt {
                    q_optimal,
                    q_random,
                    improvement,
                } = reports[p.idx].expect_output()
                else {
                    panic!("job {}: expected opt comparison", p.idx)
                };
                (
                    p.mix,
                    OptRow {
                        q_optimal: *q_optimal,
                        q_random: *q_random,
                        improvement: *improvement,
                    },
                )
            })
            .collect();

        let mut samples = Vec::new();
        for &i in &self.regression {
            let JobOutput::Samples(rows) = reports[i].expect_output() else {
                panic!("job {i}: expected regression samples")
            };
            samples.extend(rows.iter().copied());
        }

        Ok(Artefacts {
            fig3,
            fig4,
            fig5,
            opt,
            samples,
        })
    }
}

struct OptRow {
    q_optimal: f64,
    q_random: f64,
    improvement: f64,
}

/// Every number a reproduction produces, independent of how it was
/// computed. Both the harness and the sequential path build this, then one
/// shared emitter turns it into TSVs + SUMMARY — equal artefacts follow
/// from equal numbers.
struct Artefacts {
    fig3: Vec<(u32, Series, Series)>,
    fig4: Vec<(u32, Vec<Series>)>,
    fig5: Vec<(Mix, Series, Vec<Series>)>,
    opt: Vec<(Mix, OptRow)>,
    samples: Vec<AttackSample>,
}

/// What a reproduction run did, for callers and exit codes.
#[derive(Debug)]
pub struct ReproOutcome {
    /// The shape-check summary (also written to `SUMMARY.txt`).
    pub summary: String,
    /// Total jobs in the plan (0 for the sequential path).
    pub jobs: usize,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Jobs whose clean baseline was served from the baseline cache.
    pub baseline_hits: usize,
    /// Jobs that had to compute their clean baseline (first job per
    /// campaign configuration when a [`crate::BaselineCache`] is set).
    pub baseline_misses: usize,
    /// Jobs whose scenario panicked.
    pub failed: usize,
}

/// Creates the output directory. The single shared choke point every
/// writer (cache, journal, TSV emitter, binaries) goes through before its
/// first write.
pub fn ensure_outdir(outdir: &Path) -> io::Result<()> {
    std_fs().create_dir_all(outdir)
}

/// Runs the full reproduction through the job pool: cached, journalled,
/// parallel and resumable. With a warm cache (or after an interrupted
/// run), only missing points execute: [`Campaign::start`] distrusts and
/// re-runs jobs the journal shows as started-but-died, and serves
/// committed ones from cache, recovering byte-identical artefacts from
/// any crash point.
pub fn run_repro(scale: ReproScale, outdir: &Path, opts: &RunOptions) -> io::Result<ReproOutcome> {
    let plan = ReproPlan::plan(scale);
    let campaign = Campaign::start(
        "repro_all",
        outdir,
        &plan.jobs,
        opts,
        std_fs(),
        vec![("scale", Value::Str(scale.label().into()))],
    )?;
    let reports = campaign.execute(&plan.jobs, opts);
    let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
    let baseline_hits = reports.iter().filter(|r| r.baseline == Some(true)).count();
    let baseline_misses = reports.iter().filter(|r| r.baseline == Some(false)).count();
    let failed = reports.iter().filter(|r| r.output.is_err()).count();

    let summary = match plan.assemble(&reports) {
        Ok(artefacts) => {
            let t0 = Instant::now();
            let summary = emit(&artefacts, scale, &campaign)?;
            campaign.stage("assemble", t0.elapsed().as_secs_f64());
            summary
        }
        Err(failed_ids) => {
            let mut summary = format!(
                "== full reproduction run ({}) ==\n== ABORTED: {} job(s) failed ==\n",
                scale.label(),
                failed_ids.len()
            );
            for id in &failed_ids {
                let _ = writeln!(summary, "failed: {id}");
            }
            campaign.emit_artefact("SUMMARY.txt", summary.as_bytes())?;
            summary
        }
    };
    if htpb_obs::enabled() {
        campaign.emit_metrics()?;
    }
    campaign.finish(
        failed == 0,
        vec![
            ("failed", Value::Int(failed as i64)),
            ("cache_hits", Value::Int(cache_hits as i64)),
            ("baseline_hits", Value::Int(baseline_hits as i64)),
            ("baseline_misses", Value::Int(baseline_misses as i64)),
        ],
    );
    Ok(ReproOutcome {
        summary,
        jobs: plan.jobs.len(),
        cache_hits,
        baseline_hits,
        baseline_misses,
        failed,
    })
}

/// Runs the full reproduction through the legacy sequential drivers
/// (whole series at a time, shared clean baselines, no cache). The
/// reference implementation the harness path is byte-compared against.
pub fn run_repro_sequential(scale: ReproScale, outdir: &Path) -> io::Result<ReproOutcome> {
    let opts = RunOptions::sequential();
    let campaign = Campaign::start(
        "repro_all_sequential",
        outdir,
        &[],
        &opts,
        std_fs(),
        vec![("scale", Value::Str(scale.label().into()))],
    )?;
    let staged = |label: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let secs = t0.elapsed().as_secs_f64();
        println!("[{label}: {secs:.1}s]");
        campaign.stage(label, secs);
    };

    let seeds = scale.fig34_seeds();
    let mut fig3 = Vec::new();
    for nodes in scale.fig3_sizes() {
        let counts = scale.fig3_counts(nodes);
        staged(&format!("fig3 ({nodes} nodes)"), &mut || {
            fig3.push((
                nodes,
                fig3_series(nodes, ManagerLocation::Center, &counts, &seeds),
                fig3_series(nodes, ManagerLocation::Corner, &counts, &seeds),
            ));
        });
    }

    let sizes = scale.fig4_sizes();
    let mut fig4 = Vec::new();
    for denominator in [16u32, 8] {
        staged(&format!("fig4 (N/{denominator})"), &mut || {
            let curves = [
                Fig4Strategy::Center,
                Fig4Strategy::Random,
                Fig4Strategy::Corner,
            ]
            .iter()
            .map(|s| {
                fig4_series(
                    &sizes,
                    s.label(),
                    |seed| s.strategy_for()(seed),
                    denominator,
                    &seeds,
                )
            })
            .collect();
            fig4.push((denominator, curves));
        });
    }

    let campaign_scale = scale.campaign_scale();
    let duties: Vec<f64> = scale
        .duty_tenths()
        .iter()
        .map(|&t| f64::from(t) / 10.0)
        .collect();
    let mut fig5 = Vec::new();
    for mix in scale.sweep_mixes() {
        staged(&format!("fig5/6 {}", mix.name()), &mut || {
            let cfg = campaign_scale.config(mix);
            let points = attack_sweep(&cfg, &duties);
            let mut q_series = Series::new(mix.name());
            let napps = points[0].outcome.changes.len();
            let mut theta: Vec<Series> = (0..napps)
                .map(|i| Series::new(format!("{} app{i}", mix.name())))
                .collect();
            for p in &points {
                q_series.push(p.infection, p.q_value);
                for (i, (_, _, c)) in p.outcome.changes.iter().enumerate() {
                    theta[i].push(p.infection, *c);
                }
            }
            fig5.push((mix, q_series, theta));
        });
    }

    let mut opt = Vec::new();
    for mix in scale.opt_mixes() {
        staged(&format!("opt {}", mix.name()), &mut || {
            let cmp = optimal_vs_random(
                &campaign_scale.config(mix),
                scale.opt_m(),
                &scale.opt_seeds(),
            );
            opt.push((
                mix,
                OptRow {
                    q_optimal: cmp.q_optimal,
                    q_random: cmp.q_random,
                    improvement: cmp.improvement,
                },
            ));
        });
    }

    let mut samples = Vec::new();
    staged("regression dataset", &mut || {
        let mut base = scale.reg_campaign_scale().config(Mix::Mix1);
        base.nodes = scale.reg_nodes();
        let mesh = base.mesh();
        let manager = base.manager.resolve(mesh);
        let placements = regression_placements(mesh, manager);
        samples = regression_dataset(&base, &scale.reg_mixes(), &placements);
    });

    let artefacts = Artefacts {
        fig3,
        fig4,
        fig5,
        opt,
        samples,
    };
    let summary = emit(&artefacts, scale, &campaign)?;
    if htpb_obs::enabled() {
        campaign.emit_metrics()?;
    }
    campaign.finish(
        true,
        vec![("failed", Value::Int(0)), ("cache_hits", Value::Int(0))],
    );
    Ok(ReproOutcome {
        summary,
        jobs: 0,
        cache_hits: 0,
        baseline_hits: 0,
        baseline_misses: 0,
        failed: 0,
    })
}

/// Writes every artefact file and returns the summary text. This is the
/// single emission path both reproduction modes share, preserving the
/// historical `repro_all` output format line for line. All files go out
/// through [`Campaign::emit_artefact`]: durably committed and journalled
/// with their digests.
fn emit(artefacts: &Artefacts, scale: ReproScale, campaign: &Campaign) -> io::Result<String> {
    let mut summary = String::new();
    let mut note = |line: String| {
        println!("{line}");
        summary.push_str(&line);
        summary.push('\n');
    };
    let write_series = |name: &str, series: &[Series]| -> io::Result<()> {
        let mut out = String::new();
        for s in series {
            out.push_str(&s.to_table());
        }
        campaign.emit_artefact(&format!("{name}.tsv"), out.as_bytes())
    };

    note(format!("== full reproduction run ({}) ==", scale.label()));

    for (nodes, center, corner) in &artefacts.fig3 {
        let corner_wins = center
            .points
            .iter()
            .zip(&corner.points)
            .skip(2)
            .all(|((_, c), (_, k))| k >= c);
        note(format!(
            "fig3/{nodes}: monotonic={} corner>=center(beyond 10 HTs)={}",
            center.is_monotonic_nondecreasing() && corner.is_monotonic_nondecreasing(),
            corner_wins
        ));
        write_series(&format!("fig3_{nodes}"), &[center.clone(), corner.clone()])?;
    }

    for (denominator, series) in &artefacts.fig4 {
        let ordered = series[0]
            .points
            .iter()
            .zip(&series[1].points)
            .zip(&series[2].points)
            .all(|(((_, c), (_, r)), (_, k))| c >= r && r >= k);
        note(format!(
            "fig4/N_{denominator}: center>=random>=corner={ordered}"
        ));
        write_series(&format!("fig4_n{denominator}"), series)?;
    }

    let mut peak = (0.0f64, "");
    for (mix, q_series, theta) in &artefacts.fig5 {
        if let Some(&(_, q)) = q_series.points.last() {
            if q > peak.0 {
                peak = (q, mix.name());
            }
        }
        note(format!(
            "fig5 {}: Q(0.9)={:.2} monotonic={}",
            mix.name(),
            q_series.last_y().unwrap_or(0.0),
            q_series.is_monotonic_nondecreasing()
        ));
        write_series(
            &format!("fig5_{}", mix.name()),
            std::slice::from_ref(q_series),
        )?;
        write_series(&format!("fig6_{}", mix.name()), theta)?;
    }
    note(format!(
        "fig5 peak Q={:.2} on {} (paper: 6.89 on mix-4)",
        peak.0, peak.1
    ));

    let one = AreaReport::new(1, 1);
    let chip = AreaReport::new(60, 512);
    note(format!(
        "III-D: 1 HT = {:.4} um^2 ({:.4}% of router); 60 HTs = {:.3} um^2 / {:.4} uW",
        one.trojan_area_um2(),
        one.area_fraction() * 100.0,
        chip.trojan_area_um2(),
        chip.trojan_power_uw()
    ));
    campaign.emit_artefact("table_area.tsv", format!("{one}\n{chip}\n").as_bytes())?;

    let mut rows = String::new();
    for (mix, cmp) in &artefacts.opt {
        note(format!(
            "V-C {}: Q_opt={:.2} Q_rand={:.2} improvement={:+.0}% (beats random: {})",
            mix.name(),
            cmp.q_optimal,
            cmp.q_random,
            cmp.improvement * 100.0,
            cmp.improvement > 0.0
        ));
        let _ = writeln!(
            rows,
            "{}\t{:.4}\t{:.4}\t{:.4}",
            mix.name(),
            cmp.q_optimal,
            cmp.q_random,
            cmp.improvement
        );
    }
    campaign.emit_artefact("opt_placement.tsv", rows.as_bytes())?;

    let model = AttackModel::fit(&artefacts.samples).expect("well-conditioned dataset");
    note(format!(
        "Eq.9: a1(rho)={:+.3} a2(eta)={:+.3} a3(m)={:+.3} R2={:.3} (signs ok: {})",
        model.a1_rho(),
        model.a2_eta(),
        model.a3_m(),
        model.r2(),
        model.a1_rho() < 0.0 && model.a3_m() > 0.0
    ));
    let mut rows = String::from("# rho\teta\tm\tphiV\tphiA\tQ\n");
    for s in &artefacts.samples {
        let _ = writeln!(
            rows,
            "{:.3}\t{:.3}\t{:.0}\t{:.3}\t{:.3}\t{:.4}",
            s.rho, s.eta, s.m, s.phi_victims, s.phi_attackers, s.q
        );
    }
    campaign.emit_artefact("regression.tsv", rows.as_bytes())?;

    write_gnuplot(campaign)?;
    note("== done; series written to results/*.tsv (plot with gnuplot results/plot.gp) ==".into());
    campaign.emit_artefact("SUMMARY.txt", summary.as_bytes())?;
    Ok(summary)
}

/// Emits the gnuplot script that renders every regenerated figure from the
/// TSV series into `results/figures.png`.
fn write_gnuplot(campaign: &Campaign) -> io::Result<()> {
    let script = r#"# Render the reproduced figures: gnuplot results/plot.gp
set terminal pngcairo size 1400,1000
set output 'results/figures.png'
set multiplot layout 2,3 title 'SOCC 2018 HT power-budget attack - reproduction'
set key left top
set style data linespoints

set title 'Fig. 3: infection vs #HTs (64 nodes)'
set xlabel '# hardware Trojans'
set ylabel 'infection rate'
plot 'results/fig3_64.tsv' index 0 title 'manager center',      'results/fig3_64.tsv' index 1 title 'manager corner'

set title 'Fig. 3: infection vs #HTs (512 nodes)'
plot 'results/fig3_512.tsv' index 0 title 'manager center',      'results/fig3_512.tsv' index 1 title 'manager corner'

set title 'Fig. 4: infection vs size (#HT = N/8)'
set xlabel 'system size (nodes)'
plot 'results/fig4_n8.tsv' index 0 title 'center cluster',      'results/fig4_n8.tsv' index 1 title 'random',      'results/fig4_n8.tsv' index 2 title 'corner cluster'

set title 'Fig. 5: attack effect Q vs infection'
set xlabel 'infection rate'
set ylabel 'Q'
plot 'results/fig5_mix-1.tsv' title 'mix-1',      'results/fig5_mix-2.tsv' title 'mix-2',      'results/fig5_mix-3.tsv' title 'mix-3',      'results/fig5_mix-4.tsv' title 'mix-4'

set title 'Fig. 6: per-app change (mix-1)'
set ylabel 'theta change'
plot 'results/fig6_mix-1.tsv' index 0 title 'attacker 0',      'results/fig6_mix-1.tsv' index 1 title 'attacker 1',      'results/fig6_mix-1.tsv' index 2 title 'victim 0',      'results/fig6_mix-1.tsv' index 3 title 'victim 1'

set title 'Fig. 6: per-app change (mix-4)'
plot 'results/fig6_mix-4.tsv' index 0 title 'attacker 0',      'results/fig6_mix-4.tsv' index 1 title 'attacker 1',      'results/fig6_mix-4.tsv' index 2 title 'attacker 2',      'results/fig6_mix-4.tsv' index 3 title 'victim 0'

unset multiplot
"#;
    campaign.emit_artefact("plot.gp", script.as_bytes())
}

/// Convenience: the default cache for an output directory, honouring
/// `--no-cache`.
pub fn cache_for(outdir: &Path, use_cache: bool) -> io::Result<Option<ResultCache>> {
    if use_cache {
        Ok(Some(ResultCache::for_outdir(outdir)?))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_enumerates_every_section_once() {
        let plan = ReproPlan::plan(ReproScale::Quick);
        // fig3: 1 size x 2 locations x 7 counts; fig4: 2 denoms x 3
        // strategies x 2 sizes; fig5/6: 4 mixes x 10 duties; opt: 4;
        // regression: 2.
        assert_eq!(plan.jobs.len(), 14 + 12 + 40 + 4 + 2);
        let ids: std::collections::BTreeSet<String> = plan.jobs.iter().map(JobSpec::id).collect();
        assert_eq!(ids.len(), plan.jobs.len(), "job ids must be unique");
    }

    #[test]
    fn tiny_plan_is_small() {
        let plan = ReproPlan::plan(ReproScale::Tiny);
        // 2x3 fig3 + 2x3x2 fig4 + 2x3 sweep + 1 opt + 2 regression.
        assert_eq!(plan.jobs.len(), 6 + 12 + 6 + 1 + 2);
    }
}
