//! Minimal JSON encode/decode for cache files and the run journal.
//!
//! The workspace builds fully offline, so instead of `serde_json` this is a
//! small hand-rolled value type. It supports exactly what the harness needs:
//! objects with stable key order, arrays, strings, integers and `f64`s that
//! round-trip bit-exactly (rendered with `{:?}`, Rust's shortest-roundtrip
//! float formatting).

use std::fmt::Write as _;

/// A JSON value. Object keys preserve insertion order so rendered files are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Floating point. Non-finite values render as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object as an ordered key/value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Self {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both `Int` and `Num`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Num(x) => {
                if x.is_finite() {
                    // `{:?}` always includes a `.0` or exponent, so ints and
                    // floats stay distinguishable and round-trip exactly.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns `Err` with a short description on invalid
/// input (the cache treats any parse failure as a miss).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.pos += 1; // {
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::obj(vec![
            ("kind", Value::Str("sweep".into())),
            ("duty", Value::Num(0.3)),
            ("n", Value::Int(64)),
            ("ok", Value::Bool(true)),
            (
                "rows",
                Value::Arr(vec![Value::Num(1.5), Value::Num(-0.25), Value::Null]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for x in [0.1, 1.0 / 3.0, 6.891_234_567_8e-12, f64::MAX, 5e-324] {
            let text = Value::Num(x).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\u{1}é".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
