//! The resilience campaign: attack effect under injected transport faults.
//!
//! [`ResiliencePlan`] fans the grid *fault rate × allocator policy ×
//! hardening × Trojan duty* out as independent [`JobSpec::Resilience`]
//! jobs; [`run_resilience_sweep`] executes them on the worker pool
//! (cached, journalled, resumable like `repro_all`) and emits:
//!
//! - `resilience.tsv` — one row per cell: attack effect Q against the
//!   equally-faulty clean baseline, victim θ in both arms, and the
//!   manager's degradation tallies (timeouts / rejects / clamps);
//! - `RESILIENCE.txt` — shape checks, headlined by *graceful
//!   degradation*: with faults but no Trojan, victim throughput must stay
//!   within a bounded factor of the fault-free cell.
//!
//! Every job is a pure function of its spec, so the sweep is
//! byte-deterministic: same plan, same artefacts.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;

use htpb_attack::Mix;
use htpb_core::AllocatorKind;

use crate::campaign::Campaign;
use crate::fs::std_fs;
use crate::job::{CampaignScale, JobOutput, JobSpec};
use crate::json::Value;
use crate::repro::{ReproOutcome, ReproScale};
use crate::runner::RunOptions;

/// Fault-plan seed shared by every cell of the standard sweep, so runs are
/// reproducible and cells differ only in their declared parameters.
pub const FAULT_SEED: u64 = 0xFA17;

/// Victim-throughput retention bound the summary asserts for the
/// faults-only hardened cells: θ must stay within `[RETENTION_BOUND, 1 /
/// RETENTION_BOUND]` of the fault-free cell.
pub const RETENTION_BOUND: f64 = 0.7;

/// The resilience sweep as an explicit job grid.
pub struct ResiliencePlan {
    /// All jobs, in deterministic order (drops, then allocator, then
    /// hardening, then duty — the TSV row order).
    pub jobs: Vec<JobSpec>,
}

impl ResiliencePlan {
    /// The standard grid for a reproduction scale: packet-drop rates ×
    /// every allocator policy × {soft, hardened} × {faults only, full
    /// attack}.
    #[must_use]
    pub fn plan(scale: ReproScale) -> ResiliencePlan {
        let (campaign, drops): (CampaignScale, &[u32]) = match scale {
            ReproScale::Tiny => (CampaignScale::Tiny, &[0, 10_000]),
            ReproScale::Quick => (CampaignScale::Small, &[0, 2_500, 10_000, 40_000]),
            ReproScale::Paper => (CampaignScale::Paper, &[0, 2_500, 10_000, 40_000]),
        };
        ResiliencePlan::custom(
            campaign,
            Mix::Mix1,
            drops,
            &AllocatorKind::ALL,
            &[false, true],
            &[0, 9],
            FAULT_SEED,
        )
    }

    /// A fully parameterized grid (tests and ad-hoc studies).
    #[must_use]
    pub fn custom(
        scale: CampaignScale,
        mix: Mix,
        drops: &[u32],
        allocators: &[AllocatorKind],
        hardening: &[bool],
        duty_tenths: &[u32],
        fault_seed: u64,
    ) -> ResiliencePlan {
        let mut jobs = Vec::new();
        for &drop_ppm in drops {
            for &allocator in allocators {
                for &hardened in hardening {
                    for &duty in duty_tenths {
                        jobs.push(JobSpec::Resilience {
                            mix,
                            scale,
                            allocator,
                            drop_ppm,
                            fault_seed,
                            hardened,
                            duty_tenths: duty,
                        });
                    }
                }
            }
        }
        ResiliencePlan { jobs }
    }
}

/// One assembled TSV row: the spec's cell parameters plus its output.
struct Row {
    allocator: AllocatorKind,
    drop_ppm: u32,
    hardened: bool,
    duty_tenths: u32,
    infection: f64,
    q: f64,
    victim_theta: f64,
    baseline_victim_theta: f64,
    timeouts: u64,
    rejects: u64,
    clamps: u64,
    faults_applied: u64,
}

/// Runs the standard resilience sweep for `scale` into `outdir`.
pub fn run_resilience_sweep(
    scale: ReproScale,
    outdir: &Path,
    opts: &RunOptions,
) -> io::Result<ReproOutcome> {
    run_resilience_plan(&ResiliencePlan::plan(scale), scale.label(), outdir, opts)
}

/// Runs an explicit plan (the standard sweep or a custom grid) and emits
/// `resilience.tsv` + `RESILIENCE.txt`.
pub fn run_resilience_plan(
    plan: &ResiliencePlan,
    label: &str,
    outdir: &Path,
    opts: &RunOptions,
) -> io::Result<ReproOutcome> {
    let campaign = Campaign::start(
        "resilience_sweep",
        outdir,
        &plan.jobs,
        opts,
        std_fs(),
        vec![("scale", Value::Str(label.into()))],
    )?;
    let reports = campaign.execute(&plan.jobs, opts);
    let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
    let failed = reports.iter().filter(|r| r.output.is_err()).count();

    let summary = if failed > 0 {
        let mut summary =
            format!("== resilience sweep ({label}) ==\n== ABORTED: {failed} job(s) failed ==\n");
        for r in reports.iter().filter(|r| r.output.is_err()) {
            let _ = writeln!(summary, "failed: {}", r.spec.id());
        }
        campaign.emit_artefact("RESILIENCE.txt", summary.as_bytes())?;
        summary
    } else {
        let mut rows = Vec::with_capacity(reports.len());
        for r in &reports {
            let JobSpec::Resilience {
                allocator,
                drop_ppm,
                hardened,
                duty_tenths,
                ..
            } = r.spec
            else {
                panic!("resilience plan contains a foreign job: {}", r.spec.id())
            };
            let JobOutput::Resilience {
                infection,
                q,
                victim_theta,
                baseline_victim_theta,
                timeouts,
                rejects,
                clamps,
                faults_applied,
            } = *r.expect_output()
            else {
                panic!("job {}: expected a resilience cell", r.spec.id())
            };
            rows.push(Row {
                allocator,
                drop_ppm,
                hardened,
                duty_tenths,
                infection,
                q,
                victim_theta,
                baseline_victim_theta,
                timeouts,
                rejects,
                clamps,
                faults_applied,
            });
        }
        let t0 = Instant::now();
        let summary = emit(&rows, label, &campaign)?;
        campaign.stage("assemble", t0.elapsed().as_secs_f64());
        summary
    };

    if htpb_obs::enabled() {
        campaign.emit_metrics()?;
    }
    campaign.finish(
        failed == 0,
        vec![
            ("failed", Value::Int(failed as i64)),
            ("cache_hits", Value::Int(cache_hits as i64)),
        ],
    );
    Ok(ReproOutcome {
        summary,
        jobs: plan.jobs.len(),
        cache_hits,
        // Resilience baselines are fault-laden and duty-specific, so the
        // shared-baseline cache never applies here.
        baseline_hits: 0,
        baseline_misses: 0,
        failed,
    })
}

/// Writes `resilience.tsv` and `RESILIENCE.txt` through the campaign's
/// durable artefact path, returning the summary text. Pure function of
/// the rows, so equal results give byte-identical artefacts.
fn emit(rows: &[Row], label: &str, campaign: &Campaign) -> io::Result<String> {
    let mut tsv = String::from(
        "# allocator\tdrop_ppm\thardened\tduty\tinfection\tQ\tvictim_theta\t\
         baseline_victim_theta\ttimeouts\trejects\tclamps\tfaults_applied\n",
    );
    for r in rows {
        let _ = writeln!(
            tsv,
            "{}\t{}\t{}\t{:.1}\t{:.4}\t{:.4}\t{:.6}\t{:.6}\t{}\t{}\t{}\t{}",
            r.allocator.name(),
            r.drop_ppm,
            u8::from(r.hardened),
            f64::from(r.duty_tenths) / 10.0,
            r.infection,
            r.q,
            r.victim_theta,
            r.baseline_victim_theta,
            r.timeouts,
            r.rejects,
            r.clamps,
            r.faults_applied
        );
    }
    campaign.emit_artefact("resilience.tsv", tsv.as_bytes())?;

    let mut summary = String::new();
    let mut note = |line: String| {
        println!("{line}");
        summary.push_str(&line);
        summary.push('\n');
    };
    note(format!("== resilience sweep ({label}) =="));

    // The fault-free victim θ per (allocator, hardened, duty): the
    // reference each faulty cell's retention is measured against.
    let reference = |allocator: AllocatorKind, hardened: bool, duty_tenths: u32| -> Option<f64> {
        rows.iter()
            .find(|r| {
                r.drop_ppm == 0
                    && r.allocator == allocator
                    && r.hardened == hardened
                    && r.duty_tenths == duty_tenths
            })
            .map(|r| r.victim_theta)
    };

    // Graceful degradation is judged on the hardened faults-only cells at
    // the paper-map rate of 1% packet drops (falling back to the heaviest
    // swept rate): no Trojan, so any victim starvation is pure fault
    // damage the manager failed to bridge.
    let max_drop = rows.iter().map(|r| r.drop_ppm).max().unwrap_or(0);
    let judge_drop = if rows.iter().any(|r| r.drop_ppm == 10_000) {
        10_000
    } else {
        max_drop
    };
    let mut worst_retention: Option<(f64, &Row)> = None;
    for r in rows {
        if r.duty_tenths != 0 || !r.hardened || r.drop_ppm == 0 {
            continue;
        }
        let Some(reference_theta) = reference(r.allocator, r.hardened, r.duty_tenths) else {
            continue;
        };
        if reference_theta <= 0.0 {
            continue;
        }
        let retention = r.victim_theta / reference_theta;
        note(format!(
            "faults-only {} @{}ppm (hardened): retention={:.3} timeouts={} rejects={} clamps={}",
            r.allocator.name(),
            r.drop_ppm,
            retention,
            r.timeouts,
            r.rejects,
            r.clamps
        ));
        if r.drop_ppm == judge_drop
            && worst_retention.is_none_or(|(w, _)| (retention - 1.0).abs() > (w - 1.0).abs())
        {
            worst_retention = Some((retention, r));
        }
    }
    if let Some((retention, row)) = worst_retention {
        let graceful = (RETENTION_BOUND..=1.0 / RETENTION_BOUND).contains(&retention);
        note(format!(
            "graceful degradation @{judge_drop}ppm: worst retention={:.3} on {} (within [{:.1},{:.2}]: {})",
            retention,
            row.allocator.name(),
            RETENTION_BOUND,
            1.0 / RETENTION_BOUND,
            graceful
        ));
    }

    for r in rows {
        // The attack-effect headline: does the Trojan still bite on a
        // degraded substrate, and does hardening blunt it?
        if r.duty_tenths == 0 || r.drop_ppm != max_drop {
            continue;
        }
        note(format!(
            "attack d{} {} @{}ppm ({}): Q={:.2} infection={:.2} degradation={}t/{}r/{}c",
            r.duty_tenths,
            r.allocator.name(),
            r.drop_ppm,
            if r.hardened { "hardened" } else { "soft" },
            r.q,
            r.infection,
            r.timeouts,
            r.rejects,
            r.clamps
        ));
    }

    note(format!(
        "== done; {} cells written to resilience.tsv ==",
        rows.len()
    ));
    campaign.emit_artefact("RESILIENCE.txt", summary.as_bytes())?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htpb-resilience-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn standard_plans_have_unique_ids_and_expected_sizes() {
        // drops x allocators x hardening x duties.
        let tiny = ResiliencePlan::plan(ReproScale::Tiny);
        assert_eq!(tiny.jobs.len(), 2 * 5 * 2 * 2);
        let quick = ResiliencePlan::plan(ReproScale::Quick);
        assert_eq!(quick.jobs.len(), 4 * 5 * 2 * 2);
        let ids: std::collections::BTreeSet<String> = quick.jobs.iter().map(JobSpec::id).collect();
        assert_eq!(ids.len(), quick.jobs.len(), "cell ids must be unique");
    }

    #[test]
    fn tiny_sweep_is_byte_deterministic() {
        let plan = ResiliencePlan::custom(
            CampaignScale::Tiny,
            Mix::Mix1,
            &[0, 10_000],
            &[AllocatorKind::Greedy],
            &[true],
            &[0, 9],
            FAULT_SEED,
        );
        let read = |dir: &Path| {
            let tsv = fs::read_to_string(dir.join("resilience.tsv")).unwrap();
            let txt = fs::read_to_string(dir.join("RESILIENCE.txt")).unwrap();
            (tsv, txt)
        };
        let dir_a = tmpdir("det-a");
        let dir_b = tmpdir("det-b");
        let out_a = run_resilience_plan(&plan, "tiny", &dir_a, &RunOptions::sequential()).unwrap();
        let out_b = run_resilience_plan(&plan, "tiny", &dir_b, &RunOptions::sequential()).unwrap();
        assert_eq!(out_a.failed, 0);
        assert_eq!(out_b.failed, 0);
        let (tsv_a, txt_a) = read(&dir_a);
        let (tsv_b, txt_b) = read(&dir_b);
        assert_eq!(tsv_a, tsv_b, "TSV must be byte-identical across runs");
        assert_eq!(txt_a, txt_b, "summary must be byte-identical across runs");
        assert_eq!(out_a.summary, txt_a);

        // The summary must carry both headlines: graceful degradation on
        // the faults-only cells and the attack line for the duty-0.9 ones.
        assert!(txt_a.contains("graceful degradation"), "{txt_a}");
        assert!(txt_a.contains("attack d9"), "{txt_a}");
        assert_eq!(tsv_a.lines().count(), 1 + plan.jobs.len());
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    /// Graceful degradation at a fault seed other than the standard
    /// [`FAULT_SEED`]: the hardened faults-only cells must keep victim
    /// throughput within `[RETENTION_BOUND, 1 / RETENTION_BOUND]` of the
    /// fault-free cell, and the TSV must be byte-identical whether the grid
    /// runs sequentially or on four workers.
    #[test]
    fn second_seed_retention_bound_and_worker_count_invariance() {
        const SECOND_SEED: u64 = 0xBEEF;
        let plan = ResiliencePlan::custom(
            CampaignScale::Tiny,
            Mix::Mix1,
            &[0, 10_000],
            &[AllocatorKind::Greedy],
            &[true],
            &[0],
            SECOND_SEED,
        );
        let dir_seq = tmpdir("seed2-seq");
        let dir_par = tmpdir("seed2-par");
        let seq = run_resilience_plan(&plan, "tiny", &dir_seq, &RunOptions::sequential()).unwrap();
        let par = run_resilience_plan(
            &plan,
            "tiny",
            &dir_par,
            &RunOptions {
                workers: 4,
                ..RunOptions::sequential()
            },
        )
        .unwrap();
        assert_eq!(seq.failed, 0);
        assert_eq!(par.failed, 0);
        let tsv_seq = fs::read_to_string(dir_seq.join("resilience.tsv")).unwrap();
        let tsv_par = fs::read_to_string(dir_par.join("resilience.tsv")).unwrap();
        assert_eq!(
            tsv_seq, tsv_par,
            "resilience.tsv must be byte-identical across --jobs 1 and --jobs 4"
        );

        // Retention from the TSV itself (column 7 is victim_theta): the
        // faulty hardened cell against its fault-free reference.
        let victim_theta = |drop_ppm: &str| -> f64 {
            tsv_seq
                .lines()
                .map(|l| l.split('\t').collect::<Vec<_>>())
                .find(|cols| cols.first() == Some(&"greedy") && cols.get(1) == Some(&drop_ppm))
                .unwrap_or_else(|| panic!("no greedy @{drop_ppm}ppm row in\n{tsv_seq}"))[6]
                .parse()
                .unwrap()
        };
        let reference = victim_theta("0");
        assert!(reference > 0.0, "fault-free victim theta must be positive");
        let retention = victim_theta("10000") / reference;
        assert!(
            (RETENTION_BOUND..=1.0 / RETENTION_BOUND).contains(&retention),
            "seed {SECOND_SEED:#x}: retention {retention:.3} outside [{RETENTION_BOUND}, {:.2}]",
            1.0 / RETENTION_BOUND
        );
        let _ = fs::remove_dir_all(&dir_seq);
        let _ = fs::remove_dir_all(&dir_par);
    }
}
