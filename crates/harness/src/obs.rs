//! Harness-side observability: worker-pool metrics and the three
//! exposition paths the `--metrics` flag turns on.
//!
//! Everything the pool measures — job latency, queue depth, cache and
//! baseline hit rates, retry/timeout tallies — depends on wall-clock time
//! or scheduling, so every instrument here is [`Class::Timing`]: present in
//! the JSON snapshot embedded in the journal's `run_end` record and in the
//! stderr summary, **excluded from `metrics.prom` by construction**. That
//! exclusion is what keeps the Prometheus artefact byte-deterministic
//! across `--jobs 1` vs `--jobs N` (locked by `tests/obs_exposition.rs`).
//!
//! The handles are registered once in a `OnceLock` and shared by every
//! worker; recording is lock-free and allocation-free (see
//! `crates/obs/tests/alloc_regression.rs`).

use std::sync::{Arc, OnceLock};

use htpb_obs::{global, Class, Counter, Gauge, Histogram};

use crate::json::{self, Value};

/// Bucket bounds for job wall time in milliseconds: power-of-two up to
/// ~2^14 ms (16s), everything slower in the `+Inf` bucket.
const JOB_MS_BUCKETS: usize = 16;

/// Shared handles to every pool-level instrument.
#[derive(Debug)]
pub struct HarnessMetrics {
    /// Jobs completed (any outcome, cache hits included).
    pub jobs_total: Arc<Counter>,
    /// Jobs whose final attempt failed (panic, timeout, error).
    pub failures_total: Arc<Counter>,
    /// Jobs served from the result cache.
    pub cache_hits_total: Arc<Counter>,
    /// Jobs that had to execute (cache miss or no cache).
    pub cache_misses_total: Arc<Counter>,
    /// Jobs whose clean baseline came from the baseline cache.
    pub baseline_hits_total: Arc<Counter>,
    /// Jobs that computed their clean baseline.
    pub baseline_misses_total: Arc<Counter>,
    /// Retry attempts dispatched after a failed or timed-out attempt.
    pub retries_total: Arc<Counter>,
    /// Attempts that exceeded the per-job wall-clock limit.
    pub timeouts_total: Arc<Counter>,
    /// Jobs not yet finished in the currently running pool invocation.
    pub queue_depth: Arc<Gauge>,
    /// Per-job wall time in milliseconds.
    pub job_ms: Arc<Histogram>,
}

/// The process-wide pool instruments, registered on first use.
pub fn harness_metrics() -> &'static HarnessMetrics {
    static METRICS: OnceLock<HarnessMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        HarnessMetrics {
            jobs_total: r.counter("htpb_harness_jobs_total", "Jobs completed", Class::Timing),
            failures_total: r.counter(
                "htpb_harness_job_failures_total",
                "Jobs whose final attempt failed",
                Class::Timing,
            ),
            cache_hits_total: r.counter(
                "htpb_harness_cache_hits_total",
                "Jobs served from the result cache",
                Class::Timing,
            ),
            cache_misses_total: r.counter(
                "htpb_harness_cache_misses_total",
                "Jobs that executed (result-cache miss)",
                Class::Timing,
            ),
            baseline_hits_total: r.counter(
                "htpb_harness_baseline_hits_total",
                "Jobs whose clean baseline was memoized",
                Class::Timing,
            ),
            baseline_misses_total: r.counter(
                "htpb_harness_baseline_misses_total",
                "Jobs that computed their clean baseline",
                Class::Timing,
            ),
            retries_total: r.counter(
                "htpb_harness_job_retries_total",
                "Retry attempts dispatched",
                Class::Timing,
            ),
            timeouts_total: r.counter(
                "htpb_harness_job_timeouts_total",
                "Attempts that hit the per-job wall-clock limit",
                Class::Timing,
            ),
            queue_depth: r.gauge(
                "htpb_harness_queue_depth",
                "Jobs not yet finished in the running pool invocation",
                Class::Timing,
            ),
            job_ms: r.histogram(
                "htpb_harness_job_wall_ms",
                &htpb_obs::pow2_bounds(JOB_MS_BUCKETS),
                "Per-job wall time in milliseconds",
                Class::Timing,
            ),
        }
    })
}

/// The Prometheus text exposition of the global registry:
/// [`Class::Sim`] series only, byte-deterministic across worker counts.
/// This is exactly what `results/metrics.prom` contains.
#[must_use]
pub fn prom_text() -> String {
    global().snapshot().to_prom()
}

/// The JSON snapshot of the global registry (all classes) as a journal
/// [`Value`], embedded in the `run_end` record by [`crate::Campaign`].
#[must_use]
pub fn metrics_json() -> Value {
    json::parse(&global().snapshot().to_json()).expect("snapshot JSON is well-formed")
}

/// The human `--metrics` stderr block.
#[must_use]
pub fn summary_text() -> String {
    global().snapshot().to_summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_metrics_are_timing_class_and_never_reach_prom() {
        htpb_obs::set_enabled(true);
        let m = harness_metrics();
        m.jobs_total.inc();
        m.job_ms.observe(12);
        m.queue_depth.set(3);
        let prom = prom_text();
        assert!(
            !prom.contains("htpb_harness_"),
            "Timing-class pool metrics leaked into the Prometheus exposition:\n{prom}"
        );
        let json = metrics_json().render();
        assert!(json.contains("htpb_harness_jobs_total"));
        assert!(summary_text().contains("htpb_harness_jobs_total"));
        htpb_obs::set_enabled(false);
    }

    #[test]
    fn snapshot_json_parses_as_journal_value() {
        let v = metrics_json();
        let series = v.get("series").and_then(Value::as_arr).expect("series key");
        for s in series {
            assert!(s.get("name").and_then(Value::as_str).is_some());
            assert!(s.get("class").and_then(Value::as_str).is_some());
        }
    }
}
