//! Stable content hashing for cache keys.
//!
//! The cache key must be identical across runs, architectures and Rust
//! versions, so it cannot use `std::hash` (whose `Hasher` values are not
//! specified to be stable). FNV-1a over a canonical parameter string is
//! trivially portable and collision-resistant enough for the few thousand
//! distinct jobs a paper-scale campaign enumerates.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over several segments with a separator folded in between, so
/// `("ab", "c")` and `("a", "bc")` hash differently.
#[must_use]
pub fn fnv1a64_parts(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0x1F; // unit separator
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn parts_are_separator_sensitive() {
        assert_ne!(fnv1a64_parts(&["ab", "c"]), fnv1a64_parts(&["a", "bc"]));
        assert_ne!(fnv1a64_parts(&["ab"]), fnv1a64(b"ab"));
    }
}
