//! Crash-safe campaign lifecycle: journal-driven recovery, checkpointed
//! resume, durable artefact emission and post-run verification.
//!
//! [`Campaign::start`] is the single entry point every bench bin goes
//! through. It opens the journal (computing this run's epoch), replays the
//! job history and applies the **recovery state machine** before any job
//! runs:
//!
//! 1. jobs with a committed `job_done` → served from the result cache,
//!    never re-executed;
//! 2. jobs with a `job_start` but no `job_done` — the process died while
//!    they ran — are *distrusted*: their cache entry (if any) is
//!    invalidated and the job re-executes from scratch (`job_recovered`
//!    events record each one);
//! 3. jobs with no history at all simply run.
//!
//! Artefacts go out through [`Campaign::emit_artefact`], which commits the
//! bytes durably ([`crate::fs::commit_file`]) and journals the file's size
//! and FNV-1a-64 digest; [`verify_artefacts`] replays those records
//! against the files on disk (`repro_all --verify`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::fs::{commit_file, Fs};
use crate::hash::fnv1a64;
use crate::job::JobSpec;
use crate::journal::Journal;
use crate::json::Value;
use crate::runner::{run_jobs, JobReport, RunOptions};

/// A running (or resumed) campaign: journal + output directory + the
/// durable-write choke point.
pub struct Campaign {
    journal: Journal,
    outdir: PathBuf,
    fs: Arc<dyn Fs>,
    run: String,
    started: Instant,
    recovered: usize,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("run", &self.run)
            .field("outdir", &self.outdir)
            .field("epoch", &self.journal.epoch())
            .field("recovered", &self.recovered)
            .finish_non_exhaustive()
    }
}

impl Campaign {
    /// Opens (or resumes) the campaign `run` in `outdir`, applying the
    /// recovery state machine against `jobs` and recording `run_start`.
    /// `extra` fields are appended to the `run_start` record.
    pub fn start(
        run: &str,
        outdir: &Path,
        jobs: &[JobSpec],
        opts: &RunOptions,
        fs: Arc<dyn Fs>,
        extra: Vec<(&str, Value)>,
    ) -> io::Result<Campaign> {
        fs.create_dir_all(outdir)?;
        let journal_path = outdir.join("journal.jsonl");

        // Recovery happens against the journal as the DYING process left
        // it, before this run appends anything.
        let history = Journal::read_events(&journal_path)?;
        let completed = crate::journal::completed_in(&history);
        let interrupted = crate::journal::interrupted_in(&history);
        let journal = Journal::open_with_fs(&journal_path, Arc::clone(&fs))?;

        let mut recovered = 0;
        if let Some(cache) = &opts.cache {
            // Distrust everything an interrupted job may have half-written:
            // its cache entry goes away, so the pool re-executes it. Only
            // jobs in THIS plan matter; stale ids from other campaigns
            // sharing the journal are left alone.
            for spec in jobs {
                if interrupted.iter().any(|id| *id == spec.id()) {
                    cache.invalidate(spec)?;
                    journal.record("job_recovered", vec![("id", Value::Str(spec.id()))]);
                    recovered += 1;
                }
            }
            if !completed.is_empty() || recovered > 0 {
                eprintln!(
                    "[harness] resuming (epoch {}): {} completed job(s) on record, \
                     {recovered} interrupted job(s) will re-run",
                    journal.epoch(),
                    completed.len(),
                );
                // The resumed epoch will see little but cache hits, so the
                // per-stage timing detail of the work already done must be
                // recovered from the prior epochs' job_done records — this
                // used to be silently dropped.
                for t in crate::journal::stage_tallies_in(&history) {
                    eprintln!(
                        "[harness]   prior epochs: {}: {} job(s) ({} executed), {:.1}s",
                        t.kind, t.jobs, t.executed, t.secs
                    );
                }
            }
        }

        let mut fields = vec![
            ("run", Value::Str(run.to_string())),
            ("workers", Value::Int(opts.workers as i64)),
            ("jobs", Value::Int(jobs.len() as i64)),
        ];
        fields.extend(extra);
        journal.record("run_start", fields);
        Ok(Campaign {
            journal,
            outdir: outdir.to_path_buf(),
            fs,
            run: run.to_string(),
            started: Instant::now(),
            recovered,
        })
    }

    /// The campaign's journal (shared with the worker pool).
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The campaign's output directory.
    #[must_use]
    pub fn outdir(&self) -> &Path {
        &self.outdir
    }

    /// Interrupted jobs whose cache entries were invalidated at start.
    #[must_use]
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Executes the job list on the worker pool under this campaign's
    /// journal.
    #[must_use]
    pub fn execute(&self, jobs: &[JobSpec], opts: &RunOptions) -> Vec<JobReport> {
        run_jobs(jobs, opts, &self.journal)
    }

    /// Journals a completed pipeline stage (assembly, emission, ...).
    pub fn stage(&self, label: &str, secs: f64) {
        self.journal.stage(label, secs);
    }

    /// Commits `bytes` durably to `<outdir>/<name>` and journals the
    /// artefact's size and digest for later `--verify`.
    pub fn emit_artefact(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        commit_file(self.fs.as_ref(), &self.outdir.join(name), bytes)?;
        self.journal.artefact(name, bytes);
        Ok(())
    }

    /// Commits the Prometheus exposition of the global metric registry to
    /// `<outdir>/metrics.prom` (durably, digest-journalled like every
    /// artefact). Only [`htpb_obs::Class::Sim`] series are rendered, so the
    /// bytes are identical whatever `--jobs` count produced them.
    pub fn emit_metrics(&self) -> io::Result<()> {
        self.emit_artefact("metrics.prom", crate::obs::prom_text().as_bytes())
    }

    /// Records `run_end` with the campaign's wall time plus `extra`
    /// fields. With `--metrics` on, the full JSON snapshot of the metric
    /// registry (all classes) is embedded under a `"metrics"` key.
    pub fn finish(&self, ok: bool, extra: Vec<(&str, Value)>) {
        let mut fields = vec![
            ("run", Value::Str(self.run.clone())),
            ("secs", Value::Num(self.started.elapsed().as_secs_f64())),
            ("ok", Value::Bool(ok)),
        ];
        fields.extend(extra);
        if htpb_obs::enabled() {
            fields.push(("metrics", crate::obs::metrics_json()));
        }
        self.journal.record("run_end", fields);
    }
}

/// The outcome of [`verify_artefacts`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Artefacts whose on-disk bytes matched their journalled digest.
    pub verified: usize,
    /// Human-readable descriptions of every mismatch (missing file, size
    /// drift, digest drift).
    pub mismatches: Vec<String>,
}

impl VerifyReport {
    /// True when every journalled artefact matched.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Re-checksums every artefact the journal in `outdir` records (latest
/// record per path) against the file on disk. `repro_all --verify` exits
/// non-zero unless the report is clean.
pub fn verify_artefacts(outdir: &Path) -> io::Result<VerifyReport> {
    let digests = Journal::artefact_digests(&outdir.join("journal.jsonl"))?;
    let mut report = VerifyReport::default();
    for (name, bytes, fnv) in digests {
        let path = outdir.join(&name);
        match crate::fs::std_fs().read(&path) {
            Err(e) => report.mismatches.push(format!("{name}: unreadable ({e})")),
            Ok(data) => {
                let actual = format!("{:016x}", fnv1a64(&data));
                if data.len() as i64 != bytes {
                    report
                        .mismatches
                        .push(format!("{name}: size {} != journalled {bytes}", data.len()));
                } else if actual != fnv {
                    report
                        .mismatches
                        .push(format!("{name}: digest {actual} != journalled {fnv}"));
                } else {
                    report.verified += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::fs::std_fs;
    use std::fs;

    fn spec(ht_count: usize) -> JobSpec {
        JobSpec::Fig3Point {
            nodes: 16,
            corner: false,
            ht_count,
            seeds: vec![0, 1],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htpb-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recovery_invalidates_interrupted_jobs_only() {
        let dir = tmpdir("recover");
        let jobs = vec![spec(0), spec(1), spec(2)];
        let cache = ResultCache::open(dir.join(".cache")).unwrap();
        // Simulate a prior epoch that completed job 0, then died inside
        // job 1 AFTER its cache entry landed (the dangerous window: entry
        // looks clean but the journal never confirmed it).
        {
            let j = Journal::open(&dir.join("journal.jsonl")).unwrap();
            j.job_start(&jobs[0].id(), jobs[0].kind(), 0, 1);
            let out0 = jobs[0].execute();
            cache.store(&jobs[0], &out0).unwrap();
            j.job_done(
                &jobs[0].id(),
                jobs[0].kind(),
                0,
                false,
                true,
                true,
                0.1,
                None,
            );
            j.job_start(&jobs[1].id(), jobs[1].kind(), 0, 1);
            let out1 = jobs[1].execute();
            cache.store(&jobs[1], &out1).unwrap();
            // ... SIGKILL here: no job_done for job 1.
        }
        assert!(cache.load(&jobs[1]).is_some(), "precondition: entry exists");
        let opts = RunOptions {
            cache: Some(cache.clone()),
            ..RunOptions::sequential()
        };
        let campaign = Campaign::start("test", &dir, &jobs, &opts, std_fs(), vec![]).unwrap();
        assert_eq!(campaign.recovered(), 1);
        assert!(
            cache.load(&jobs[0]).is_some(),
            "committed job keeps its entry"
        );
        assert!(
            cache.load(&jobs[1]).is_none(),
            "interrupted job's entry is distrusted"
        );
        // The resumed pool serves job 0 from cache and re-runs 1 and 2.
        let reports = campaign.execute(&jobs, &opts);
        assert!(reports[0].cache_hit);
        assert!(!reports[1].cache_hit);
        assert!(!reports[2].cache_hit);
        assert!(reports.iter().all(|r| r.output.is_ok()));
        campaign.finish(true, vec![]);
        let text = fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        assert_eq!(text.matches("\"event\":\"job_recovered\"").count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn emitted_artefacts_verify_and_tampering_is_caught() {
        let dir = tmpdir("verify");
        let opts = RunOptions::sequential();
        let campaign = Campaign::start("test", &dir, &[], &opts, std_fs(), vec![]).unwrap();
        campaign.emit_artefact("a.tsv", b"1\t2\n").unwrap();
        campaign.emit_artefact("b.tsv", b"3\t4\n").unwrap();
        campaign.finish(true, vec![]);
        let report = verify_artefacts(&dir).unwrap();
        assert!(report.ok(), "{:?}", report.mismatches);
        assert_eq!(report.verified, 2);
        // Re-emitting supersedes the old digest record.
        let campaign2 = Campaign::start("test", &dir, &[], &opts, std_fs(), vec![]).unwrap();
        campaign2.emit_artefact("a.tsv", b"5\t6\n").unwrap();
        campaign2.finish(true, vec![]);
        assert!(verify_artefacts(&dir).unwrap().ok());
        // Tampering after the run is caught.
        fs::write(dir.join("b.tsv"), b"doctored").unwrap();
        let report = verify_artefacts(&dir).unwrap();
        assert_eq!(report.mismatches.len(), 1);
        assert!(report.mismatches[0].starts_with("b.tsv:"), "{report:?}");
        fs::remove_file(dir.join("a.tsv")).unwrap();
        let report = verify_artefacts(&dir).unwrap();
        assert_eq!(report.mismatches.len(), 2, "missing file also flagged");
        let _ = fs::remove_dir_all(&dir);
    }
}
