//! Cross-job memoization of clean (un-attacked) baseline campaigns.
//!
//! The duty-cycle sweep, the optimal-vs-random placement comparison and the
//! regression dataset all need the *same* clean baseline per campaign
//! configuration: the attack side varies per job, the clean side does not.
//! Run sequentially, those drivers naturally compute each baseline once; cut
//! into per-point jobs for the worker pool, every job used to recompute it.
//! On the `--quick` scale that is 40+ redundant clean campaigns — the whole
//! measured gap between `--jobs 1` and the legacy sequential path.
//!
//! [`BaselineCache`] closes the gap with two layers keyed by
//! [`CampaignConfig::baseline_id`] (which covers exactly the
//! baseline-relevant fields — attack knobs like the tamper rule or duty
//! cycle are excluded, so all duty points of one config share an entry):
//!
//! 1. an in-process memo map. Each key owns a `OnceLock`, so two workers
//!    hitting the same config block on one computation and share the result
//!    while *different* configs still compute in parallel;
//! 2. an optional on-disk layer under the run's `.cache/` directory
//!    (`baseline-<16 hex>.json`, committed via [`crate::fs::commit_file`]
//!    with a unique temp name so two *processes* racing on one entry both
//!    succeed; entries are checksummed and corrupt ones degrade to misses)
//!    so warm re-runs skip baselines entirely.
//!
//! Substituting a memoized baseline is bit-identical to recomputing it: the
//! clean and attacked systems are constructed and seeded independently, and
//! the JSON layer round-trips `f64`s bit-exactly.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use htpb_core::experiments::{run_clean_baseline, CampaignConfig};
use htpb_manycore::{AppId, AppPerformance, AppRole, Benchmark, PerformanceReport};

use crate::cache::SCHEMA_VERSION;
use crate::fs::{commit_file, std_fs, Fs};
use crate::hash::{fnv1a64, fnv1a64_parts};
use crate::json::{self, Value};

/// Memoizes clean baseline reports across jobs, with an optional on-disk
/// layer for warm re-runs.
pub struct BaselineCache {
    memo: Mutex<HashMap<u64, Arc<OnceLock<Arc<PerformanceReport>>>>>,
    dir: Option<PathBuf>,
    fs: Arc<dyn Fs>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for BaselineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineCache")
            .field("dir", &self.dir)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl BaselineCache {
    /// A purely in-process cache (no disk layer).
    #[must_use]
    pub fn in_memory() -> BaselineCache {
        BaselineCache {
            memo: Mutex::new(HashMap::new()),
            dir: None,
            fs: std_fs(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache that additionally persists baselines under `dir` (created if
    /// needed; if creation fails the cache silently stays memory-only).
    #[must_use]
    pub fn with_dir(dir: impl Into<PathBuf>) -> BaselineCache {
        BaselineCache::with_dir_fs(dir, std_fs())
    }

    /// Like [`BaselineCache::with_dir`], on an explicit [`Fs`]
    /// (fault-injection tests).
    #[must_use]
    pub fn with_dir_fs(dir: impl Into<PathBuf>, fs: Arc<dyn Fs>) -> BaselineCache {
        let dir = dir.into();
        let dir = fs.create_dir_all(&dir).ok().map(|()| dir);
        BaselineCache {
            memo: Mutex::new(HashMap::new()),
            dir,
            fs,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key of a configuration: FNV-1a over (schema version,
    /// baseline id). Shares [`SCHEMA_VERSION`] with the result cache — any
    /// change to what a cached result means invalidates both layers.
    #[must_use]
    pub fn key(cfg: &CampaignConfig) -> u64 {
        fnv1a64_parts(&[&SCHEMA_VERSION.to_string(), &cfg.baseline_id()])
    }

    /// Baselines served from memo or disk so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Baselines actually computed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Returns the clean baseline for `cfg`, computing it at most once per
    /// key. The `bool` is `true` on a hit (memo or disk), `false` when this
    /// call ran the campaign.
    pub fn get_or_compute(&self, cfg: &CampaignConfig) -> (Arc<PerformanceReport>, bool) {
        let key = Self::key(cfg);
        // Each key gets its own cell so two workers racing on the SAME
        // config block on one computation, while different configs still
        // compute concurrently (the map lock is only held to fetch the
        // cell, never across the campaign run).
        let cell = {
            let mut memo = self.memo.lock().expect("baseline memo poisoned");
            Arc::clone(memo.entry(key).or_default())
        };
        let mut computed = false;
        let report = cell.get_or_init(|| {
            if let Some(report) = self.load(key, cfg) {
                return Arc::new(report);
            }
            computed = true;
            let report = run_clean_baseline(cfg);
            self.store(key, cfg, &report);
            Arc::new(report)
        });
        // `computed` is only true when OUR closure ran the campaign; a disk
        // load, a memo hit, or losing the init race all count as hits.
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (Arc::clone(report), !computed)
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("baseline-{key:016x}.json")))
    }

    fn load(&self, key: u64, cfg: &CampaignConfig) -> Option<PerformanceReport> {
        let bytes = self.fs.read(&self.entry_path(key)?).ok()?;
        let text = String::from_utf8(bytes).ok()?;
        let value = json::parse(&text).ok()?;
        // Stored id must match — hash-collision guard, same as ResultCache.
        if value.get("id")?.as_str()? != cfg.baseline_id() {
            return None;
        }
        let payload = value.get("report")?;
        let stored = value.get("fnv")?.as_str()?;
        if stored != format!("{:016x}", fnv1a64(payload.render().as_bytes())) {
            return None;
        }
        report_from_json(payload)
    }

    fn store(&self, key: u64, cfg: &CampaignConfig, report: &PerformanceReport) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let payload = report_to_json(report);
        let digest = format!("{:016x}", fnv1a64(payload.render().as_bytes()));
        let body = Value::obj(vec![
            ("schema", Value::Int(i64::from(SCHEMA_VERSION))),
            ("id", Value::Str(cfg.baseline_id())),
            ("fnv", Value::Str(digest)),
            ("report", payload),
        ]);
        // Committed with a per-process unique temp name, so two processes
        // racing on the same entry each rename a complete file — last
        // writer wins with identical bytes. Persistence stays an
        // optimization; failures just cost a recompute.
        let _ = commit_file(self.fs.as_ref(), &path, (body.render() + "\n").as_bytes());
    }
}

/// Serializes a [`PerformanceReport`] with bit-exact floats.
#[must_use]
pub fn report_to_json(report: &PerformanceReport) -> Value {
    Value::obj(vec![
        ("window_cycles", int_u64(report.window_cycles)),
        (
            "apps",
            Value::Arr(report.apps.iter().map(app_to_json).collect()),
        ),
        ("delivered", int_u64(report.power_requests_delivered)),
        ("modified", int_u64(report.power_requests_modified)),
        ("timed_out", int_u64(report.requests_timed_out)),
        ("rejected", int_u64(report.requests_rejected)),
        ("clamped", int_u64(report.requests_clamped)),
    ])
}

/// Parses a [`PerformanceReport`]; `None` on any structural mismatch.
#[must_use]
pub fn report_from_json(value: &Value) -> Option<PerformanceReport> {
    let apps = value
        .get("apps")?
        .as_arr()?
        .iter()
        .map(app_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(PerformanceReport {
        window_cycles: u64_field(value, "window_cycles")?,
        apps,
        power_requests_delivered: u64_field(value, "delivered")?,
        power_requests_modified: u64_field(value, "modified")?,
        requests_timed_out: u64_field(value, "timed_out")?,
        requests_rejected: u64_field(value, "rejected")?,
        requests_clamped: u64_field(value, "clamped")?,
    })
}

fn app_to_json(app: &AppPerformance) -> Value {
    Value::obj(vec![
        ("id", Value::Int(i64::from(app.id.0))),
        ("benchmark", Value::Str(app.benchmark.name().to_string())),
        (
            "role",
            Value::Str(
                match app.role {
                    AppRole::Legitimate => "legit",
                    AppRole::Malicious => "malicious",
                }
                .to_string(),
            ),
        ),
        ("threads", int_u64(app.threads as u64)),
        ("theta", Value::Num(app.theta)),
        ("starved_cores", int_u64(app.starved_cores as u64)),
    ])
}

fn app_from_json(value: &Value) -> Option<AppPerformance> {
    let role = match value.get("role")?.as_str()? {
        "legit" => AppRole::Legitimate,
        "malicious" => AppRole::Malicious,
        _ => return None,
    };
    Some(AppPerformance {
        id: AppId(u16::try_from(value.get("id")?.as_i64()?).ok()?),
        benchmark: Benchmark::from_name(value.get("benchmark")?.as_str()?)?,
        role,
        threads: usize::try_from(value.get("threads")?.as_i64()?).ok()?,
        theta: value.get("theta")?.as_f64()?,
        starved_cores: usize::try_from(value.get("starved_cores")?.as_i64()?).ok()?,
    })
}

fn int_u64(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn u64_field(value: &Value, key: &str) -> Option<u64> {
    u64::try_from(value.get(key)?.as_i64()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htpb_attack::Mix;
    use std::fs;

    fn report() -> PerformanceReport {
        PerformanceReport {
            window_cycles: 123_456,
            apps: vec![
                AppPerformance {
                    id: AppId(0),
                    benchmark: Benchmark::Barnes,
                    role: AppRole::Malicious,
                    threads: 4,
                    theta: 1.0 / 3.0,
                    starved_cores: 0,
                },
                AppPerformance {
                    id: AppId(1),
                    benchmark: Benchmark::Raytrace,
                    role: AppRole::Legitimate,
                    threads: 8,
                    theta: 6.891_234_567_8e-12,
                    starved_cores: 3,
                },
            ],
            power_requests_delivered: 10,
            power_requests_modified: 4,
            requests_timed_out: 1,
            requests_rejected: 2,
            requests_clamped: 3,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htpb-baseline-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn report_json_roundtrip_is_bit_exact() {
        let r = report();
        let text = report_to_json(&r).render();
        let back = report_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        for (a, b) in r.apps.iter().zip(&back.apps) {
            assert_eq!(a.theta.to_bits(), b.theta.to_bits());
        }
    }

    #[test]
    fn key_tracks_baseline_id_not_attack_knobs() {
        let base = CampaignConfig::tiny(Mix::Mix1);
        let mut attacked = base.clone();
        attacked.tamper_rule = htpb_trojan::TamperRule::ScalePercent(25);
        assert_eq!(BaselineCache::key(&base), BaselineCache::key(&attacked));
        let mut other = base.clone();
        other.seed ^= 1;
        assert_ne!(BaselineCache::key(&base), BaselineCache::key(&other));
    }

    #[test]
    fn memoizes_within_a_process() {
        let cache = BaselineCache::in_memory();
        let cfg = CampaignConfig::tiny(Mix::Mix1);
        let (first, hit1) = cache.get_or_compute(&cfg);
        assert!(!hit1);
        let (second, hit2) = cache.get_or_compute(&cfg);
        assert!(hit2);
        assert_eq!(*first, *second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // And matches a direct computation bit for bit.
        assert_eq!(*first, run_clean_baseline(&cfg));
    }

    #[test]
    fn disk_layer_survives_a_new_instance_and_rejects_id_mismatch() {
        let dir = tmpdir("disk");
        let cfg = CampaignConfig::tiny(Mix::Mix2);
        let direct = {
            let cache = BaselineCache::with_dir(&dir);
            let (r, hit) = cache.get_or_compute(&cfg);
            assert!(!hit);
            r
        };
        // Fresh instance: memo is cold, disk is warm.
        let cache = BaselineCache::with_dir(&dir);
        let (reloaded, hit) = cache.get_or_compute(&cfg);
        assert!(hit);
        assert_eq!(cache.misses(), 0);
        assert_eq!(*reloaded, *direct);
        // A tampered id degrades to a miss instead of serving a wrong report.
        let key = BaselineCache::key(&cfg);
        let path = dir.join(format!("baseline-{key:016x}.json"));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace(&cfg.baseline_id(), "baseline-bogus")).unwrap();
        let cold = BaselineCache::with_dir(&dir);
        let (_, hit) = cold.get_or_compute(&cfg);
        assert!(!hit);
        assert_eq!(cold.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_degrades_to_miss() {
        let dir = tmpdir("corrupt");
        let cfg = CampaignConfig::tiny(Mix::Mix3);
        {
            let cache = BaselineCache::with_dir(&dir);
            let _ = cache.get_or_compute(&cfg);
        }
        let key = BaselineCache::key(&cfg);
        fs::write(dir.join(format!("baseline-{key:016x}.json")), "{not json").unwrap();
        let cache = BaselineCache::with_dir(&dir);
        let (_, hit) = cache.get_or_compute(&cfg);
        assert!(!hit);
        let _ = fs::remove_dir_all(&dir);
    }
}
