//! Machine-readable run journal: one JSON object per line (JSONL).
//!
//! Every campaign appends to `<outdir>/journal.jsonl`. Events share two
//! fields — `"event"` and `"ts_ms"` (Unix epoch milliseconds) — plus
//! event-specific payloads:
//!
//! | event | fields |
//! |---|---|
//! | `run_start` | `run`, `scale`, `workers`, `jobs` |
//! | `job` | `id`, `kind`, `worker`, `cache_hit`, `ok`, `secs`, `error?` |
//! | `stage` | `label`, `secs` |
//! | `run_end` | `run`, `secs`, `ok`, `failed`, `cache_hits` |
//!
//! The file is append-only across runs (a resumed campaign keeps its
//! history) and writes are serialised through a mutex so concurrent
//! workers never interleave partial lines.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Value;

/// Append-only JSONL journal, safe to share across worker threads.
pub struct Journal {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (appending) the journal at `path`, creating parent
    /// directories as needed.
    pub fn open(path: &Path) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            sink: Mutex::new(Box::new(file)),
        })
    }

    /// A journal that discards everything (for tests and `--no-journal`
    /// contexts).
    #[must_use]
    pub fn disabled() -> Journal {
        Journal {
            sink: Mutex::new(Box::new(io::sink())),
        }
    }

    /// Appends one event line with the given payload fields.
    pub fn record(&self, event: &str, fields: Vec<(&str, Value)>) {
        let mut pairs = vec![
            ("event", Value::Str(event.to_string())),
            ("ts_ms", Value::Int(now_ms())),
        ];
        pairs.extend(fields);
        let line = Value::obj(pairs).render();
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        // Journal I/O failures must not abort a campaign; drop the line.
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }

    /// Records the completion of one job.
    #[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
    pub fn job(
        &self,
        id: &str,
        kind: &str,
        worker: usize,
        cache_hit: bool,
        ok: bool,
        secs: f64,
        error: Option<&str>,
    ) {
        let mut fields = vec![
            ("id", Value::Str(id.to_string())),
            ("kind", Value::Str(kind.to_string())),
            ("worker", Value::Int(worker as i64)),
            ("cache_hit", Value::Bool(cache_hit)),
            ("ok", Value::Bool(ok)),
            ("secs", Value::Num(secs)),
        ];
        if let Some(e) = error {
            fields.push(("error", Value::Str(e.to_string())));
        }
        self.record("job", fields);
    }

    /// Records a named pipeline stage's wall time (used by
    /// `htpb_bench::timed_stage`).
    pub fn stage(&self, label: &str, secs: f64) {
        self.record(
            "stage",
            vec![
                ("label", Value::Str(label.to_string())),
                ("secs", Value::Num(secs)),
            ],
        );
    }

    /// Reads a journal file back as parsed events, in order. A missing
    /// file is an empty journal. Unparseable lines — typically one
    /// truncated trailing line left by a killed writer — are skipped with
    /// a warning on stderr rather than failing the resume.
    pub fn read_events(path: &Path) -> io::Result<Vec<Value>> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match crate::json::parse(line) {
                Ok(v) => events.push(v),
                Err(_) => eprintln!(
                    "[harness] warning: skipping corrupt journal line {} in {}",
                    lineno + 1,
                    path.display()
                ),
            }
        }
        Ok(events)
    }

    /// The ids of jobs a prior (possibly interrupted) run already
    /// completed successfully, according to its journal. Tolerates a
    /// corrupt trailing line like [`Journal::read_events`].
    pub fn completed_job_ids(path: &Path) -> io::Result<Vec<String>> {
        let events = Journal::read_events(path)?;
        Ok(events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("job"))
            .filter(|e| e.get("ok") == Some(&Value::Bool(true)))
            .filter_map(|e| e.get("id")?.as_str().map(ToString::to_string))
            .collect())
    }
}

fn now_ms() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_lines_are_valid_jsonl() {
        let path =
            std::env::temp_dir().join(format!("htpb-journal-test-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.job("fig3-n64-center-ht5-s0", "fig3", 2, false, true, 0.25, None);
        j.stage("assemble", 0.01);
        j.record("run_end", vec![("ok", Value::Bool(true))]);
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = crate::json::parse(line).expect("valid json");
            assert!(v.get("event").is_some());
            assert!(v.get("ts_ms").is_some());
        }
        assert_eq!(
            crate::json::parse(lines[0]).unwrap().get("worker"),
            Some(&Value::Int(2))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn disabled_journal_is_a_no_op() {
        Journal::disabled().stage("x", 1.0);
    }

    #[test]
    fn read_back_tolerates_a_truncated_trailing_line() {
        let path =
            std::env::temp_dir().join(format!("htpb-journal-trunc-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.job("fig3-a", "fig3", 0, false, true, 0.1, None);
        j.job("fig3-b", "fig3", 0, false, false, 0.1, Some("boom"));
        drop(j);
        // Simulate a writer killed mid-line: append half a JSON object.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"event\":\"job\",\"id\":\"fig3-c\",\"ok\":tr");
        fs::write(&path, text).unwrap();

        let events = Journal::read_events(&path).unwrap();
        assert_eq!(events.len(), 2, "the corrupt tail is skipped, not fatal");
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string()],
            "only ok jobs count as completed"
        );
        let _ = fs::remove_file(&path);
    }

    /// Chosen behaviour for corruption *inside* the file (not just a
    /// truncated tail): the bad line is skipped with a warning and every
    /// valid line after it still parses. A resumed campaign therefore keeps
    /// all completions it can still read — it never discards the journal
    /// suffix behind a torn write, and never fails the resume.
    #[test]
    fn read_back_tolerates_a_corrupt_line_mid_file() {
        let path =
            std::env::temp_dir().join(format!("htpb-journal-midfile-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.job("fig3-a", "fig3", 0, false, true, 0.1, None);
        drop(j);
        // A torn write in the middle of the file (e.g. two processes racing
        // on a journal without the mutex, or disk corruption)...
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"event\":\"job\",\"id\":\"fig3-lost\",\"ok\":tru\u{0}garbage\n");
        fs::write(&path, text).unwrap();
        // ...followed by a healthy writer appending more completions.
        let j = Journal::open(&path).unwrap();
        j.job("fig3-b", "fig3", 0, false, true, 0.1, None);
        j.job("fig3-c", "fig3", 0, false, false, 0.1, Some("boom"));
        drop(j);

        let events = Journal::read_events(&path).unwrap();
        assert_eq!(events.len(), 3, "valid lines on both sides are kept");
        assert_eq!(
            Journal::completed_job_ids(&path).unwrap(),
            vec!["fig3-a".to_string(), "fig3-b".to_string()],
            "completions after the corrupt line are not lost; the corrupt \
             job itself is treated as never-completed (it will re-run)"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn read_back_of_missing_journal_is_empty() {
        let path = std::env::temp_dir().join("htpb-journal-does-not-exist.jsonl");
        assert!(Journal::read_events(&path).unwrap().is_empty());
    }
}
